"""In-memory InfluxDB 1.8 substitute — series-sharded storage engine.

P-MoVE stores *SWTelemetry* and *HWTelemetry* samples in InfluxDB (§III-A),
keyed by measurement name, tagged with observation UUIDs, with one field per
instance (``_cpu0``, ``_node1``, …).  This substrate implements the pieces
the framework exercises: line-protocol ingest, per-database measurement
stores, retention policies (the paper's answer to long-term disk pressure,
§V-B), and the InfluxQL subset executed by :mod:`repro.db.influxql`.

Storage layout (mirroring what production ODA stacks such as DCDB sit on):
each measurement is sharded into **series**, one per distinct tag set.  A
series holds columnar arrays — a sorted time array, a parallel write-sequence
array, and one value array per field — so the dominant dashboard query shape
(``WHERE tag="<uuid>" AND time >= a AND time <= b``) resolves via an inverted
tag index (``tag=value → series``) plus two ``bisect`` calls instead of a
full scan.  Writes take an O(1) append fast path when they arrive in time
order (the sampler's case) and a bisect-based insertion otherwise.

The read path is columnar end to end.  Dashboards re-issue the same
aggregate queries on every refresh, so three mechanisms serve them without
per-row tuple materialization:

- :meth:`InfluxDB.aggregate_columns` folds MEAN/MAX/MIN/SUM/COUNT/LAST
  directly over the per-series value arrays;
- :meth:`InfluxDB.scan_buckets` resolves ``GROUP BY time(N)`` buckets by
  bisecting bucket edges, and serves fully covered buckets from
  **write-through rollups** — per-series downsample shards (default tiers
  10s/60s, the continuous-query pattern of production Influx stacks)
  maintained incrementally on every write, with raw-point folds for the
  unaligned head/tail so results stay exactly equal to raw aggregation;
- per-measurement **generation counters** (:meth:`InfluxDB.generation`)
  bumped on every mutation, so read layers (the Grafana panel cache) can
  invalidate cached results with one integer compare.

Timestamps are virtual-clock seconds stored at nanosecond resolution, as
Influx line protocol does.
"""

from __future__ import annotations

import re
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from heapq import merge as _heap_merge

from .sketch import (
    DEFAULT_SKETCH,
    HyperLogLog,
    SketchConfig,
    TDigest,
    float_hash64,
    nearest_rank,
    stable_hash64,
    stddev_from_partials,
    value_key,
)
from .sketch import stddev_of as _stddev_of

__all__ = ["Point", "InfluxError", "RetentionPolicy", "InfluxDB",
           "DEFAULT_ROLLUP_TIERS", "fold_values"]

#: Downsample shard sizes maintained on the write path, seconds.
DEFAULT_ROLLUP_TIERS = (10.0, 60.0)

_FOLDABLE = frozenset({"MEAN", "MAX", "MIN", "SUM", "COUNT", "LAST"})


def fold_values(agg: str, values: list[float]) -> float | None:
    """Fold one aggregate over ``values`` exactly as a row-at-a-time
    left fold would (the InfluxQL reference semantics)."""
    if not values:
        return None
    if agg == "MEAN":
        return sum(values) / len(values)
    if agg == "MAX":
        return max(values)
    if agg == "MIN":
        return min(values)
    if agg == "SUM":
        return sum(values)
    if agg == "COUNT":
        return float(len(values))
    if agg == "LAST":
        return values[-1]
    raise InfluxError(f"unknown aggregate {agg}")


class InfluxError(ValueError):
    """Malformed line protocol or unknown database/measurement."""


_ESCAPE_RE = re.compile(r"([,= ])")


def _escape(s: str) -> str:
    return _ESCAPE_RE.sub(r"\\\1", s)


def _unescape(s: str) -> str:
    return re.sub(r"\\([,= ])", r"\1", s)


# Escaped-length memo for field names: sampler field names (``_cpu0`` …)
# repeat millions of times, so byte accounting never re-escapes them.
_ESC_LEN: dict[str, int] = {}


def _esc_len(s: str) -> int:
    n = _ESC_LEN.get(s)
    if n is None:
        n = _ESC_LEN[s] = len(_escape(s))
    return n


def _split_unescaped(s: str, sep: str) -> list[str]:
    """Split on ``sep`` except where backslash-escaped."""
    out, buf, i = [], "", 0
    while i < len(s):
        ch = s[i]
        if ch == "\\" and i + 1 < len(s):
            buf += s[i : i + 2]
            i += 2
            continue
        if ch == sep:
            out.append(buf)
            buf = ""
        else:
            buf += ch
        i += 1
    out.append(buf)
    return out


def _parse_field_value(v: str) -> float:
    """Parse one line-protocol field value.

    Influx writes integer-typed fields with an ``i`` suffix (``value=42i``);
    we store everything as floats, so the suffix is stripped on ingest.
    """
    try:
        if len(v) > 1 and v[-1] == "i":
            return float(int(v[:-1]))
        return float(v)
    except ValueError:
        raise InfluxError(f"non-numeric field value {v!r}") from None


@dataclass(frozen=True)
class Point:
    """One time-series sample."""

    measurement: str
    tags: dict[str, str]
    fields: dict[str, float]
    time: float  # seconds

    def __post_init__(self) -> None:
        if not self.measurement:
            raise InfluxError("point needs a measurement name")
        if not self.fields:
            raise InfluxError("point needs at least one field")

    def to_line(self) -> str:
        """Serialize to Influx line protocol (ns timestamp, float fields)."""
        key = _escape(self.measurement)
        if self.tags:
            key += "," + ",".join(
                f"{_escape(k)}={_escape(v)}" for k, v in sorted(self.tags.items())
            )
        fields = ",".join(f"{_escape(k)}={v!r}" for k, v in sorted(self.fields.items()))
        return f"{key} {fields} {int(self.time * 1e9)}"

    @classmethod
    def from_line(cls, line: str) -> "Point":
        """Parse one line-protocol record."""
        parts = _split_unescaped(line.strip(), " ")
        parts = [p for p in parts if p != ""]
        if len(parts) < 2:
            raise InfluxError(f"malformed line protocol: {line!r}")
        key = parts[0]
        field_part = parts[1]
        ts = int(parts[2]) / 1e9 if len(parts) > 2 else 0.0
        key_parts = _split_unescaped(key, ",")
        measurement = _unescape(key_parts[0])
        tags: dict[str, str] = {}
        for kv in key_parts[1:]:
            k, _, v = kv.partition("=")
            if not k or not v:
                raise InfluxError(f"malformed tag {kv!r}")
            tags[_unescape(k)] = _unescape(v)
        fields: dict[str, float] = {}
        for kv in _split_unescaped(field_part, ","):
            k, _, v = kv.partition("=")
            if not k or v == "":
                raise InfluxError(f"malformed field {kv!r}")
            fields[_unescape(k)] = _parse_field_value(v)
        return cls(measurement=measurement, tags=tags, fields=fields, time=ts)


@dataclass
class RetentionPolicy:
    """How long a database keeps points (``duration_s=None`` = forever)."""

    duration_s: float | None = None
    name: str = "autogen"


class _RollupCol:
    """Per-bucket fold state of one field, parallel with ``_Rollup.starts``.

    A bucket with ``count == 0`` holds no value for this field.  ``total``,
    ``vmin``, ``vmax`` and ``last`` are maintained as the *left fold* of the
    raw values in (time, write-seq) order, so every stat is bit-identical to
    folding the raw column slice of that bucket.  ``sumsq`` extends the fold
    with Σv² (STDDEV partials, same fold order), and ``digest`` holds one
    write-through :class:`~repro.db.sketch.TDigest` per bucket — the
    quantile summary the PERCENTILE serving planner merges at read time.
    """

    __slots__ = ("count", "total", "vmin", "vmax", "last", "sumsq", "digest",
                 "compression")

    def __init__(self, n: int, compression: int = DEFAULT_SKETCH.compression) -> None:
        self.count = [0] * n
        self.total = [0.0] * n
        self.vmin = [0.0] * n
        self.vmax = [0.0] * n
        self.last = [0.0] * n
        self.sumsq = [0.0] * n
        self.digest: list[TDigest | None] = [None] * n
        self.compression = compression

    def _arrays(self):
        return (self.count, self.total, self.vmin, self.vmax, self.last,
                self.sumsq)

    def append_bucket(self) -> None:
        for a in self._arrays():
            a.append(0)
        self.digest.append(None)

    def insert_bucket(self, k: int) -> None:
        for a in self._arrays():
            a.insert(k, 0)
        self.digest.insert(k, None)

    def drop_buckets(self, k: int) -> None:
        for a in self._arrays():
            del a[:k]
        del self.digest[:k]

    def remove_bucket(self, k: int) -> None:
        for a in self._arrays():
            del a[k]
        del self.digest[k]

    def set_from(self, k: int, values: list[float]) -> None:
        """Recompute bucket ``k`` from the raw in-order value list."""
        self.count[k] = len(values)
        if values:
            self.total[k] = sum(values)
            self.vmin[k] = min(values)
            self.vmax[k] = max(values)
            self.last[k] = values[-1]
            sq = 0.0
            for v in values:
                sq += v * v
            self.sumsq[k] = sq
            d = TDigest(self.compression)
            d.add_many(values)
            self.digest[k] = d
        else:
            self.sumsq[k] = 0.0
            self.digest[k] = None


class _Rollup:
    """One downsample shard of one series: per-bucket folds at tier ``T``.

    ``starts`` is the sorted list of bucket starts ``(t // T) * T`` that
    hold at least one raw row.  ``has_nan`` poisons MIN/MAX serving: NaN
    makes min/max folds order-dependent, so the planner falls back to raw
    folds for those aggregates once a NaN was ever ingested.
    """

    __slots__ = ("tier", "starts", "fields", "has_nan", "compression")

    def __init__(self, tier: float,
                 compression: int = DEFAULT_SKETCH.compression) -> None:
        self.tier = tier
        self.starts: list[float] = []
        self.fields: dict[str, _RollupCol] = {}
        self.compression = compression
        self.has_nan = False


class _Series:
    """One (measurement, tag set): columnar time/seq/field arrays.

    ``times`` is kept sorted; ``seqs`` carries the per-measurement write
    sequence so equal timestamps preserve global insertion order across
    series (matching a stable sort over a flat point list).  ``cols`` maps
    field name → value array aligned with ``times`` (``None`` = field absent
    in that row).  ``rollups`` holds one write-through downsample shard per
    configured tier.
    """

    __slots__ = ("tags", "key_len", "times", "seqs", "cols", "rollups", "max_seq",
                 "hlls", "hll_trimmed", "sketch")

    def __init__(
        self, tags: dict[str, str], key_len: int, tiers: tuple[float, ...] = (),
        sketch: SketchConfig = DEFAULT_SKETCH,
    ) -> None:
        self.tags = tags
        self.key_len = key_len  # len of the escaped "measurement,tag=…" prefix
        self.times: list[float] = []
        self.seqs: list[int] = []
        self.cols: dict[str, list[float | None]] = {}
        self.sketch = sketch
        self.rollups: tuple[_Rollup, ...] = tuple(
            _Rollup(t, sketch.compression) for t in tiers
        )
        #: Per-field value-cardinality HLL over the series' whole history —
        #: what serves ``COUNT(DISTINCT field)`` without a scan.  Order- and
        #: duplicate-insensitive, so out-of-order writes need no rebuild;
        #: retention trims set ``hll_trimmed`` (an HLL cannot forget) and
        #: the planner falls back to exact scans from then on.
        self.hlls: dict[str, HyperLogLog] = {}
        self.hll_trimmed = False
        #: Highest write sequence ever stored — the durable-ingest apply
        #: gate reads this to answer "did record seq N already land here?"
        #: (retention trims rows but must not forget the high-watermark).
        self.max_seq = -1

    def add(self, time: float, seq: int, fields: dict[str, float]) -> None:
        if seq > self.max_seq:
            self.max_seq = seq
        times = self.times
        in_order = not times or time >= times[-1]
        if in_order:
            idx = len(times)  # append fast path (in-order ingest)
            times.append(time)
            self.seqs.append(seq)
            for col in self.cols.values():
                col.append(None)
        else:
            idx = bisect_right(times, time)
            times.insert(idx, time)
            self.seqs.insert(idx, seq)
            for col in self.cols.values():
                col.insert(idx, None)
        n = len(times)
        cols = self.cols
        hlls = self.hlls
        for name, v in fields.items():
            col = cols.get(name)
            if col is None:
                col = cols[name] = [None] * n
            col[idx] = v
            hll = hlls.get(name)
            if hll is None:
                hll = hlls[name] = HyperLogLog(self.sketch.hll_p)
            hll.add_hash(float_hash64(v))
        if in_order:
            for r in self.rollups:
                self._rollup_append(r, time, fields)
        else:
            for r in self.rollups:
                self._rollup_recompute(r, (time // r.tier) * r.tier)

    # -- write-through rollup maintenance ------------------------------
    def _rollup_append(self, r: _Rollup, time: float, fields: dict[str, float]) -> None:
        """In-order update: extend or amend the newest bucket in place."""
        b = (time // r.tier) * r.tier
        starts = r.starts
        if not starts or starts[-1] != b:
            starts.append(b)
            for rc in r.fields.values():
                rc.append_bucket()
        k = len(starts) - 1
        for name, v in fields.items():
            rc = r.fields.get(name)
            if rc is None:
                rc = r.fields[name] = _RollupCol(len(starts), r.compression)
            if rc.count[k] == 0:
                # 0.0 + v, not v: sum() folds from int 0, so a bucket of
                # all -0.0 values totals +0.0 — the write-through total
                # must bit-match fold_values/set_from or rollup-served
                # MEAN/SUM diverges from raw folds (repr comparisons).
                rc.total[k] = 0.0 + v
                rc.sumsq[k] = 0.0 + v * v
                rc.vmin[k] = v
                rc.vmax[k] = v
            else:
                rc.total[k] += v
                rc.sumsq[k] += v * v
                if v < rc.vmin[k]:
                    rc.vmin[k] = v
                if v > rc.vmax[k]:
                    rc.vmax[k] = v
            rc.count[k] += 1
            rc.last[k] = v
            d = rc.digest[k]
            if d is None:
                d = rc.digest[k] = TDigest(rc.compression)
            d.add(v)
            if v != v:
                r.has_nan = True

    def _rollup_recompute(self, r: _Rollup, b: float) -> None:
        """Rebuild bucket ``b`` from raw rows (out-of-order insert, retention
        trim).  The fold re-runs in storage order, so exactness survives any
        write pattern."""
        T = r.tier
        times = self.times
        key = lambda t: (t // T) * T  # noqa: E731
        i = bisect_left(times, b, key=key)
        j = bisect_right(times, b, key=key)
        k = bisect_left(r.starts, b)
        have = k < len(r.starts) and r.starts[k] == b
        if i == j:  # bucket holds no raw rows any more
            if have:
                del r.starts[k]
                for rc in r.fields.values():
                    rc.remove_bucket(k)
            return
        if not have:
            r.starts.insert(k, b)
            for rc in r.fields.values():
                rc.insert_bucket(k)
        for name, col in self.cols.items():
            rc = r.fields.get(name)
            if rc is None:
                rc = r.fields[name] = _RollupCol(len(r.starts), r.compression)
            vals = [v for v in col[i:j] if v is not None]
            rc.set_from(k, vals)
            if any(v != v for v in vals):
                r.has_nan = True

    def time_slice(
        self,
        t0: float | None,
        t1: float | None,
        t0_exclusive: bool,
        t1_exclusive: bool,
    ) -> tuple[int, int]:
        """Resolve a time range to array indices with two bisects."""
        times = self.times
        if t0 is None:
            lo = 0
        elif t0_exclusive:
            lo = bisect_right(times, t0)
        else:
            lo = bisect_left(times, t0)
        if t1 is None:
            hi = len(times)
        elif t1_exclusive:
            hi = bisect_left(times, t1)
        else:
            hi = bisect_right(times, t1)
        return lo, hi

    def drop_before(self, horizon: float) -> int:
        """Retention: slice off rows with ``time < horizon``; returns #dropped."""
        idx = bisect_left(self.times, horizon)
        if idx:
            # HLLs cannot forget the trimmed values: poison cardinality
            # serving for this series (exact scans take over).
            self.hll_trimmed = True
            for hll in self.hlls.values():
                hll.trimmed = True
            del self.times[:idx]
            del self.seqs[:idx]
            for col in self.cols.values():
                del col[:idx]
            for r in self.rollups:
                if not self.times:
                    r.starts.clear()
                    r.fields.clear()
                    continue
                # Drop fully expired buckets, then rebuild the boundary
                # bucket the horizon may have cut through.
                b0 = (self.times[0] // r.tier) * r.tier
                k = bisect_left(r.starts, b0)
                if k:
                    del r.starts[:k]
                    for rc in r.fields.values():
                        rc.drop_buckets(k)
                self._rollup_recompute(r, b0)
        return idx

    def __len__(self) -> int:
        return len(self.times)


class _Measurement:
    """All series of one measurement plus the inverted tag index."""

    __slots__ = ("name", "key_base_len", "series", "by_tags", "tag_index",
                 "seq", "next_sid", "tiers", "sketch", "series_hll")

    def __init__(self, name: str, tiers: tuple[float, ...] = (),
                 sketch: SketchConfig = DEFAULT_SKETCH) -> None:
        self.name = name
        self.tiers = tiers
        self.sketch = sketch
        self.key_base_len = _esc_len(name)
        self.series: dict[int, _Series] = {}
        self.by_tags: dict[tuple[tuple[str, str], ...], int] = {}
        self.tag_index: dict[tuple[str, str], set[int]] = {}
        self.seq = 0  # monotonically increasing write sequence
        # Monotonic so a sid is never reused: sizing the id to the live
        # series count would hand a dropped series' id to the next new one
        # and silently alias it with a survivor.
        self.next_sid = 0
        #: Every tag set ever seen, HLL-summarized — the "active series"
        #: cardinality `fleet_health` reports without enumerating series.
        self.series_hll = HyperLogLog(sketch.hll_p)

    def series_for(self, tags: dict[str, str]) -> _Series:
        key = tuple(sorted(tags.items()))
        sid = self.by_tags.get(key)
        if sid is None:
            sid = self.next_sid
            self.next_sid += 1
            key_len = self.key_base_len + sum(
                2 + _esc_len(k) + _esc_len(v) for k, v in key
            )
            s = _Series(dict(tags), key_len, self.tiers, self.sketch)
            self.series[sid] = s
            self.by_tags[key] = sid
            for kv in key:
                self.tag_index.setdefault(kv, set()).add(sid)
            self.series_hll.add_hash(stable_hash64(key))
            return s
        return self.series[sid]

    def match_ids(self, tags: dict[str, str] | None):
        """Series ids whose tag set contains every requested (key, value)."""
        if not tags:
            return list(self.series)
        ids: set[int] | None = None
        for kv in tags.items():
            hit = self.tag_index.get(kv)
            if not hit:
                return []
            ids = set(hit) if ids is None else ids & hit
            if not ids:
                return []
        return ids or []

    def remove_series(self, sid: int) -> None:
        s = self.series.pop(sid)
        key = tuple(sorted(s.tags.items()))
        del self.by_tags[key]
        for kv in key:
            bucket = self.tag_index.get(kv)
            if bucket is not None:
                bucket.discard(sid)
                if not bucket:
                    del self.tag_index[kv]


class _Database:
    __slots__ = ("name", "meas", "retention", "points_written", "bytes_written",
                 "tiers", "gens", "sketch")

    def __init__(self, name: str, tiers: tuple[float, ...] = (),
                 sketch: SketchConfig = DEFAULT_SKETCH) -> None:
        self.name = name
        self.meas: dict[str, _Measurement] = {}
        self.retention = RetentionPolicy()
        self.points_written = 0
        self.bytes_written = 0
        self.tiers = tiers
        self.sketch = sketch
        #: Per-measurement generation stamps (see :meth:`InfluxDB.generation`).
        self.gens: dict[str, int] = {}


class InfluxDB:
    """The time-series store: multiple databases, line-protocol ingest.

    ``rollup_tiers`` configures the write-through downsample shards every
    series maintains (seconds per bucket, ascending); ``()`` disables them.
    """

    def __init__(self, rollup_tiers: tuple[float, ...] = DEFAULT_ROLLUP_TIERS,
                 sketch: SketchConfig | None = None) -> None:
        tiers = tuple(sorted(float(t) for t in rollup_tiers))
        if any(t <= 0 for t in tiers):
            raise InfluxError("rollup tiers must be positive durations")
        if len(set(tiers)) != len(tiers):
            raise InfluxError("rollup tiers must be distinct")
        self._dbs: dict[str, _Database] = {}
        self._rollup_tiers = tiers
        self.sketch = sketch if sketch is not None else DEFAULT_SKETCH
        # Instance-global generation sequence: never reused, so a cached
        # (statement → rows) entry can never collide with a post-drop
        # recreation of the same database/measurement.
        self._gen_seq = 0
        #: Rollup-planner decision counters: every ``GROUP BY time(N)``
        #: plan records its outcome (``served:<tier>`` / ``raw-fallback`` /
        #: ``multi-series-raw``) and each disqualification reason.  Purely
        #: observational — the scenario fuzzer's coverage signal.
        self.rollup_plan: dict[str, int] = {}
        #: Sketch-planner decision counters, same contract as
        #: ``rollup_plan``: every PERCENTILE/COUNT DISTINCT plan records
        #: whether tier sketches served it (``served:<tier>`` /
        #: ``hll-served``) or which rule disqualified them
        #: (``fallback:merge-bound``, ``fallback:nan-poisoned``, …).
        self.sketch_plan: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Admin
    # ------------------------------------------------------------------
    def create_database(self, name: str) -> None:
        if not name:
            raise InfluxError("database name cannot be empty")
        self._dbs.setdefault(name, _Database(name, self._rollup_tiers, self.sketch))

    def drop_database(self, name: str) -> None:
        self._dbs.pop(name, None)

    def databases(self) -> list[str]:
        return sorted(self._dbs)

    def _db(self, name: str) -> _Database:
        try:
            return self._dbs[name]
        except KeyError:
            raise InfluxError(f"database {name!r} does not exist") from None

    def set_retention_policy(self, db: str, duration_s: float | None) -> None:
        self._db(db).retention = RetentionPolicy(duration_s=duration_s)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _bump(self, d: _Database, measurement: str) -> None:
        self._gen_seq += 1
        d.gens[measurement] = self._gen_seq

    def _append(self, d: _Database, point: Point, seq: int | None = None) -> None:
        m = d.meas.get(point.measurement)
        if m is None:
            m = d.meas[point.measurement] = _Measurement(
                point.measurement, d.tiers, d.sketch
            )
        s = m.series_for(point.tags)
        self._bump(d, point.measurement)
        if seq is None:
            seq = m.seq
            m.seq += 1
        elif seq >= m.seq:
            m.seq = seq + 1
        s.add(point.time, seq, point.fields)
        d.points_written += len(point.fields)
        # Line-protocol byte accounting, computed arithmetically: the series
        # key prefix length is cached, so only field values and the ns
        # timestamp are formatted.  Matches len(point.to_line()) + 1 exactly.
        nf = len(point.fields)
        d.bytes_written += (
            s.key_len
            + sum(_esc_len(k) + 1 + len(repr(v)) for k, v in point.fields.items())
            + (nf - 1)
            + len(str(int(point.time * 1e9)))
            + 3  # two separating spaces + trailing newline
        )

    def write(self, db: str, point: Point) -> None:
        self._append(self._db(db), point)

    def write_many(
        self, db: str, points: list[Point], *, seqs: list[int] | None = None
    ) -> int:
        """Bulk write: one database lookup, then straight appends.

        ``seqs`` lets a routing layer (the sharded engine) pin each point's
        per-measurement write sequence explicitly, so rows scattered over
        several engines keep one global (time, seq) order and scatter-gather
        merges reproduce a single engine's row order exactly.
        """
        d = self._db(db)
        append = self._append
        if seqs is None:
            for p in points:
                append(d, p)
        else:
            if len(seqs) != len(points):
                raise InfluxError("seqs must align 1:1 with points")
            for p, q in zip(points, seqs):
                append(d, p, q)
        return len(points)

    def write_lines(self, db: str, lines: str) -> int:
        """Ingest a line-protocol batch; returns points written.

        The whole batch is parsed (and therefore validated) before any
        point lands, so a malformed line rejects the batch atomically.
        """
        d = self._db(db)
        batch = [
            Point.from_line(line)
            for line in lines.splitlines()
            if line.strip() and not line.lstrip().startswith("#")
        ]
        append = self._append
        for p in batch:
            append(d, p)
        return len(batch)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def measurements(self, db: str) -> list[str]:
        return sorted(self._db(db).meas)

    def generation(self, db: str, measurement: str) -> int:
        """Monotonic mutation stamp of one measurement.

        Any write, series drop, or retention trim touching the measurement
        moves the stamp to a never-reused value, so a cached query result
        taken at generation ``g`` is provably fresh iff the stamp still
        equals ``g``.  Unknown databases/measurements report 0 (nothing to
        invalidate against — they have no rows).
        """
        d = self._dbs.get(db)
        return 0 if d is None else d.gens.get(measurement, 0)

    def max_seq(
        self, db: str, measurement: str, tags: dict[str, str] | None = None
    ) -> int:
        """Highest write sequence stored for a measurement (optionally
        narrowed to the series matching ``tags``); -1 if nothing matches.

        This is the durable-ingest idempotence gate: a commit-log record
        applied with ``write_many(..., seqs=[N, ...])`` leaves ``N`` as the
        matched series' high-watermark, so a crash-redelivered copy of the
        record sees ``max_seq >= N`` and is skipped instead of re-applied.
        """
        d = self._dbs.get(db)
        if d is None:
            return -1
        m = d.meas.get(measurement)
        if m is None:
            return -1
        best = -1
        for sid in m.match_ids(tags):
            s = m.series[sid]
            if s.max_seq > best:
                best = s.max_seq
        return best

    def _matched_slices(
        self,
        d: _Database,
        measurement: str,
        tags: dict[str, str] | None,
        t0: float | None,
        t1: float | None,
        t0_exclusive: bool,
        t1_exclusive: bool,
    ) -> list[tuple[_Series, int, int]]:
        """(series, lo, hi) for every series matching the tag filter with a
        non-empty time-range slice."""
        m = d.meas.get(measurement)
        if m is None:
            return []
        out = []
        for sid in m.match_ids(tags):
            s = m.series[sid]
            lo, hi = s.time_slice(t0, t1, t0_exclusive, t1_exclusive)
            if lo < hi:
                out.append((s, lo, hi))
        return out

    def points(
        self,
        db: str,
        measurement: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> list[Point]:
        """Point scan with optional tag-equality and time filters.

        Tag filters resolve through the inverted index; time bounds resolve
        via bisect.  Results are ordered by (time, write order), identical
        to a stable time-sort over a flat insertion-ordered list.
        """
        return [
            p
            for _, _, p in self.scan_points(
                db, measurement, tags, t0, t1,
                t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
            )
        ]

    def scan_points(
        self,
        db: str,
        measurement: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> list[tuple[float, int, Point]]:
        """:meth:`points` plus each row's (time, seq) merge key.

        The seq is the per-measurement write sequence — what a scatter
        router needs to interleave several engines' rows into one globally
        ordered stream.
        """
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        out: list[tuple[float, int, Point]] = []
        for s, lo, hi in matched:
            names = list(s.cols)
            cols = [s.cols[n] for n in names]
            times, seqs, stags = s.times, s.seqs, s.tags
            for i in range(lo, hi):
                fields = {
                    nm: col[i] for nm, col in zip(names, cols) if col[i] is not None
                }
                out.append(
                    (times[i], seqs[i], Point(measurement, dict(stags), fields, times[i]))
                )
        if len(matched) > 1:
            out.sort(key=lambda r: (r[0], r[1]))
        return out

    @staticmethod
    def _resolve_columns(
        matched: list[tuple[_Series, int, int]], columns: list[str] | None
    ) -> list[str]:
        """``SELECT *`` column discovery: every field with at least one
        value among the matched rows, sorted by name."""
        if columns is not None:
            return list(columns)
        names: set[str] = set()
        for s, lo, hi in matched:
            for nm, col in s.cols.items():
                if nm not in names and any(
                    col[i] is not None for i in range(lo, hi)
                ):
                    names.add(nm)
        return sorted(names)

    def scan_columns(
        self,
        db: str,
        measurement: str,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
        limit: int | None = None,
    ) -> tuple[list[str], list[tuple[float, list[float | None]]]]:
        """Columnar read used by the query engine: no Point materialization.

        Returns ``(columns, rows)`` where each row is ``(time, values)``
        aligned with ``columns``.  ``columns=None`` selects every field with
        at least one value among the matched rows (the ``SELECT *`` shape),
        sorted by name — discovery always covers the full matched range even
        under ``limit``, so the column set is limit-invariant.  Row order
        matches :meth:`points`.  ``limit`` is pushed into the scan: only the
        first ``limit`` rows (in merged time order) are materialized.
        """
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, []
        if len(matched) == 1:
            s, lo, hi = matched[0]
            if limit is not None:
                hi = min(hi, lo + limit)
            sel = [s.cols.get(c) for c in cols]
            times = s.times
            rows = [
                (times[i], [c[i] if c is not None else None for c in sel])
                for i in range(lo, hi)
            ]
            return cols, rows
        if limit is not None:
            # K-way merge on (time, seq), stopping as soon as `limit` rows
            # are out — no full-range materialization and no global sort.
            def _iter(s: _Series, lo: int, hi: int):
                sel = [s.cols.get(c) for c in cols]
                times, seqs = s.times, s.seqs
                for i in range(lo, hi):
                    yield (times[i], seqs[i], i, sel)

            rows = []
            for t, _, i, sel in _heap_merge(
                *(_iter(s, lo, hi) for s, lo, hi in matched),
                key=lambda r: (r[0], r[1]),
            ):
                rows.append((t, [c[i] if c is not None else None for c in sel]))
                if len(rows) >= limit:
                    break
            return cols, rows
        tmp: list[tuple[float, int, list[float | None]]] = []
        for s, lo, hi in matched:
            sel = [s.cols.get(c) for c in cols]
            times, seqs = s.times, s.seqs
            for i in range(lo, hi):
                tmp.append(
                    (times[i], seqs[i], [c[i] if c is not None else None for c in sel])
                )
        tmp.sort(key=lambda r: (r[0], r[1]))
        return cols, [(t, vals) for t, _, vals in tmp]

    def scan_keyed(
        self,
        db: str,
        measurement: str,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
        limit: int | None = None,
    ) -> tuple[list[str], list[tuple[float, int, list[float | None]]]]:
        """:meth:`scan_columns` plus each row's (time, seq) merge key.

        This is the scatter-gather primitive: per-shard keyed streams can be
        k-way merged on (time, seq) into exactly the row order a single
        engine would produce.  Column discovery stays limit-invariant.
        """
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, []
        if len(matched) == 1:
            s, lo, hi = matched[0]
            if limit is not None:
                hi = min(hi, lo + limit)
            sel = [s.cols.get(c) for c in cols]
            times, seqs = s.times, s.seqs
            return cols, [
                (times[i], seqs[i], [c[i] if c is not None else None for c in sel])
                for i in range(lo, hi)
            ]

        def _iter(s: _Series, lo: int, hi: int):
            sel = [s.cols.get(c) for c in cols]
            times, seqs = s.times, s.seqs
            for i in range(lo, hi):
                yield (times[i], seqs[i], i, sel)

        rows: list[tuple[float, int, list[float | None]]] = []
        for t, q, i, sel in _heap_merge(
            *(_iter(s, lo, hi) for s, lo, hi in matched),
            key=lambda r: (r[0], r[1]),
        ):
            rows.append((t, q, [c[i] if c is not None else None for c in sel]))
            if limit is not None and len(rows) >= limit:
                break
        return cols, rows

    # ------------------------------------------------------------------
    # Aggregation pushdown
    # ------------------------------------------------------------------
    def aggregate_columns(
        self,
        db: str,
        measurement: str,
        agg: str,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], float | None, list[float | None]]:
        """Fold one aggregate per column straight over the value arrays.

        Returns ``(columns, first_row_time, aggregates)``; ``first_row_time``
        is ``None`` when no row matches.  The result is exactly what folding
        :meth:`scan_columns` rows in (time, seq) order yields — the
        single-series fast path folds each column slice in storage order,
        and the multi-series path merges values into that order first.
        """
        if agg not in _FOLDABLE:
            raise InfluxError(f"unknown aggregate {agg}")
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, None, [None] * len(cols)
        if len(matched) == 1:
            s, lo, hi = matched[0]
            out: list[float | None] = []
            for c in cols:
                col = s.cols.get(c)
                if col is None:
                    out.append(None)
                    continue
                vals = [v for v in col[lo:hi] if v is not None]
                out.append(fold_values(agg, vals))
            return cols, s.times[lo], out
        first_t = min(s.times[lo] for s, lo, _ in matched)
        out = []
        for c in cols:
            pairs: list[tuple[float, int, float]] = []
            for s, lo, hi in matched:
                col = s.cols.get(c)
                if col is None:
                    continue
                times, seqs = s.times, s.seqs
                pairs.extend(
                    (times[i], seqs[i], col[i])
                    for i in range(lo, hi)
                    if col[i] is not None
                )
            pairs.sort(key=lambda p: (p[0], p[1]))
            out.append(fold_values(agg, [v for _, _, v in pairs]))
        return cols, first_t, out

    def scan_buckets(
        self,
        db: str,
        measurement: str,
        agg: str,
        group_by_s: float,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], list[tuple[float, list[float | None]]]]:
        """``GROUP BY time(N)`` without row materialization.

        Single-series matches (the Listing 3 dashboard shape) resolve bucket
        edges by bisect and, when a rollup tier divides ``N`` evenly, serve
        fully covered buckets from the write-through rollup shard — raw
        folds cover only the unaligned head/tail the time filter cut
        through.  MEAN/SUM only ever ride a tier equal to ``N`` (summation
        order must match the raw left fold exactly); COUNT/MIN/MAX/LAST
        combine exactly across sub-buckets so any dividing tier works.
        Output is exactly equal to bucketing :meth:`scan_columns` rows.
        """
        if agg not in _FOLDABLE:
            raise InfluxError(f"unknown aggregate {agg}")
        if group_by_s <= 0:
            raise InfluxError("GROUP BY time() needs a positive bucket width")
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, []
        if len(matched) == 1:
            s, lo, hi = matched[0]
            r = self._pick_rollup(s, agg, group_by_s)
            if r is not None:
                return cols, self._buckets_rollup(s, lo, hi, cols, agg,
                                                  group_by_s, r)
            return cols, self._buckets_raw(s, lo, hi, cols, agg, group_by_s)
        # Multi-series: fold the merged scan in row order (rare shape —
        # exactness over speed).
        self._note_plan("multi-series-raw")
        _, rows = self.scan_columns(
            db, measurement, columns=cols, tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        buckets: dict[float, list[list[float]]] = {}
        for t, vals in rows:
            b = (t // group_by_s) * group_by_s
            slot = buckets.setdefault(b, [[] for _ in cols])
            for i, v in enumerate(vals):
                if v is not None:
                    slot[i].append(v)
        return cols, [
            (b, [fold_values(agg, vs) for vs in buckets[b]])
            for b in sorted(buckets)
        ]

    def _note_plan(self, outcome: str) -> None:
        self.rollup_plan[outcome] = self.rollup_plan.get(outcome, 0) + 1

    def _pick_rollup(self, s: _Series, agg: str, group_by_s: float) -> _Rollup | None:
        """Largest rollup tier that can serve ``GROUP BY time(N)`` exactly."""
        best = None
        skips: set[str] = set()
        for r in s.rollups:
            k = group_by_s / r.tier
            if k < 1.0 or k != k or not k.is_integer():
                skips.add("skip:tier-not-dividing")
                continue
            if k != 1.0 and agg in ("MEAN", "SUM"):
                # cross-bucket float summation reorders the fold
                skips.add("skip:mean-sum-needs-exact-tier")
                continue
            if agg in ("MIN", "MAX") and r.has_nan:
                # NaN makes min/max folds order-dependent
                skips.add("skip:nan-poisoned")
                continue
            if best is None or r.tier > best.tier:
                best = r
        for reason in skips:
            self._note_plan(reason)
        self._note_plan(f"served:{best.tier:g}" if best is not None else "raw-fallback")
        return best

    def _buckets_raw(
        self,
        s: _Series,
        lo: int,
        hi: int,
        cols: list[str],
        agg: str,
        N: float,
    ) -> list[tuple[float, list[float | None]]]:
        """Pushdown bucket walk over raw arrays: per bucket, find the run
        end (short linear probe, then bisect) and fold each column slice."""
        times = s.times
        keyq = lambda t: (t // N) * N  # noqa: E731
        sel = [s.cols.get(c) for c in cols]
        out: list[tuple[float, list[float | None]]] = []
        i = lo
        while i < hi:
            b = keyq(times[i])
            j = i + 1
            stop = min(i + 32, hi)
            while j < stop and keyq(times[j]) == b:
                j += 1
            if j == stop and j < hi and keyq(times[j]) == b:
                j = bisect_right(times, b, j, hi, key=keyq)
            row: list[float | None] = []
            for col in sel:
                if col is None:
                    row.append(None)
                    continue
                vals = [v for v in col[i:j] if v is not None]
                row.append(fold_values(agg, vals))
            out.append((b, row))
            i = j
        return out

    def _buckets_rollup(
        self,
        s: _Series,
        lo: int,
        hi: int,
        cols: list[str],
        agg: str,
        N: float,
        r: _Rollup,
    ) -> list[tuple[float, list[float | None]]]:
        """Serve ``GROUP BY time(N)`` from rollup tier ``r.tier``.

        The time filter may cut through the first and last tier bucket; rows
        of those two partial buckets are folded raw, every bucket in between
        comes straight from the rollup arrays.  Segments are exact partial
        folds, and segment combination (only ever needed for
        COUNT/MIN/MAX/LAST, where it is exact) reproduces the raw left fold.
        """
        times = s.times
        n = len(times)
        T = r.tier
        keyq = lambda t: (t // N) * N  # noqa: E731
        keyt = lambda t: (t // T) * T  # noqa: E731
        # [full_lo, full_hi): the maximal sub-range exactly tiled by whole
        # tier buckets; [lo, full_lo) and [full_hi, hi) are the raw head/tail.
        full_lo = lo
        if lo > 0 and keyt(times[lo - 1]) == keyt(times[lo]):
            full_lo = bisect_right(times, keyt(times[lo]), lo, hi, key=keyt)
        full_hi = hi
        if hi < n and keyt(times[hi]) == keyt(times[hi - 1]):
            full_hi = bisect_left(times, keyt(times[hi - 1]), full_lo, hi,
                                  key=keyt)
        if full_hi < full_lo:
            full_hi = full_lo

        sel = [s.cols.get(c) for c in cols]

        def _raw_stats(i: int, j: int) -> list[tuple]:
            stats = []
            for col in sel:
                vals = (
                    [v for v in col[i:j] if v is not None]
                    if col is not None else []
                )
                if vals:
                    stats.append(
                        (len(vals), sum(vals), min(vals), max(vals), vals[-1])
                    )
                else:
                    stats.append((0, 0.0, 0.0, 0.0, 0.0))
            return stats

        # (bucket, per-col (count, total, min, max, last)) segments in order.
        segments: list[tuple[float, list[tuple]]] = []
        if lo < full_lo:
            segments.append((keyq(times[lo]), _raw_stats(lo, full_lo)))
        if full_lo < full_hi:
            ri0 = bisect_left(r.starts, keyt(times[full_lo]))
            ri1 = bisect_right(r.starts, keyt(times[full_hi - 1]))
            rsel = [r.fields.get(c) for c in cols]
            for ri in range(ri0, ri1):
                stats = []
                for rc in rsel:
                    if rc is None or rc.count[ri] == 0:
                        stats.append((0, 0.0, 0.0, 0.0, 0.0))
                    else:
                        stats.append((rc.count[ri], rc.total[ri], rc.vmin[ri],
                                      rc.vmax[ri], rc.last[ri]))
                segments.append(((r.starts[ri] // N) * N, stats))
        if full_hi < hi:
            segments.append((keyq(times[full_hi]), _raw_stats(full_hi, hi)))

        out: list[tuple[float, list[float | None]]] = []
        cur_key: float | None = None
        accs: list[list] = []

        def _flush() -> None:
            if cur_key is None:
                return
            row: list[float | None] = []
            for acc in accs:
                c = acc[0]
                if c == 0:
                    row.append(None)
                elif agg == "MEAN":
                    row.append(acc[1] / c)
                elif agg == "SUM":
                    row.append(acc[1])
                elif agg == "COUNT":
                    row.append(float(c))
                elif agg == "MIN":
                    row.append(acc[2])
                elif agg == "MAX":
                    row.append(acc[3])
                else:  # LAST
                    row.append(acc[4])
            out.append((cur_key, row))

        for qb, stats in segments:
            if qb != cur_key:
                _flush()
                cur_key = qb
                accs = [[0, 0.0, 0.0, 0.0, 0.0] for _ in cols]
            for acc, (c1, t1_, m1, M1, l1) in zip(accs, stats):
                if c1 == 0:
                    continue
                if acc[0] == 0:
                    acc[0], acc[1], acc[2], acc[3], acc[4] = c1, t1_, m1, M1, l1
                else:
                    acc[0] += c1
                    acc[1] += t1_
                    if m1 < acc[2]:
                        acc[2] = m1
                    if M1 > acc[3]:
                        acc[3] = M1
                    acc[4] = l1
        _flush()
        return out

    # ------------------------------------------------------------------
    # Scatter-gather partials (consumed by repro.db.sharded)
    # ------------------------------------------------------------------
    # A *partial stat* is the mergeable fold state of one column slice:
    #     (count, total, vmin, vmax, last, last_t, last_seq, has_nan)
    # count/total carry MEAN and SUM as a sum/count pair; vmin/vmax/last
    # carry MIN/MAX/LAST; (last_t, last_seq) is the merge key of the slice's
    # final value so LAST combines exactly across engines; has_nan poisons
    # order-sensitive MIN/MAX merging.  last_t is None when the stat was
    # served from a rollup bucket (the key is not stored there).

    @staticmethod
    def _partial_stat(
        vals: list[float], last_t: float | None, last_seq: int | None
    ):
        """Fold one in-order value list into a partial stat (None if empty)."""
        if not vals:
            return None
        return (
            len(vals), sum(vals), min(vals), max(vals), vals[-1],
            last_t, last_seq, any(v != v for v in vals),
        )

    def aggregate_partials(
        self,
        db: str,
        measurement: str,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], float | None, list[tuple | None]]:
        """Per-column partial stats over the matched range.

        Returns ``(columns, first_row_time, stats)``.  Values fold in this
        engine's (time, seq) row order, so when every value of a column
        lives on one engine the finalized aggregate is bit-identical to the
        single-engine fold.
        """
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, None, [None] * len(cols)
        first_t = min(s.times[lo] for s, lo, _ in matched)
        out: list[tuple | None] = []
        if len(matched) == 1:
            s, lo, hi = matched[0]
            times, seqs = s.times, s.seqs
            for c in cols:
                col = s.cols.get(c)
                if col is None:
                    out.append(None)
                    continue
                vals, last = [], -1
                for i in range(lo, hi):
                    v = col[i]
                    if v is not None:
                        vals.append(v)
                        last = i
                out.append(
                    self._partial_stat(
                        vals,
                        times[last] if last >= 0 else None,
                        seqs[last] if last >= 0 else None,
                    )
                )
            return cols, first_t, out
        for c in cols:
            pairs: list[tuple[float, int, float]] = []
            for s, lo, hi in matched:
                col = s.cols.get(c)
                if col is None:
                    continue
                times, seqs = s.times, s.seqs
                pairs.extend(
                    (times[i], seqs[i], col[i])
                    for i in range(lo, hi)
                    if col[i] is not None
                )
            pairs.sort(key=lambda p: (p[0], p[1]))
            out.append(
                self._partial_stat(
                    [v for _, _, v in pairs],
                    pairs[-1][0] if pairs else None,
                    pairs[-1][1] if pairs else None,
                )
            )
        return cols, first_t, out

    def bucket_partials(
        self,
        db: str,
        measurement: str,
        group_by_s: float,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], list[tuple[float, list[tuple | None]]]]:
        """``GROUP BY time(N)`` partial stats per bucket per column.

        Single-series matches with a rollup tier exactly equal to ``N`` (and
        no NaN ever ingested) serve whole buckets straight from the rollup
        arrays — the sum/count pair ride — with raw folds only for the
        head/tail buckets the time filter cut through.  Rollup-served stats
        carry ``last_t=None`` (the key is not stored per bucket), which the
        router treats as "fall back if LAST must merge across shards".
        """
        if group_by_s <= 0:
            raise InfluxError("GROUP BY time() needs a positive bucket width")
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, []
        if len(matched) == 1:
            s, lo, hi = matched[0]
            r = next(
                (r for r in s.rollups if r.tier == group_by_s and not r.has_nan),
                None,
            )
            if r is not None:
                return cols, self._partials_rollup(s, lo, hi, cols, group_by_s, r)
            return cols, self._partials_raw(s, lo, hi, cols, group_by_s)
        # Multi-series within this engine: bucket the keyed merged rows.
        _, rows = self.scan_keyed(
            db, measurement, columns=cols, tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        buckets: dict[float, list[tuple[list[float], float | None, int | None]]] = {}
        for t, q, vals in rows:
            b = (t // group_by_s) * group_by_s
            slot = buckets.get(b)
            if slot is None:
                slot = buckets[b] = [([], None, None) for _ in cols]
            for i, v in enumerate(vals):
                if v is not None:
                    vs, _, _ = slot[i]
                    vs.append(v)
                    slot[i] = (vs, t, q)
        return cols, [
            (
                b,
                [
                    self._partial_stat(vs, lt, lq)
                    for vs, lt, lq in buckets[b]
                ],
            )
            for b in sorted(buckets)
        ]

    def _partials_raw(
        self, s: _Series, lo: int, hi: int, cols: list[str], N: float
    ) -> list[tuple[float, list[tuple | None]]]:
        """Raw bucket walk emitting partial stats (single-series shape)."""
        times, seqs = s.times, s.seqs
        keyq = lambda t: (t // N) * N  # noqa: E731
        sel = [s.cols.get(c) for c in cols]
        out: list[tuple[float, list[tuple | None]]] = []
        i = lo
        while i < hi:
            b = keyq(times[i])
            j = bisect_right(times, b, i, hi, key=keyq)
            row: list[tuple | None] = []
            for col in sel:
                if col is None:
                    row.append(None)
                    continue
                vals, last = [], -1
                for k in range(i, j):
                    v = col[k]
                    if v is not None:
                        vals.append(v)
                        last = k
                row.append(
                    self._partial_stat(
                        vals,
                        times[last] if last >= 0 else None,
                        seqs[last] if last >= 0 else None,
                    )
                )
            out.append((b, row))
            i = j
        return out

    def _partials_rollup(
        self, s: _Series, lo: int, hi: int, cols: list[str], N: float, r: _Rollup
    ) -> list[tuple[float, list[tuple | None]]]:
        """Partial stats served from rollup tier ``r.tier == N``.

        The head/tail buckets the time filter may cut through are folded
        raw (with exact last keys); every fully covered bucket comes
        straight from the per-bucket count/total/min/max/last arrays.
        ``r.has_nan`` is False on this path, so has_nan is False for served
        buckets.
        """
        times = s.times
        n = len(times)
        keyt = lambda t: (t // N) * N  # noqa: E731
        full_lo = lo
        if lo > 0 and keyt(times[lo - 1]) == keyt(times[lo]):
            full_lo = bisect_right(times, keyt(times[lo]), lo, hi, key=keyt)
        full_hi = hi
        if hi < n and keyt(times[hi]) == keyt(times[hi - 1]):
            full_hi = bisect_left(times, keyt(times[hi - 1]), full_lo, hi,
                                  key=keyt)
        if full_hi < full_lo:
            full_hi = full_lo
        out: list[tuple[float, list[tuple | None]]] = []
        if lo < full_lo:
            out.extend(self._partials_raw(s, lo, full_lo, cols, N))
        if full_lo < full_hi:
            ri0 = bisect_left(r.starts, keyt(times[full_lo]))
            ri1 = bisect_right(r.starts, keyt(times[full_hi - 1]))
            rsel = [r.fields.get(c) for c in cols]
            for ri in range(ri0, ri1):
                row: list[tuple | None] = []
                for rc in rsel:
                    if rc is None or rc.count[ri] == 0:
                        row.append(None)
                    else:
                        row.append(
                            (rc.count[ri], rc.total[ri], rc.vmin[ri],
                             rc.vmax[ri], rc.last[ri], None, None, False)
                        )
                out.append((r.starts[ri], row))
        if full_hi < hi:
            out.extend(self._partials_raw(s, full_hi, hi, cols, N))
        return out

    # ------------------------------------------------------------------
    # Sketch-served analytics: PERCENTILE / STDDEV / DISTINCT
    # ------------------------------------------------------------------
    # The planner contract mirrors the rollup planner: serve from tier
    # sketches only when the configured error bound provably holds —
    # a dividing tier, no NaN poisoning, at most ``max_merge`` digests per
    # answer, and ``digest_bound(merged) <= epsilon`` — otherwise fall back
    # to an exact columnar scan.  Every decision lands in ``sketch_plan``.

    def _note_sketch(self, outcome: str) -> None:
        self.sketch_plan[outcome] = self.sketch_plan.get(outcome, 0) + 1

    def _pick_sketch_rollup(self, s: _Series, group_by_s: float) -> _Rollup | None:
        """Largest tier whose per-bucket digests can serve ``GROUP BY
        time(N)`` percentiles within the configured rank-error bound."""
        cfg = self.sketch
        best = None
        skips: set[str] = set()
        for r in s.rollups:
            k = group_by_s / r.tier
            if k < 1.0 or k != k or not k.is_integer():
                skips.add("fallback:tier-not-dividing")
                continue
            if r.has_nan:
                skips.add("fallback:nan-poisoned")
                continue
            if k > cfg.max_merge:
                skips.add("fallback:merge-bound")
                continue
            if cfg.digest_bound(merged=k > 1.0) > cfg.epsilon:
                skips.add("fallback:error-bound")
                continue
            if best is None or r.tier > best.tier:
                best = r
        for reason in skips:
            self._note_sketch(reason)
        self._note_sketch(
            f"served:{best.tier:g}" if best is not None else "fallback:raw-scan"
        )
        return best

    def quantile_buckets(
        self,
        db: str,
        measurement: str,
        pct: float,
        group_by_s: float,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], list[tuple[float, list[float | None]]]]:
        """``PERCENTILE(field, pct) … GROUP BY time(N)``.

        Single-series matches serve interior buckets by merging at most
        ``N/tier`` per-bucket digests (O(tiers) per bucket, not O(rows));
        the head/tail buckets a time filter cut through — and every
        fallback — use the exact nearest-rank fold."""
        if group_by_s <= 0:
            raise InfluxError("GROUP BY time() needs a positive bucket width")
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, []
        if len(matched) == 1:
            s, lo, hi = matched[0]
            r = self._pick_sketch_rollup(s, group_by_s)
            if r is not None:
                return cols, self._quantile_rollup(s, lo, hi, cols, pct,
                                                   group_by_s, r)
            return cols, self._quantile_raw(s, lo, hi, cols, pct, group_by_s)
        self._note_sketch("fallback:multi-series")
        _, rows = self.scan_columns(
            db, measurement, columns=cols, tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        buckets: dict[float, list[list[float]]] = {}
        for t, vals in rows:
            b = (t // group_by_s) * group_by_s
            slot = buckets.setdefault(b, [[] for _ in cols])
            for i, v in enumerate(vals):
                if v is not None:
                    slot[i].append(v)
        return cols, [
            (b, [nearest_rank(vs, pct) for vs in buckets[b]])
            for b in sorted(buckets)
        ]

    def _quantile_raw(
        self, s: _Series, lo: int, hi: int, cols: list[str], pct: float, N: float
    ) -> list[tuple[float, list[float | None]]]:
        """Exact nearest-rank bucket walk over the raw value arrays."""
        times = s.times
        keyq = lambda t: (t // N) * N  # noqa: E731
        sel = [s.cols.get(c) for c in cols]
        out: list[tuple[float, list[float | None]]] = []
        i = lo
        while i < hi:
            b = keyq(times[i])
            j = bisect_right(times, b, i, hi, key=keyq)
            row: list[float | None] = []
            for col in sel:
                if col is None:
                    row.append(None)
                    continue
                vals = [v for v in col[i:j] if v is not None]
                row.append(nearest_rank(vals, pct))
            out.append((b, row))
            i = j
        return out

    def _quantile_rollup(
        self,
        s: _Series,
        lo: int,
        hi: int,
        cols: list[str],
        pct: float,
        N: float,
        r: _Rollup,
    ) -> list[tuple[float, list[float | None]]]:
        """Serve grouped percentiles from tier digests.

        Boundary output buckets the time filter may have cut through are
        folded exactly from raw rows; each fully covered bucket merges the
        ``N/tier`` digests it spans (one digest: no copy at all)."""
        times = s.times
        n = len(times)
        keyN = lambda t: (t // N) * N  # noqa: E731
        full_lo = lo
        if lo > 0 and keyN(times[lo - 1]) == keyN(times[lo]):
            full_lo = bisect_right(times, keyN(times[lo]), lo, hi, key=keyN)
        full_hi = hi
        if hi < n and keyN(times[hi]) == keyN(times[hi - 1]):
            full_hi = bisect_left(times, keyN(times[hi - 1]), full_lo, hi,
                                  key=keyN)
        if full_hi < full_lo:
            full_hi = full_lo
        q = pct / 100.0
        out: list[tuple[float, list[float | None]]] = []
        if lo < full_lo:
            out.extend(self._quantile_raw(s, lo, full_lo, cols, pct, N))
        if full_lo < full_hi:
            T = r.tier
            ri0 = bisect_left(r.starts, (times[full_lo] // T) * T)
            ri1 = bisect_right(r.starts, (times[full_hi - 1] // T) * T)
            rsel = [r.fields.get(c) for c in cols]
            cur: float | None = None
            accs: list[list[TDigest]] = []

            def _flush() -> None:
                if cur is None:
                    return
                row: list[float | None] = []
                for ds in accs:
                    if not ds:
                        row.append(None)
                    elif len(ds) == 1:
                        row.append(ds[0].quantile(q))
                    else:
                        row.append(TDigest.merged(ds).quantile(q))
                out.append((cur, row))

            for ri in range(ri0, ri1):
                b = keyN(r.starts[ri])
                if b != cur:
                    _flush()
                    cur = b
                    accs = [[] for _ in cols]
                for ci, rc in enumerate(rsel):
                    if rc is not None and rc.count[ri]:
                        d = rc.digest[ri]
                        if d is not None:
                            accs[ci].append(d)
            _flush()
        if full_hi < hi:
            out.extend(self._quantile_raw(s, full_hi, hi, cols, pct, N))
        return out

    def _range_digests(
        self, s: _Series, lo: int, hi: int, cols: list[str]
    ) -> list[TDigest | None] | None:
        """One merged digest per column over ``[lo, hi)``, or ``None`` when
        no tier may serve it: the slice must be exactly tiled by whole tier
        buckets (no partial head/tail), NaN-free, and span at most
        ``max_merge`` digests within the error bound."""
        cfg = self.sketch
        times = s.times
        n = len(times)
        skips: set[str] = set()
        for r in sorted(s.rollups, key=lambda r: -r.tier):
            T = r.tier
            keyt = lambda t: (t // T) * T  # noqa: E731
            if (lo > 0 and keyt(times[lo - 1]) == keyt(times[lo])) or (
                hi < n and keyt(times[hi]) == keyt(times[hi - 1])
            ):
                skips.add("fallback:unaligned-range")
                continue
            if r.has_nan:
                skips.add("fallback:nan-poisoned")
                continue
            ri0 = bisect_left(r.starts, keyt(times[lo]))
            ri1 = bisect_right(r.starts, keyt(times[hi - 1]))
            m = ri1 - ri0
            if m > cfg.max_merge:
                skips.add("fallback:merge-bound")
                continue
            if cfg.digest_bound(merged=m > 1) > cfg.epsilon:
                skips.add("fallback:error-bound")
                continue
            out: list[TDigest | None] = []
            for c in cols:
                rc = r.fields.get(c)
                if rc is None:
                    out.append(None)
                    continue
                ds = [
                    rc.digest[ri]
                    for ri in range(ri0, ri1)
                    if rc.count[ri] and rc.digest[ri] is not None
                ]
                if not ds:
                    out.append(None)
                elif len(ds) == 1:
                    out.append(ds[0])
                else:
                    out.append(TDigest.merged(ds))
            for reason in skips:
                self._note_sketch(reason)
            self._note_sketch(f"served:{T:g}")
            return out
        for reason in skips:
            self._note_sketch(reason)
        self._note_sketch("fallback:raw-scan")
        return None

    def quantile_columns(
        self,
        db: str,
        measurement: str,
        pct: float,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], float | None, list[float | None]]:
        """Ungrouped ``PERCENTILE(field, pct)`` per column.

        Served from merged tier digests when the matched slice is exactly
        bucket-tiled and within the merge/error bounds; exact nearest-rank
        scan otherwise."""
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, None, [None] * len(cols)
        first_t = min(s.times[lo] for s, lo, _ in matched)
        if len(matched) == 1:
            s, lo, hi = matched[0]
            digests = self._range_digests(s, lo, hi, cols)
            if digests is not None:
                q = pct / 100.0
                return cols, first_t, [
                    d.quantile(q) if d is not None else None for d in digests
                ]
            col_vals = (
                [v for v in s.cols[c][lo:hi] if v is not None]
                if c in s.cols else []
                for c in cols
            )
            return cols, first_t, [nearest_rank(vs, pct) for vs in col_vals]
        self._note_sketch("fallback:multi-series")
        out: list[float | None] = []
        for c in cols:
            vals: list[float] = []
            for s, lo, hi in matched:
                col = s.cols.get(c)
                if col is not None:
                    vals.extend(v for v in col[lo:hi] if v is not None)
            out.append(nearest_rank(vals, pct))
        return cols, first_t, out

    def stddev_columns(
        self,
        db: str,
        measurement: str,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], float | None, list[float | None]]:
        """Ungrouped sample STDDEV per column — exact, folded in the same
        (time, seq) order as the naive reference."""
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, None, [None] * len(cols)
        first_t = min(s.times[lo] for s, lo, _ in matched)
        out: list[float | None] = []
        if len(matched) == 1:
            s, lo, hi = matched[0]
            for c in cols:
                col = s.cols.get(c)
                vals = (
                    [v for v in col[lo:hi] if v is not None]
                    if col is not None else []
                )
                out.append(_stddev_of(vals))
            return cols, first_t, out
        for c in cols:
            pairs: list[tuple[float, int, float]] = []
            for s, lo, hi in matched:
                col = s.cols.get(c)
                if col is None:
                    continue
                times, seqs = s.times, s.seqs
                pairs.extend(
                    (times[i], seqs[i], col[i])
                    for i in range(lo, hi)
                    if col[i] is not None
                )
            pairs.sort(key=lambda p: (p[0], p[1]))
            out.append(_stddev_of([v for _, _, v in pairs]))
        return cols, first_t, out

    def stddev_buckets(
        self,
        db: str,
        measurement: str,
        group_by_s: float,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], list[tuple[float, list[float | None]]]]:
        """``STDDEV(field) … GROUP BY time(N)``, exact.

        A rollup tier equal to ``N`` serves whole buckets from the stored
        (count, Σv, Σv²) fold — bit-identical to the raw fold because the
        write path maintains both in the same order — with raw folds for
        the head/tail buckets the time filter cut through."""
        if group_by_s <= 0:
            raise InfluxError("GROUP BY time() needs a positive bucket width")
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, []
        if len(matched) == 1:
            s, lo, hi = matched[0]
            r = next((r for r in s.rollups if r.tier == group_by_s), None)
            if r is not None:
                self._note_sketch(f"stddev-served:{r.tier:g}")
                return cols, self._stddev_rollup(s, lo, hi, cols, group_by_s, r)
            self._note_sketch("stddev-raw")
            return cols, self._stddev_raw(s, lo, hi, cols, group_by_s)
        self._note_sketch("stddev-raw")
        _, rows = self.scan_columns(
            db, measurement, columns=cols, tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        buckets: dict[float, list[list[float]]] = {}
        for t, vals in rows:
            b = (t // group_by_s) * group_by_s
            slot = buckets.setdefault(b, [[] for _ in cols])
            for i, v in enumerate(vals):
                if v is not None:
                    slot[i].append(v)
        return cols, [
            (b, [_stddev_of(vs) for vs in buckets[b]])
            for b in sorted(buckets)
        ]

    def _stddev_raw(
        self, s: _Series, lo: int, hi: int, cols: list[str], N: float
    ) -> list[tuple[float, list[float | None]]]:
        times = s.times
        keyq = lambda t: (t // N) * N  # noqa: E731
        sel = [s.cols.get(c) for c in cols]
        out: list[tuple[float, list[float | None]]] = []
        i = lo
        while i < hi:
            b = keyq(times[i])
            j = bisect_right(times, b, i, hi, key=keyq)
            row: list[float | None] = []
            for col in sel:
                if col is None:
                    row.append(None)
                    continue
                vals = [v for v in col[i:j] if v is not None]
                row.append(_stddev_of(vals))
            out.append((b, row))
            i = j
        return out

    def _stddev_rollup(
        self, s: _Series, lo: int, hi: int, cols: list[str], N: float, r: _Rollup
    ) -> list[tuple[float, list[float | None]]]:
        """STDDEV buckets from tier ``r.tier == N``: head/tail raw, interior
        from the per-bucket (count, total, sumsq) arrays."""
        times = s.times
        n = len(times)
        keyt = lambda t: (t // N) * N  # noqa: E731
        full_lo = lo
        if lo > 0 and keyt(times[lo - 1]) == keyt(times[lo]):
            full_lo = bisect_right(times, keyt(times[lo]), lo, hi, key=keyt)
        full_hi = hi
        if hi < n and keyt(times[hi]) == keyt(times[hi - 1]):
            full_hi = bisect_left(times, keyt(times[hi - 1]), full_lo, hi,
                                  key=keyt)
        if full_hi < full_lo:
            full_hi = full_lo
        out: list[tuple[float, list[float | None]]] = []
        if lo < full_lo:
            out.extend(self._stddev_raw(s, lo, full_lo, cols, N))
        if full_lo < full_hi:
            ri0 = bisect_left(r.starts, keyt(times[full_lo]))
            ri1 = bisect_right(r.starts, keyt(times[full_hi - 1]))
            rsel = [r.fields.get(c) for c in cols]
            for ri in range(ri0, ri1):
                row: list[float | None] = []
                for rc in rsel:
                    if rc is None or rc.count[ri] == 0:
                        row.append(None)
                    else:
                        row.append(
                            stddev_from_partials(
                                rc.count[ri], rc.total[ri], rc.sumsq[ri]
                            )
                        )
                out.append((r.starts[ri], row))
        if full_hi < hi:
            out.extend(self._stddev_raw(s, full_hi, hi, cols, N))
        return out

    def distinct_keyed(
        self,
        db: str,
        measurement: str,
        column: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> list[tuple[float, int, float]]:
        """Exact distinct values of one field with their first-occurrence
        (time, seq) merge keys, ordered by first occurrence.

        Dedup keys on :func:`~repro.db.sketch.value_key`, so ``-0.0`` and
        ``0.0`` are one value, every NaN is one value, and shard-split
        streams merge to exactly the unsharded answer."""
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        best: dict[bytes, tuple[float, int, float]] = {}
        for s, lo, hi in matched:
            col = s.cols.get(column)
            if col is None:
                continue
            times, seqs = s.times, s.seqs
            for i in range(lo, hi):
                v = col[i]
                if v is None:
                    continue
                vk = value_key(v)
                prev = best.get(vk)
                if prev is None or (times[i], seqs[i]) < (prev[0], prev[1]):
                    best[vk] = (times[i], seqs[i], v)
        return sorted(best.values())

    def distinct_values(
        self,
        db: str,
        measurement: str,
        column: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> list[tuple[float, float]]:
        """``DISTINCT(field)``: (first_time, value) per distinct value in
        first-occurrence order — always exact (a value list cannot be
        sketch-served)."""
        self._note_sketch("distinct-scan")
        return [
            (t, v)
            for t, _, v in self.distinct_keyed(
                db, measurement, column, tags, t0, t1,
                t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
            )
        ]

    def count_distinct(
        self,
        db: str,
        measurement: str,
        column: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[float | None, float | None]:
        """``COUNT(DISTINCT field)`` → ``(first_time, count)``: HLL-served
        when provably within the configured relative error bound — every
        matched series fully covered by the time range and never trimmed —
        else an exact value-keyed scan.  Count is ``None`` when no value
        matches."""
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        if not matched:
            return None, None
        first_t = min(s.times[lo] for s, lo, _ in matched)
        cfg = self.sketch
        reason: str | None = None
        hlls: list[HyperLogLog] = []
        for s, lo, hi in matched:
            if lo != 0 or hi != len(s.times):
                reason = "fallback:hll-partial-range"
                break
            if s.hll_trimmed:
                reason = "fallback:hll-trimmed"
                break
            h = s.hlls.get(column)
            if h is None:
                continue  # field absent in this series: contributes nothing
            if h.trimmed:
                reason = "fallback:hll-trimmed"
                break
            if h.error_bound() > cfg.hll_epsilon:
                reason = "fallback:hll-error-bound"
                break
            hlls.append(h)
        if reason is None:
            if not hlls:
                return first_t, None
            self._note_sketch("hll-served")
            if len(hlls) == 1:
                return first_t, float(round(hlls[0].count()))
            merged = HyperLogLog(hlls[0].p)
            for h in hlls:
                merged.merge_from(h)
            return first_t, float(round(merged.count()))
        self._note_sketch(reason)
        n = len(
            self.distinct_keyed(
                db, measurement, column, tags, t0, t1,
                t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
            )
        )
        return first_t, (float(n) if n else None)

    def quantile_partials(
        self,
        db: str,
        measurement: str,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], float | None, list[TDigest | None]]:
        """Scatter-gather primitive: one digest per column over the matched
        range.  Serves from merged tier digests when the planner allows and
        otherwise *builds* the digest from the raw slice, so the router
        always receives a true mergeable sketch — never interleaved values.
        """
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, None, [None] * len(cols)
        first_t = min(s.times[lo] for s, lo, _ in matched)
        if len(matched) == 1:
            s, lo, hi = matched[0]
            digests = self._range_digests(s, lo, hi, cols)
            if digests is not None:
                return cols, first_t, digests
        out: list[TDigest | None] = []
        for c in cols:
            d = TDigest(self.sketch.compression)
            for s, lo, hi in matched:
                col = s.cols.get(c)
                if col is not None:
                    d.add_many(v for v in col[lo:hi] if v is not None)
            out.append(d if (d.count or d.has_nan) else None)
        return cols, first_t, out

    def quantile_bucket_partials(
        self,
        db: str,
        measurement: str,
        group_by_s: float,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], list[tuple[float, list[TDigest | None]]]]:
        """Per-bucket digest partials for sharded ``GROUP BY time(N)``
        percentiles: tier-digest-served interior buckets, built-from-raw
        boundary buckets — every bucket ships a mergeable digest."""
        if group_by_s <= 0:
            raise InfluxError("GROUP BY time() needs a positive bucket width")
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        cols = self._resolve_columns(matched, columns)
        if not matched:
            return cols, []
        if len(matched) == 1:
            s, lo, hi = matched[0]
            r = self._pick_sketch_rollup(s, group_by_s)
            if r is not None:
                return cols, self._digest_rollup(s, lo, hi, cols, group_by_s, r)
            return cols, self._digest_raw(s, lo, hi, cols, group_by_s)
        self._note_sketch("fallback:multi-series")
        _, rows = self.scan_columns(
            db, measurement, columns=cols, tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        comp = self.sketch.compression
        buckets: dict[float, list[TDigest | None]] = {}
        for t, vals in rows:
            b = (t // group_by_s) * group_by_s
            slot = buckets.get(b)
            if slot is None:
                slot = buckets[b] = [None] * len(cols)
            for i, v in enumerate(vals):
                if v is not None:
                    d = slot[i]
                    if d is None:
                        d = slot[i] = TDigest(comp)
                    d.add(v)
        return cols, [(b, buckets[b]) for b in sorted(buckets)]

    def _digest_raw(
        self, s: _Series, lo: int, hi: int, cols: list[str], N: float
    ) -> list[tuple[float, list[TDigest | None]]]:
        times = s.times
        keyq = lambda t: (t // N) * N  # noqa: E731
        sel = [s.cols.get(c) for c in cols]
        comp = self.sketch.compression
        out: list[tuple[float, list[TDigest | None]]] = []
        i = lo
        while i < hi:
            b = keyq(times[i])
            j = bisect_right(times, b, i, hi, key=keyq)
            row: list[TDigest | None] = []
            for col in sel:
                if col is None:
                    row.append(None)
                    continue
                vals = [v for v in col[i:j] if v is not None]
                if not vals:
                    row.append(None)
                    continue
                d = TDigest(comp)
                d.add_many(vals)
                row.append(d)
            out.append((b, row))
            i = j
        return out

    def _digest_rollup(
        self, s: _Series, lo: int, hi: int, cols: list[str], N: float, r: _Rollup
    ) -> list[tuple[float, list[TDigest | None]]]:
        """Digest partials per output bucket from tier digests (interior)
        plus built-from-raw boundary buckets."""
        times = s.times
        n = len(times)
        keyN = lambda t: (t // N) * N  # noqa: E731
        full_lo = lo
        if lo > 0 and keyN(times[lo - 1]) == keyN(times[lo]):
            full_lo = bisect_right(times, keyN(times[lo]), lo, hi, key=keyN)
        full_hi = hi
        if hi < n and keyN(times[hi]) == keyN(times[hi - 1]):
            full_hi = bisect_left(times, keyN(times[hi - 1]), full_lo, hi,
                                  key=keyN)
        if full_hi < full_lo:
            full_hi = full_lo
        out: list[tuple[float, list[TDigest | None]]] = []
        if lo < full_lo:
            out.extend(self._digest_raw(s, lo, full_lo, cols, N))
        if full_lo < full_hi:
            T = r.tier
            ri0 = bisect_left(r.starts, (times[full_lo] // T) * T)
            ri1 = bisect_right(r.starts, (times[full_hi - 1] // T) * T)
            rsel = [r.fields.get(c) for c in cols]
            cur: float | None = None
            accs: list[list[TDigest]] = []

            def _flush() -> None:
                if cur is None:
                    return
                row: list[TDigest | None] = []
                for ds in accs:
                    if not ds:
                        row.append(None)
                    elif len(ds) == 1:
                        row.append(ds[0])
                    else:
                        row.append(TDigest.merged(ds))
                out.append((cur, row))

            for ri in range(ri0, ri1):
                b = keyN(r.starts[ri])
                if b != cur:
                    _flush()
                    cur = b
                    accs = [[] for _ in cols]
                for ci, rc in enumerate(rsel):
                    if rc is not None and rc.count[ri]:
                        d = rc.digest[ri]
                        if d is not None:
                            accs[ci].append(d)
            _flush()
        if full_hi < hi:
            out.extend(self._digest_raw(s, full_hi, hi, cols, N))
        return out

    def distinct_partials(
        self,
        db: str,
        measurement: str,
        column: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[float | None, HyperLogLog | None, list[tuple[float, int, float]]]:
        """Cardinality partials for the shard router: ``(first_t, hll,
        exact)``.

        ``hll`` is a merged per-series HLL when this engine could serve the
        range approximately (None otherwise); ``exact`` is the value-keyed
        distinct list with first-occurrence merge keys, always present so
        the router can fall back to an exact union when any shard's HLL is
        disqualified."""
        matched = self._matched_slices(
            self._db(db), measurement, tags, t0, t1, t0_exclusive, t1_exclusive
        )
        first_t = min((s.times[lo] for s, lo, _ in matched), default=None)
        hll: HyperLogLog | None = None
        ok = True
        collected: list[HyperLogLog] = []
        for s, lo, hi in matched:
            if lo != 0 or hi != len(s.times) or s.hll_trimmed:
                ok = False
                break
            h = s.hlls.get(column)
            if h is None:
                continue
            if h.trimmed:
                ok = False
                break
            collected.append(h)
        if ok and collected:
            hll = HyperLogLog(collected[0].p)
            for h in collected:
                hll.merge_from(h)
        exact = self.distinct_keyed(
            db, measurement, column, tags, t0, t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        return first_t, hll, exact

    # ------------------------------------------------------------------
    # Series administration
    # ------------------------------------------------------------------
    def delete_series(self, db: str, measurement: str, tags: dict[str, str] | None = None) -> int:
        """DROP SERIES: remove every series of ``measurement`` whose tag set
        contains all of ``tags``; returns rows removed.

        This is the idempotency primitive federation re-sync relies on —
        re-copying an observation's raw points first drops the stale copy,
        so repeated syncs converge instead of duplicating.  Cumulative
        ingest counters (``points_written``/``bytes_written``) are *not*
        rolled back, matching real InfluxDB's write statistics.
        """
        d = self._db(db)
        m = d.meas.get(measurement)
        if m is None:
            return 0
        removed = 0
        for sid in list(m.match_ids(tags)):
            removed += len(m.series[sid])
            m.remove_series(sid)
        if not m.series:
            del d.meas[measurement]
        if removed:
            self._bump(d, measurement)
        return removed

    def series_count(
        self, db: str, measurement: str, tags: dict[str, str] | None = None
    ) -> int:
        """Number of live series of ``measurement`` matching the tag filter
        — a pure index probe, used by the shard router to find which
        engines a query must scatter to."""
        m = self._db(db).meas.get(measurement)
        return 0 if m is None else len(m.match_ids(tags))

    def list_series(self, db: str) -> list[tuple[str, dict[str, str]]]:
        """Every live series as ``(measurement, tags)`` — the rebalancer's
        enumeration primitive."""
        d = self._db(db)
        return [
            (name, dict(s.tags))
            for name, m in sorted(d.meas.items())
            for _, s in sorted(m.series.items())
        ]

    def pop_series(
        self, db: str, measurement: str, tags: dict[str, str]
    ) -> list[tuple[float, int, dict[str, float]]] | None:
        """Detach exactly the series whose tag set equals ``tags``.

        Returns its rows as ``(time, seq, fields)`` (None if absent) and
        bumps the generation.  Unlike :meth:`delete_series` this matches by
        *exact* tag set, not containment — migration must never drag a
        superset series along.  Cumulative ingest counters stay put: a
        shard move is not new ingest.
        """
        d = self._db(db)
        m = d.meas.get(measurement)
        if m is None:
            return None
        sid = m.by_tags.get(tuple(sorted(tags.items())))
        if sid is None:
            return None
        s = m.series[sid]
        names = list(s.cols)
        cols = [s.cols[n] for n in names]
        rows = [
            (t, q, {nm: col[i] for nm, col in zip(names, cols) if col[i] is not None})
            for i, (t, q) in enumerate(zip(s.times, s.seqs))
        ]
        m.remove_series(sid)
        if not m.series:
            del d.meas[measurement]
        self._bump(d, measurement)
        return rows

    def import_rows(
        self,
        db: str,
        measurement: str,
        tags: dict[str, str],
        rows: list[tuple[float, int, dict[str, float]]],
    ) -> int:
        """Migration receive path: append rows keeping their original
        (time, seq) keys, so global merge order survives the move.  Bumps
        the generation; leaves the ingest counters untouched (the mirror of
        :meth:`pop_series`)."""
        if not rows:
            return 0
        d = self._db(db)
        m = d.meas.get(measurement)
        if m is None:
            m = d.meas[measurement] = _Measurement(measurement, d.tiers, d.sketch)
        s = m.series_for(tags)
        for t, seq, fields in rows:
            if seq >= m.seq:
                m.seq = seq + 1
            s.add(t, seq, fields)
        self._bump(d, measurement)
        return len(rows)

    # ------------------------------------------------------------------
    # Retention & stats
    # ------------------------------------------------------------------
    def enforce_retention(self, db: str, now: float) -> int:
        """Drop points older than the retention horizon; returns #dropped.

        Per series this is one bisect plus a slice — no list rebuilding."""
        d = self._db(db)
        if d.retention.duration_s is None:
            return 0
        horizon = now - d.retention.duration_s
        dropped = 0
        for name in list(d.meas):
            m = d.meas[name]
            meas_dropped = 0
            for sid in list(m.series):
                s = m.series[sid]
                meas_dropped += s.drop_before(horizon)
                if not s.times:
                    m.remove_series(sid)
            if not m.series:
                del d.meas[name]
            if meas_dropped:
                self._bump(d, name)
            dropped += meas_dropped
        return dropped

    def stats(self, db: str) -> dict:
        """Introspection snapshot of one database.

        Besides the cumulative ingest counters, ``measurements`` breaks the
        live state down per measurement — series and row counts, rollup
        bucket counts per tier, and the generation stamp.  The shard
        rebalancer, the balance tests, and the ``pmove shard`` CLI all read
        this; it doubles as a debugging endpoint.
        """
        d = self._db(db)
        stored = sum(
            len(s) for m in d.meas.values() for s in m.series.values()
        )
        n_series = sum(len(m.series) for m in d.meas.values())
        measurements: dict[str, dict] = {}
        for name, m in sorted(d.meas.items()):
            rollup_buckets: dict[float, int] = {t: 0 for t in d.tiers}
            digest_buckets = 0
            digest_centroids = 0
            digest_bytes = 0
            hll_fields = 0
            hll_bytes = m.series_hll.memory_bytes()
            for s in m.series.values():
                for r in s.rollups:
                    rollup_buckets[r.tier] = rollup_buckets.get(r.tier, 0) + len(r.starts)
                    for rc in r.fields.values():
                        for dg in rc.digest:
                            if dg is not None:
                                digest_buckets += 1
                                digest_centroids += dg.centroid_count
                                digest_bytes += dg.memory_bytes()
                hll_fields += len(s.hlls)
                hll_bytes += sum(h.memory_bytes() for h in s.hlls.values())
            measurements[name] = {
                "series": len(m.series),
                "points": sum(len(s) for s in m.series.values()),
                "rollup_buckets": rollup_buckets,
                "generation": d.gens.get(name, 0),
                "sketch": {
                    "digest_buckets": digest_buckets,
                    "digest_centroids": digest_centroids,
                    "digest_memory_bytes": digest_bytes,
                    "hll_fields": hll_fields,
                    "hll_registers": 1 << m.sketch.hll_p,
                    "hll_memory_bytes": hll_bytes,
                    "active_series_estimate": float(round(m.series_hll.count())),
                },
            }
        return {
            "points_written": d.points_written,
            "bytes_written": d.bytes_written,
            "series_stored": stored,
            "series_count": n_series,
            "measurements": measurements,
        }
