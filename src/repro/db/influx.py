"""In-memory InfluxDB 1.8 substitute.

P-MoVE stores *SWTelemetry* and *HWTelemetry* samples in InfluxDB (§III-A),
keyed by measurement name, tagged with observation UUIDs, with one field per
instance (``_cpu0``, ``_node1``, …).  This substrate implements the pieces
the framework exercises: line-protocol ingest, per-database measurement
stores, retention policies (the paper's answer to long-term disk pressure,
§V-B), and the InfluxQL subset executed by :mod:`repro.db.influxql`.

Timestamps are virtual-clock seconds stored at nanosecond resolution, as
Influx line protocol does.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["Point", "InfluxError", "RetentionPolicy", "InfluxDB"]


class InfluxError(ValueError):
    """Malformed line protocol or unknown database/measurement."""


_ESCAPE_RE = re.compile(r"([,= ])")


def _escape(s: str) -> str:
    return _ESCAPE_RE.sub(r"\\\1", s)


def _unescape(s: str) -> str:
    return re.sub(r"\\([,= ])", r"\1", s)


def _split_unescaped(s: str, sep: str) -> list[str]:
    """Split on ``sep`` except where backslash-escaped."""
    out, buf, i = [], "", 0
    while i < len(s):
        ch = s[i]
        if ch == "\\" and i + 1 < len(s):
            buf += s[i : i + 2]
            i += 2
            continue
        if ch == sep:
            out.append(buf)
            buf = ""
        else:
            buf += ch
        i += 1
    out.append(buf)
    return out


@dataclass(frozen=True)
class Point:
    """One time-series sample."""

    measurement: str
    tags: dict[str, str]
    fields: dict[str, float]
    time: float  # seconds

    def __post_init__(self) -> None:
        if not self.measurement:
            raise InfluxError("point needs a measurement name")
        if not self.fields:
            raise InfluxError("point needs at least one field")

    def to_line(self) -> str:
        """Serialize to Influx line protocol (ns timestamp)."""
        key = _escape(self.measurement)
        if self.tags:
            key += "," + ",".join(
                f"{_escape(k)}={_escape(v)}" for k, v in sorted(self.tags.items())
            )
        fields = ",".join(f"{_escape(k)}={v!r}" for k, v in sorted(self.fields.items()))
        return f"{key} {fields} {int(self.time * 1e9)}"

    @classmethod
    def from_line(cls, line: str) -> "Point":
        """Parse one line-protocol record."""
        parts = _split_unescaped(line.strip(), " ")
        parts = [p for p in parts if p != ""]
        if len(parts) < 2:
            raise InfluxError(f"malformed line protocol: {line!r}")
        key = parts[0]
        field_part = parts[1]
        ts = int(parts[2]) / 1e9 if len(parts) > 2 else 0.0
        key_parts = _split_unescaped(key, ",")
        measurement = _unescape(key_parts[0])
        tags: dict[str, str] = {}
        for kv in key_parts[1:]:
            k, _, v = kv.partition("=")
            if not k or not v:
                raise InfluxError(f"malformed tag {kv!r}")
            tags[_unescape(k)] = _unescape(v)
        fields: dict[str, float] = {}
        for kv in _split_unescaped(field_part, ","):
            k, _, v = kv.partition("=")
            if not k or v == "":
                raise InfluxError(f"malformed field {kv!r}")
            try:
                fields[_unescape(k)] = float(v)
            except ValueError:
                raise InfluxError(f"non-numeric field value {v!r}") from None
        return cls(measurement=measurement, tags=tags, fields=fields, time=ts)


@dataclass
class RetentionPolicy:
    """How long a database keeps points (``duration_s=None`` = forever)."""

    duration_s: float | None = None
    name: str = "autogen"


class _Database:
    def __init__(self, name: str) -> None:
        self.name = name
        self.measurements: dict[str, list[Point]] = defaultdict(list)
        self.retention = RetentionPolicy()
        self.points_written = 0
        self.bytes_written = 0


class InfluxDB:
    """The time-series store: multiple databases, line-protocol ingest."""

    def __init__(self) -> None:
        self._dbs: dict[str, _Database] = {}

    # ------------------------------------------------------------------
    # Admin
    # ------------------------------------------------------------------
    def create_database(self, name: str) -> None:
        if not name:
            raise InfluxError("database name cannot be empty")
        self._dbs.setdefault(name, _Database(name))

    def drop_database(self, name: str) -> None:
        self._dbs.pop(name, None)

    def databases(self) -> list[str]:
        return sorted(self._dbs)

    def _db(self, name: str) -> _Database:
        try:
            return self._dbs[name]
        except KeyError:
            raise InfluxError(f"database {name!r} does not exist") from None

    def set_retention_policy(self, db: str, duration_s: float | None) -> None:
        self._db(db).retention = RetentionPolicy(duration_s=duration_s)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def write(self, db: str, point: Point) -> None:
        d = self._db(db)
        d.measurements[point.measurement].append(point)
        d.points_written += len(point.fields)
        d.bytes_written += len(point.to_line()) + 1

    def write_many(self, db: str, points: list[Point]) -> int:
        for p in points:
            self.write(db, p)
        return len(points)

    def write_lines(self, db: str, lines: str) -> int:
        """Ingest a line-protocol batch; returns points written."""
        n = 0
        for line in lines.splitlines():
            if line.strip() and not line.lstrip().startswith("#"):
                self.write(db, Point.from_line(line))
                n += 1
        return n

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def measurements(self, db: str) -> list[str]:
        return sorted(self._db(db).measurements)

    def points(
        self,
        db: str,
        measurement: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
    ) -> list[Point]:
        """Raw point scan with optional tag-equality and time filters."""
        pts = self._db(db).measurements.get(measurement, [])
        out = []
        for p in pts:
            if tags and any(p.tags.get(k) != v for k, v in tags.items()):
                continue
            if t0 is not None and p.time < t0:
                continue
            if t1 is not None and p.time > t1:
                continue
            out.append(p)
        return sorted(out, key=lambda p: p.time)

    # ------------------------------------------------------------------
    # Retention & stats
    # ------------------------------------------------------------------
    def enforce_retention(self, db: str, now: float) -> int:
        """Drop points older than the retention horizon; returns #dropped."""
        d = self._db(db)
        if d.retention.duration_s is None:
            return 0
        horizon = now - d.retention.duration_s
        dropped = 0
        for name in list(d.measurements):
            kept = [p for p in d.measurements[name] if p.time >= horizon]
            dropped += len(d.measurements[name]) - len(kept)
            if kept:
                d.measurements[name] = kept
            else:
                del d.measurements[name]
        return dropped

    def stats(self, db: str) -> dict[str, int]:
        d = self._db(db)
        stored = sum(len(v) for v in d.measurements.values())
        return {
            "points_written": d.points_written,
            "bytes_written": d.bytes_written,
            "series_stored": stored,
        }
