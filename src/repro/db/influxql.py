"""InfluxQL subset: the query language P-MoVE auto-generates (Listing 3).

Supported grammar::

    SELECT <select_list> FROM "<measurement>"
        [WHERE <cond> [AND <cond>]*]
        [GROUP BY time(<N>s)]

    SHOW MEASUREMENTS
    select_list := * | item [, item]*
    item        := "field" | field | AGG("field") with AGG in
                   MEAN MAX MIN SUM COUNT LAST
    cond        := tagkey = "value" | tagkey = 'value'
                 | time >= <sec> | time <= <sec> | time > | time <

The paper's generated queries (Listing 3) are exactly this shape::

    SELECT "_cpu0", "_cpu1" FROM "kernel_percpu_cpu_idle"
        WHERE tag="278e26c2-3fd3-45e4-862b-5646dc9e7aa0"

Results come back as a :class:`ResultSet` of (time, values-per-column).

Execution pushes work into the storage engine: raw selects ride
:meth:`InfluxDB.scan_columns` (with LIMIT pushed into the scan),
aggregates ride :meth:`InfluxDB.aggregate_columns`, and ``GROUP BY time``
rides :meth:`InfluxDB.scan_buckets` — which serves coarse buckets from
write-through rollup tiers when that is provably exact.  Parsed
statements are LRU-cached, since dashboards re-issue the same
auto-generated query text on every refresh.  :func:`naive_execute` keeps
the original materialize-then-fold path as the equivalence reference.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache

from .influx import InfluxDB, InfluxError

__all__ = [
    "Query",
    "ResultSet",
    "parse_query",
    "execute",
    "naive_execute",
    "show_measurements",
]

_AGGS = ("MEAN", "MAX", "MIN", "SUM", "COUNT", "LAST")


@dataclass(frozen=True)
class Query:
    """A parsed InfluxQL statement."""

    measurement: str
    columns: tuple[str, ...]  # field names, or ("*",)
    aggregate: str | None  # None or one of _AGGS
    tag_filters: tuple[tuple[str, str], ...]
    t0: float | None
    t1: float | None
    group_by_s: float | None
    limit: int | None = None
    t0_exclusive: bool = False  # strict time >  (vs >=)
    t1_exclusive: bool = False  # strict time <  (vs <=)


@dataclass
class ResultSet:
    """Query output: ordered columns and (time, row) tuples."""

    columns: list[str]
    rows: list[tuple[float, list[float | None]]]
    _col_cache: dict[str, list[float | None]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def column(self, name: str) -> list[float | None]:
        """One column's values, memoized: dashboards extract the same
        column per series per render, so the index lookup and list build
        are paid once per name.  Callers get a fresh list — the cache
        entry must never be handed out, or one caller's in-place edit
        would poison every later read."""
        cached = self._col_cache.get(name)
        if cached is None:
            idx = self.columns.index(name)
            cached = [row[idx] for _, row in self.rows]
            self._col_cache[name] = cached
        return list(cached)

    def times(self) -> list[float]:
        return [t for t, _ in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def _strip_quotes(s: str) -> str:
    s = s.strip()
    if len(s) >= 2 and s[0] == s[-1] and s[0] in "\"'":
        return s[1:-1]
    return s


def show_measurements(db: InfluxDB, database: str) -> list[str]:
    """Execute ``SHOW MEASUREMENTS`` (what Grafana's query builder runs)."""
    return db.measurements(database)


def parse_query(text: str) -> Query:
    """Parse one InfluxQL statement (raises :class:`InfluxError`).

    Parses are LRU-cached on the statement text: auto-generated dashboard
    queries (Listing 3) are re-executed verbatim on every panel refresh, so
    the regex work is paid once per distinct statement.  The returned
    :class:`Query` is frozen, so sharing the cached instance is safe.
    """
    return _parse_query_cached(text)


@lru_cache(maxsize=512)
def _parse_query_cached(text: str) -> Query:
    src = text.strip().rstrip(";")
    m = re.match(
        r"SELECT\s+(?P<sel>.+?)\s+FROM\s+(?P<meas>\"[^\"]+\"|\S+)"
        r"(?:\s+WHERE\s+(?P<where>.+?))?"
        r"(?:\s+GROUP\s+BY\s+time\((?P<gb>[\d.]+)s\))?"
        r"(?:\s+LIMIT\s+(?P<limit>\d+))?\s*$",
        src,
        re.IGNORECASE | re.DOTALL,
    )
    if not m:
        raise InfluxError(f"unparseable InfluxQL: {text!r}")
    sel = m.group("sel").strip()
    measurement = _strip_quotes(m.group("meas"))

    aggregate: str | None = None
    columns: list[str] = []
    if sel == "*":
        columns = ["*"]
    else:
        for item in re.split(r"\s*,\s*", sel):
            am = re.match(r"(\w+)\((.+)\)$", item.strip())
            if am and am.group(1).upper() in _AGGS:
                agg = am.group(1).upper()
                if aggregate is not None and aggregate != agg:
                    raise InfluxError("mixed aggregate functions not supported")
                aggregate = agg
                columns.append(_strip_quotes(am.group(2)))
            else:
                columns.append(_strip_quotes(item))

    tag_filters: list[tuple[str, str]] = []
    t0 = t1 = None
    t0_exclusive = t1_exclusive = False
    if m.group("where"):
        for cond in re.split(r"\s+AND\s+", m.group("where"), flags=re.IGNORECASE):
            cond = cond.strip()
            tm = re.match(r"time\s*(>=|<=|>|<)\s*([\d.eE+-]+)", cond)
            if tm:
                op, val = tm.group(1), float(tm.group(2))
                if op in (">=", ">"):
                    t0, t0_exclusive = val, op == ">"
                else:
                    t1, t1_exclusive = val, op == "<"
                continue
            em = re.match(r"(\"?[\w.]+\"?)\s*=\s*(\"[^\"]*\"|'[^']*'|\S+)", cond)
            if not em:
                raise InfluxError(f"unparseable WHERE condition {cond!r}")
            tag_filters.append((_strip_quotes(em.group(1)), _strip_quotes(em.group(2))))

    gb = float(m.group("gb")) if m.group("gb") else None
    if gb is not None and aggregate is None:
        aggregate = "MEAN"  # Influx requires an aggregate with GROUP BY time
    limit = int(m.group("limit")) if m.group("limit") else None
    if limit is not None and limit < 1:
        raise InfluxError("LIMIT must be positive")
    return Query(
        measurement=measurement,
        columns=tuple(columns),
        aggregate=aggregate,
        tag_filters=tuple(tag_filters),
        t0=t0,
        t1=t1,
        group_by_s=gb,
        limit=limit,
        t0_exclusive=t0_exclusive,
        t1_exclusive=t1_exclusive,
    )


def _agg(name: str, values: list[float]) -> float | None:
    if not values:
        return None
    if name == "MEAN":
        return sum(values) / len(values)
    if name == "MAX":
        return max(values)
    if name == "MIN":
        return min(values)
    if name == "SUM":
        return sum(values)
    if name == "COUNT":
        return float(len(values))
    if name == "LAST":
        return values[-1]
    raise InfluxError(f"unknown aggregate {name}")


def execute(db: InfluxDB, database: str, query: Query | str) -> ResultSet:
    """Execute a query against one database.

    Each statement shape dispatches to the matching engine pushdown:

    - raw select → ``scan_columns`` with LIMIT pushed into the scan;
    - plain aggregate → ``aggregate_columns`` (column folds, no rows);
    - GROUP BY time(N) → ``scan_buckets`` (bisected bucket edges, served
      from a rollup tier when that is provably exact).

    Results are exactly equal to :func:`naive_execute`.
    """
    q = parse_query(query) if isinstance(query, str) else query
    columns = None if q.columns == ("*",) else list(q.columns)
    tags = dict(q.tag_filters)

    if q.aggregate is None:
        cols, rows = db.scan_columns(
            database,
            q.measurement,
            columns=columns,
            tags=tags,
            t0=q.t0,
            t1=q.t1,
            t0_exclusive=q.t0_exclusive,
            t1_exclusive=q.t1_exclusive,
            limit=q.limit,
        )
        return ResultSet(columns=cols, rows=rows)

    if q.group_by_s is None:
        cols, first_t, aggs = db.aggregate_columns(
            database,
            q.measurement,
            q.aggregate,
            columns=columns,
            tags=tags,
            t0=q.t0,
            t1=q.t1,
            t0_exclusive=q.t0_exclusive,
            t1_exclusive=q.t1_exclusive,
        )
        return ResultSet(
            columns=cols, rows=[(first_t if first_t is not None else 0.0, aggs)]
        )

    cols, out = db.scan_buckets(
        database,
        q.measurement,
        q.aggregate,
        q.group_by_s,
        columns=columns,
        tags=tags,
        t0=q.t0,
        t1=q.t1,
        t0_exclusive=q.t0_exclusive,
        t1_exclusive=q.t1_exclusive,
    )
    if q.limit is not None:
        out = out[: q.limit]
    return ResultSet(columns=cols, rows=out)


def naive_execute(db, database: str, query: Query | str) -> ResultSet:
    """The seed execute path: materialize scan rows, then fold in Python.

    Kept as the equivalence reference (and benchmark baseline) for the
    pushdown/rollup paths in :func:`execute`.  Works against any engine
    exposing ``scan_columns`` — including :class:`~repro.db.naive.NaiveInfluxDB`.
    """
    q = parse_query(query) if isinstance(query, str) else query
    cols, rows = db.scan_columns(
        database,
        q.measurement,
        columns=None if q.columns == ("*",) else list(q.columns),
        tags=dict(q.tag_filters),
        t0=q.t0,
        t1=q.t1,
        t0_exclusive=q.t0_exclusive,
        t1_exclusive=q.t1_exclusive,
    )

    if q.aggregate is None:
        if q.limit is not None:
            rows = rows[: q.limit]
        return ResultSet(columns=cols, rows=rows)

    if q.group_by_s is None:
        row = []
        for i in range(len(cols)):
            vals = [r[i] for _, r in rows if r[i] is not None]
            row.append(_agg(q.aggregate, vals))
        t = rows[0][0] if rows else 0.0
        return ResultSet(columns=cols, rows=[(t, row)])

    # GROUP BY time(Ns): bucket on floor(time / N) * N.
    buckets: dict[float, list[list[float]]] = {}
    for t, vals in rows:
        b = (t // q.group_by_s) * q.group_by_s
        slot = buckets.setdefault(b, [[] for _ in cols])
        for i, v in enumerate(vals):
            if v is not None:
                slot[i].append(v)
    out = [
        (b, [_agg(q.aggregate, bucket) for bucket in buckets[b]])
        for b in sorted(buckets)
    ]
    if q.limit is not None:
        out = out[: q.limit]
    return ResultSet(columns=cols, rows=out)
