"""InfluxQL subset: the query language P-MoVE auto-generates (Listing 3).

Supported grammar::

    SELECT <select_list> FROM "<measurement>"
        [WHERE <cond> [AND <cond>]*]
        [GROUP BY time(<N>s)]

    SHOW MEASUREMENTS
    select_list := * | item [, item]*
    item        := "field" | field | AGG("field") with AGG in
                   MEAN MAX MIN SUM COUNT LAST STDDEV MEDIAN DISTINCT
                 | PERCENTILE("field", <pct>) | COUNT(DISTINCT "field")
    cond        := tagkey = "value" | tagkey = 'value'
                 | time >= <sec> | time <= <sec> | time > | time <

The paper's generated queries (Listing 3) are exactly this shape::

    SELECT "_cpu0", "_cpu1" FROM "kernel_percpu_cpu_idle"
        WHERE tag="278e26c2-3fd3-45e4-862b-5646dc9e7aa0"

Results come back as a :class:`ResultSet` of (time, values-per-column).

Execution pushes work into the storage engine: raw selects ride
:meth:`InfluxDB.scan_columns` (with LIMIT pushed into the scan),
aggregates ride :meth:`InfluxDB.aggregate_columns`, and ``GROUP BY time``
rides :meth:`InfluxDB.scan_buckets` — which serves coarse buckets from
write-through rollup tiers when that is provably exact.  The analytic
aggregates added by the sketch layer dispatch the same way:
``PERCENTILE``/``MEDIAN`` ride :meth:`InfluxDB.quantile_buckets` /
:meth:`InfluxDB.quantile_columns` (tier t-digests when the serving
planner's error bound holds, exact nearest-rank otherwise), ``STDDEV``
rides the (count, Σv, Σv²) rollup partials, and ``COUNT(DISTINCT f)``
rides per-series HyperLogLogs.  Engines that lack those methods fall
back to :func:`naive_execute`, which keeps the original
materialize-then-fold path as the exact reference.  Parsed statements
are LRU-cached, since dashboards re-issue the same auto-generated query
text on every refresh.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache

from .influx import InfluxDB, InfluxError
from .sketch import nearest_rank, stddev_of, value_key

__all__ = [
    "Query",
    "ResultSet",
    "parse_query",
    "execute",
    "naive_execute",
    "show_measurements",
]

_AGGS = ("MEAN", "MAX", "MIN", "SUM", "COUNT", "LAST", "STDDEV", "DISTINCT")
# Analytic aggregates introduced by the sketch layer; MEDIAN parses to
# PERCENTILE/50 and COUNT(DISTINCT f) to COUNT_DISTINCT, so neither
# appears in Query.aggregate.
_ANALYTIC = ("PERCENTILE", "STDDEV", "DISTINCT", "COUNT_DISTINCT")

# Split a select list on commas that sit *outside* parentheses, so
# PERCENTILE("f", 99) stays one item.
_SEL_SPLIT = re.compile(r"\s*,\s*(?![^()]*\))")


@dataclass(frozen=True)
class Query:
    """A parsed InfluxQL statement."""

    measurement: str
    columns: tuple[str, ...]  # field names, or ("*",)
    aggregate: str | None  # None, one of _AGGS, PERCENTILE or COUNT_DISTINCT
    tag_filters: tuple[tuple[str, str], ...]
    t0: float | None
    t1: float | None
    group_by_s: float | None
    limit: int | None = None
    t0_exclusive: bool = False  # strict time >  (vs >=)
    t1_exclusive: bool = False  # strict time <  (vs <=)
    agg_arg: float | None = None  # PERCENTILE threshold (MEDIAN → 50.0)


@dataclass
class ResultSet:
    """Query output: ordered columns and (time, row) tuples."""

    columns: list[str]
    rows: list[tuple[float, list[float | None]]]
    _col_cache: dict[str, list[float | None]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def column(self, name: str) -> list[float | None]:
        """One column's values, memoized: dashboards extract the same
        column per series per render, so the index lookup and list build
        are paid once per name.  Callers get a fresh list — the cache
        entry must never be handed out, or one caller's in-place edit
        would poison every later read."""
        cached = self._col_cache.get(name)
        if cached is None:
            idx = self.columns.index(name)
            cached = [row[idx] for _, row in self.rows]
            self._col_cache[name] = cached
        return list(cached)

    def times(self) -> list[float]:
        return [t for t, _ in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def _strip_quotes(s: str) -> str:
    s = s.strip()
    if len(s) >= 2 and s[0] == s[-1] and s[0] in "\"'":
        return s[1:-1]
    return s


def show_measurements(db: InfluxDB, database: str) -> list[str]:
    """Execute ``SHOW MEASUREMENTS`` (what Grafana's query builder runs)."""
    return db.measurements(database)


def parse_query(text: str) -> Query:
    """Parse one InfluxQL statement (raises :class:`InfluxError`).

    Parses are LRU-cached on the statement text: auto-generated dashboard
    queries (Listing 3) are re-executed verbatim on every panel refresh, so
    the regex work is paid once per distinct statement.  The returned
    :class:`Query` is frozen, so sharing the cached instance is safe.
    """
    return _parse_query_cached(text)


@lru_cache(maxsize=512)
def _parse_query_cached(text: str) -> Query:
    src = text.strip().rstrip(";")
    m = re.match(
        r"SELECT\s+(?P<sel>.+?)\s+FROM\s+(?P<meas>\"[^\"]+\"|\S+)"
        r"(?:\s+WHERE\s+(?P<where>.+?))?"
        r"(?:\s+GROUP\s+BY\s+time\((?P<gb>[\d.]+)s\))?"
        r"(?:\s+LIMIT\s+(?P<limit>\d+))?\s*$",
        src,
        re.IGNORECASE | re.DOTALL,
    )
    if not m:
        raise InfluxError(f"unparseable InfluxQL: {text!r}")
    sel = m.group("sel").strip()
    measurement = _strip_quotes(m.group("meas"))

    aggregate: str | None = None
    agg_arg: float | None = None
    columns: list[str] = []
    if sel == "*":
        columns = ["*"]
    else:
        for item in _SEL_SPLIT.split(sel):
            am = re.match(r"(\w+)\((.+)\)$", item.strip())
            agg: str | None = None
            arg: float | None = None
            col: str | None = None
            if am:
                fn = am.group(1).upper()
                inner = am.group(2).strip()
                if fn == "COUNT":
                    dm = re.match(
                        r"DISTINCT\s*\(\s*(.+?)\s*\)$|DISTINCT\s+(.+)$",
                        inner,
                        re.IGNORECASE,
                    )
                    if dm:
                        agg = "COUNT_DISTINCT"
                        col = _strip_quotes(dm.group(1) or dm.group(2))
                    else:
                        agg, col = "COUNT", _strip_quotes(inner)
                elif fn == "PERCENTILE":
                    parts = re.split(r"\s*,\s*", inner)
                    if len(parts) != 2:
                        raise InfluxError("PERCENTILE takes (field, pct)")
                    try:
                        arg = float(parts[1])
                    except ValueError:
                        raise InfluxError(
                            f"bad PERCENTILE threshold {parts[1]!r}"
                        ) from None
                    if not 0.0 <= arg <= 100.0:
                        raise InfluxError(
                            "PERCENTILE threshold must be in [0, 100]"
                        )
                    agg, col = "PERCENTILE", _strip_quotes(parts[0])
                elif fn == "MEDIAN":
                    agg, arg, col = "PERCENTILE", 50.0, _strip_quotes(inner)
                elif fn in _AGGS:
                    agg, col = fn, _strip_quotes(inner)
            if agg is not None:
                if aggregate is not None and (aggregate != agg or agg_arg != arg):
                    raise InfluxError("mixed aggregate functions not supported")
                aggregate = agg
                agg_arg = arg
                columns.append(col)
            else:
                columns.append(_strip_quotes(item))

    tag_filters: list[tuple[str, str]] = []
    t0 = t1 = None
    t0_exclusive = t1_exclusive = False
    if m.group("where"):
        for cond in re.split(r"\s+AND\s+", m.group("where"), flags=re.IGNORECASE):
            cond = cond.strip()
            tm = re.match(r"time\s*(>=|<=|>|<)\s*([\d.eE+-]+)", cond)
            if tm:
                op, val = tm.group(1), float(tm.group(2))
                if op in (">=", ">"):
                    t0, t0_exclusive = val, op == ">"
                else:
                    t1, t1_exclusive = val, op == "<"
                continue
            em = re.match(r"(\"?[\w.]+\"?)\s*=\s*(\"[^\"]*\"|'[^']*'|\S+)", cond)
            if not em:
                raise InfluxError(f"unparseable WHERE condition {cond!r}")
            tag_filters.append((_strip_quotes(em.group(1)), _strip_quotes(em.group(2))))

    gb = float(m.group("gb")) if m.group("gb") else None
    if gb is not None and aggregate is None:
        aggregate = "MEAN"  # Influx requires an aggregate with GROUP BY time
    limit = int(m.group("limit")) if m.group("limit") else None
    if limit is not None and limit < 1:
        raise InfluxError("LIMIT must be positive")
    return Query(
        measurement=measurement,
        columns=tuple(columns),
        aggregate=aggregate,
        tag_filters=tuple(tag_filters),
        t0=t0,
        t1=t1,
        group_by_s=gb,
        limit=limit,
        t0_exclusive=t0_exclusive,
        t1_exclusive=t1_exclusive,
        agg_arg=agg_arg,
    )


def _agg(name: str, values: list[float], arg: float | None = None) -> float | None:
    if not values:
        return None
    if name == "MEAN":
        return sum(values) / len(values)
    if name == "MAX":
        return max(values)
    if name == "MIN":
        return min(values)
    if name == "SUM":
        return sum(values)
    if name == "COUNT":
        return float(len(values))
    if name == "LAST":
        return values[-1]
    if name == "PERCENTILE":
        return nearest_rank(values, arg if arg is not None else 50.0)
    if name == "STDDEV":
        return stddev_of(values)
    if name == "COUNT_DISTINCT":
        return float(len({value_key(v) for v in values}))
    raise InfluxError(f"unknown aggregate {name}")


def _check_analytic(q: Query) -> None:
    """Shape rules shared by :func:`execute` and :func:`naive_execute` so
    the pushdown and reference paths reject the same statements."""
    if q.aggregate in ("DISTINCT", "COUNT_DISTINCT"):
        if q.group_by_s is not None:
            raise InfluxError(
                f"{q.aggregate} with GROUP BY time is not supported"
            )
        if len(q.columns) != 1 or q.columns[0] == "*":
            raise InfluxError(f"{q.aggregate} needs exactly one field")


def execute(db: InfluxDB, database: str, query: Query | str) -> ResultSet:
    """Execute a query against one database.

    Each statement shape dispatches to the matching engine pushdown:

    - raw select → ``scan_columns`` with LIMIT pushed into the scan;
    - plain aggregate → ``aggregate_columns`` (column folds, no rows);
    - GROUP BY time(N) → ``scan_buckets`` (bisected bucket edges, served
      from a rollup tier when that is provably exact).

    Results are exactly equal to :func:`naive_execute`.
    """
    q = parse_query(query) if isinstance(query, str) else query
    columns = None if q.columns == ("*",) else list(q.columns)
    tags = dict(q.tag_filters)

    if q.aggregate in _ANALYTIC:
        return _execute_analytic(db, database, q, columns, tags)

    if q.aggregate is None:
        cols, rows = db.scan_columns(
            database,
            q.measurement,
            columns=columns,
            tags=tags,
            t0=q.t0,
            t1=q.t1,
            t0_exclusive=q.t0_exclusive,
            t1_exclusive=q.t1_exclusive,
            limit=q.limit,
        )
        return ResultSet(columns=cols, rows=rows)

    if q.group_by_s is None:
        cols, first_t, aggs = db.aggregate_columns(
            database,
            q.measurement,
            q.aggregate,
            columns=columns,
            tags=tags,
            t0=q.t0,
            t1=q.t1,
            t0_exclusive=q.t0_exclusive,
            t1_exclusive=q.t1_exclusive,
        )
        return ResultSet(
            columns=cols, rows=[(first_t if first_t is not None else 0.0, aggs)]
        )

    cols, out = db.scan_buckets(
        database,
        q.measurement,
        q.aggregate,
        q.group_by_s,
        columns=columns,
        tags=tags,
        t0=q.t0,
        t1=q.t1,
        t0_exclusive=q.t0_exclusive,
        t1_exclusive=q.t1_exclusive,
    )
    if q.limit is not None:
        out = out[: q.limit]
    return ResultSet(columns=cols, rows=out)


def _execute_analytic(
    db,
    database: str,
    q: Query,
    columns: list[str] | None,
    tags: dict[str, str],
) -> ResultSet:
    """Dispatch PERCENTILE / STDDEV / DISTINCT / COUNT(DISTINCT) to the
    engine's sketch-aware methods, falling back to the exact
    :func:`naive_execute` fold for engines that lack them."""
    _check_analytic(q)
    kw = dict(
        tags=tags,
        t0=q.t0,
        t1=q.t1,
        t0_exclusive=q.t0_exclusive,
        t1_exclusive=q.t1_exclusive,
    )
    if q.aggregate == "PERCENTILE":
        pct = q.agg_arg if q.agg_arg is not None else 50.0
        if q.group_by_s is not None:
            if hasattr(db, "quantile_buckets"):
                cols, out = db.quantile_buckets(
                    database, q.measurement, pct, q.group_by_s,
                    columns=columns, **kw,
                )
                if q.limit is not None:
                    out = out[: q.limit]
                return ResultSet(columns=cols, rows=out)
        elif hasattr(db, "quantile_columns"):
            cols, first_t, aggs = db.quantile_columns(
                database, q.measurement, pct, columns=columns, **kw
            )
            return ResultSet(
                columns=cols,
                rows=[(first_t if first_t is not None else 0.0, aggs)],
            )
    elif q.aggregate == "STDDEV":
        if q.group_by_s is not None:
            if hasattr(db, "stddev_buckets"):
                cols, out = db.stddev_buckets(
                    database, q.measurement, q.group_by_s,
                    columns=columns, **kw,
                )
                if q.limit is not None:
                    out = out[: q.limit]
                return ResultSet(columns=cols, rows=out)
        elif hasattr(db, "stddev_columns"):
            cols, first_t, aggs = db.stddev_columns(
                database, q.measurement, columns=columns, **kw
            )
            return ResultSet(
                columns=cols,
                rows=[(first_t if first_t is not None else 0.0, aggs)],
            )
    elif q.aggregate == "DISTINCT":
        if hasattr(db, "distinct_values"):
            pairs = db.distinct_values(database, q.measurement, q.columns[0], **kw)
            rows = [(t, [v]) for t, v in pairs]
            if q.limit is not None:
                rows = rows[: q.limit]
            return ResultSet(columns=[q.columns[0]], rows=rows)
    elif q.aggregate == "COUNT_DISTINCT":
        if hasattr(db, "count_distinct"):
            first_t, cnt = db.count_distinct(database, q.measurement, q.columns[0], **kw)
            return ResultSet(
                columns=[q.columns[0]],
                rows=[(first_t if first_t is not None else 0.0, [cnt])],
            )
    return naive_execute(db, database, q)


def naive_execute(db, database: str, query: Query | str) -> ResultSet:
    """The seed execute path: materialize scan rows, then fold in Python.

    Kept as the equivalence reference (and benchmark baseline) for the
    pushdown/rollup paths in :func:`execute`.  Works against any engine
    exposing ``scan_columns`` — including :class:`~repro.db.naive.NaiveInfluxDB`.
    """
    q = parse_query(query) if isinstance(query, str) else query
    if q.aggregate in _ANALYTIC:
        _check_analytic(q)
    cols, rows = db.scan_columns(
        database,
        q.measurement,
        columns=None if q.columns == ("*",) else list(q.columns),
        tags=dict(q.tag_filters),
        t0=q.t0,
        t1=q.t1,
        t0_exclusive=q.t0_exclusive,
        t1_exclusive=q.t1_exclusive,
    )

    if q.aggregate is None:
        if q.limit is not None:
            rows = rows[: q.limit]
        return ResultSet(columns=cols, rows=rows)

    if q.aggregate == "DISTINCT":
        # One row per distinct value (value-keyed), in first-seen order.
        idx = cols.index(q.columns[0]) if q.columns[0] in cols else None
        seen: dict[bytes, tuple[float, float]] = {}
        if idx is not None:
            for t, r in rows:
                v = r[idx]
                if v is None:
                    continue
                vk = value_key(v)
                if vk not in seen:
                    seen[vk] = (t, v)
        out = [(t, [v]) for t, v in seen.values()]
        if q.limit is not None:
            out = out[: q.limit]
        return ResultSet(columns=[q.columns[0]], rows=out)

    if q.group_by_s is None:
        row = []
        for i in range(len(cols)):
            vals = [r[i] for _, r in rows if r[i] is not None]
            row.append(_agg(q.aggregate, vals, q.agg_arg))
        t = rows[0][0] if rows else 0.0
        if q.aggregate == "COUNT_DISTINCT":
            return ResultSet(columns=[q.columns[0]], rows=[(t, row)])
        return ResultSet(columns=cols, rows=[(t, row)])

    # GROUP BY time(Ns): bucket on floor(time / N) * N.
    buckets: dict[float, list[list[float]]] = {}
    for t, vals in rows:
        b = (t // q.group_by_s) * q.group_by_s
        slot = buckets.setdefault(b, [[] for _ in cols])
        for i, v in enumerate(vals):
            if v is not None:
                slot[i].append(v)
    out = [
        (b, [_agg(q.aggregate, bucket, q.agg_arg) for bucket in buckets[b]])
        for b in sorted(buckets)
    ]
    if q.limit is not None:
        out = out[: q.limit]
    return ResultSet(columns=cols, rows=out)
