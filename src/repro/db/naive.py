"""Naive flat-list reference store for the indexed engine.

This is the seed implementation of :class:`repro.db.influx.InfluxDB`
preserved verbatim in behavior: one ``list[Point]`` per measurement, every
query a full linear scan plus a stable re-sort, byte accounting via a
``to_line()`` round-trip.  It exists for two reasons:

- the hypothesis equivalence suite proves the series-sharded engine returns
  byte-identical results to this reference on randomized workloads;
- ``benchmarks/test_perf_db.py`` measures the indexed engine's speedup
  against it (the ≥5× acceptance bar).

It is *not* part of the production path.
"""

from __future__ import annotations

from collections import defaultdict

from .influx import InfluxError, Point, RetentionPolicy, fold_values

__all__ = ["NaiveInfluxDB"]


class _NaiveDatabase:
    def __init__(self, name: str) -> None:
        self.name = name
        self.measurements: dict[str, list[Point]] = defaultdict(list)
        self.retention = RetentionPolicy()
        self.points_written = 0
        self.bytes_written = 0


class NaiveInfluxDB:
    """Flat-list store: linear scans everywhere (the pre-engine behavior)."""

    def __init__(self) -> None:
        self._dbs: dict[str, _NaiveDatabase] = {}

    def create_database(self, name: str) -> None:
        if not name:
            raise InfluxError("database name cannot be empty")
        self._dbs.setdefault(name, _NaiveDatabase(name))

    def drop_database(self, name: str) -> None:
        self._dbs.pop(name, None)

    def databases(self) -> list[str]:
        return sorted(self._dbs)

    def _db(self, name: str) -> _NaiveDatabase:
        try:
            return self._dbs[name]
        except KeyError:
            raise InfluxError(f"database {name!r} does not exist") from None

    def set_retention_policy(self, db: str, duration_s: float | None) -> None:
        self._db(db).retention = RetentionPolicy(duration_s=duration_s)

    def write(self, db: str, point: Point) -> None:
        d = self._db(db)
        d.measurements[point.measurement].append(point)
        d.points_written += len(point.fields)
        d.bytes_written += len(point.to_line()) + 1

    def write_many(self, db: str, points: list[Point]) -> int:
        for p in points:
            self.write(db, p)
        return len(points)

    def measurements(self, db: str) -> list[str]:
        return sorted(self._db(db).measurements)

    def points(
        self,
        db: str,
        measurement: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> list[Point]:
        """Full scan with tag-equality and time filters; stable time sort."""
        pts = self._db(db).measurements.get(measurement, [])
        out = []
        for p in pts:
            if tags and any(p.tags.get(k) != v for k, v in tags.items()):
                continue
            if t0 is not None and (p.time <= t0 if t0_exclusive else p.time < t0):
                continue
            if t1 is not None and (p.time >= t1 if t1_exclusive else p.time > t1):
                continue
            out.append(p)
        return sorted(out, key=lambda p: p.time)

    def scan_columns(
        self,
        db: str,
        measurement: str,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
        limit: int | None = None,
    ) -> tuple[list[str], list[tuple[float, list[float | None]]]]:
        """Same contract as the indexed engine's scan, via Point scans.

        ``limit`` truncates the materialized rows; column discovery stays
        limit-invariant, matching the indexed engine.
        """
        pts = self.points(
            db, measurement, tags, t0, t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        if columns is None:
            cols = sorted({f for p in pts for f in p.fields})
        else:
            cols = list(columns)
        if limit is not None:
            pts = pts[:limit]
        return cols, [(p.time, [p.fields.get(c) for c in cols]) for p in pts]

    def aggregate_columns(
        self,
        db: str,
        measurement: str,
        agg: str,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], float | None, list[float | None]]:
        """Reference aggregate: fold the materialized scan rows per column."""
        cols, rows = self.scan_columns(
            db, measurement, columns, tags, t0, t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        out = []
        for i in range(len(cols)):
            vals = [r[i] for _, r in rows if r[i] is not None]
            out.append(fold_values(agg, vals))
        return cols, (rows[0][0] if rows else None), out

    def scan_buckets(
        self,
        db: str,
        measurement: str,
        agg: str,
        group_by_s: float,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], list[tuple[float, list[float | None]]]]:
        """Reference GROUP BY time(N): bucket materialized rows in order."""
        if group_by_s <= 0:
            raise InfluxError("GROUP BY time() needs a positive bucket width")
        cols, rows = self.scan_columns(
            db, measurement, columns, tags, t0, t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        buckets: dict[float, list[list[float]]] = {}
        for t, vals in rows:
            b = (t // group_by_s) * group_by_s
            slot = buckets.setdefault(b, [[] for _ in cols])
            for i, v in enumerate(vals):
                if v is not None:
                    slot[i].append(v)
        return cols, [
            (b, [fold_values(agg, vs) for vs in buckets[b]])
            for b in sorted(buckets)
        ]

    def enforce_retention(self, db: str, now: float) -> int:
        d = self._db(db)
        if d.retention.duration_s is None:
            return 0
        horizon = now - d.retention.duration_s
        dropped = 0
        for name in list(d.measurements):
            kept = [p for p in d.measurements[name] if p.time >= horizon]
            dropped += len(d.measurements[name]) - len(kept)
            if kept:
                d.measurements[name] = kept
            else:
                del d.measurements[name]
        return dropped

    def stats(self, db: str) -> dict[str, int]:
        d = self._db(db)
        stored = sum(len(v) for v in d.measurements.values())
        return {
            "points_written": d.points_written,
            "bytes_written": d.bytes_written,
            "series_stored": stored,
        }
