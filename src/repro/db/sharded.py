"""Horizontally sharded InfluxDB: consistent-hash placement, scatter-gather.

One in-process :class:`~repro.db.influx.InfluxDB` engine is the ceiling the
whole substrate has been sitting under — every sampler, dashboard, and
SUPERDB report funnels into a single store.  This module splits the storage
layer into N independent shard engines behind a router, the architecture
DCDB Wintermute runs at datacenter scale (per-domain storage, merged
analytics):

- **Placement** is consistent hashing over the series key — the
  ``(measurement, sorted tag-set)`` pair that already defines a series in
  the engine — so a series lives wholly on one shard and the dominant
  dashboard query (one observation tag → one series) touches exactly one
  engine.  The :class:`HashRing` uses stable 64-bit blake2b positions with
  virtual nodes, so placement is identical across router instances and
  adding/removing a shard moves only the ~K/N keys the ring hands over.

- **Ingest** (`write`/`write_many`/`write_lines`) fans out batched
  per-shard.  The router stamps every point with a global per-measurement
  write sequence and pins it into the shard engine, so rows scattered over
  several engines keep one global (time, seq) order.

- **Queries** run scatter-gather.  A query whose matching series all live
  on one shard delegates verbatim (rollup serving, LIMIT pushdown and all).
  Multi-shard queries merge per-shard partials *exactly*: raw selects and
  LIMIT are a heapq k-way merge of per-shard keyed streams; COUNT adds,
  MIN/MAX combine associatively (unless NaN made the fold order-sensitive),
  LAST picks the partial with the latest (time, seq) key, and MEAN/SUM ride
  sum/count pairs whenever a single shard holds the column's values — any
  merge that float reordering could perturb falls back to an interleaved
  k-way fold, so results stay byte-identical to a single engine.

- **Generations** combine into a per-shard vector
  (:meth:`ShardedInfluxDB.generation`), so the PR 5 dashboard result cache
  invalidates on any shard's mutation with one tuple compare.

- **Faults** ride the PR 4 node-fault model: shards are nodes in a
  :class:`~repro.faults.nodes.NodeFaultSet`, consulted in virtual time.  A
  crashed shard degrades queries that touch its data to *partial* results
  (``last_partial``) instead of erroring; writes routed to it are counted
  as dropped, and everything else keeps flowing.

- **Rebalancing** (`add_shard`/`remove_shard`/`drain_shard`) migrates only
  the consistent-hash-affected series, preserving (time, seq) keys so
  merge order — and therefore every query result — survives the move.
"""

from __future__ import annotations

import time as _time
from bisect import bisect_right, insort
from hashlib import blake2b
from heapq import merge as _heap_merge

from repro.faults.nodes import NodeFault, NodeFaultSet

from .influx import (
    DEFAULT_ROLLUP_TIERS,
    InfluxDB,
    InfluxError,
    Point,
    fold_values,
)
from .sketch import HyperLogLog, SketchConfig, TDigest, stddev_of, value_key

__all__ = ["HashRing", "ShardedInfluxDB", "series_key"]

_FOLDABLE = frozenset({"MEAN", "MAX", "MIN", "SUM", "COUNT", "LAST"})


def _hash64(s: str) -> int:
    """Stable 64-bit ring position (``hash()`` is salted per process)."""
    return int.from_bytes(blake2b(s.encode(), digest_size=8).digest(), "big")


def series_key(measurement: str, tags) -> str:
    """The placement key of one series: measurement + sorted tag set.

    ``tags`` may be a dict or an already-sorted tuple of (key, value)
    pairs.  Separators outside the tag alphabet keep distinct series from
    colliding into one key.
    """
    items = sorted(tags.items()) if isinstance(tags, dict) else tags
    return "\x00".join([measurement, *(f"{k}\x1f{v}" for k, v in items)])


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each shard owns ``vnodes`` pseudo-random ring positions; a key belongs
    to the first position clockwise of its own hash.  Placement therefore
    depends only on (key, member set) — stable across instances — and
    membership changes hand over only the arcs the joining/leaving shard
    owns (~K/N of the keys).
    """

    def __init__(self, nodes=(), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise InfluxError("hash ring needs at least one vnode per shard")
        self.vnodes = vnodes
        self.nodes: set[str] = set()
        self._ring: list[tuple[int, str]] = []
        for n in nodes:
            self.add(n)

    def add(self, node: str) -> None:
        if node in self.nodes:
            raise InfluxError(f"shard {node!r} already on the ring")
        self.nodes.add(node)
        for i in range(self.vnodes):
            insort(self._ring, (_hash64(f"{node}#{i}"), node))

    def remove(self, node: str) -> None:
        if node not in self.nodes:
            raise InfluxError(f"shard {node!r} not on the ring")
        self.nodes.discard(node)
        self._ring = [(h, n) for h, n in self._ring if n != node]

    def place(self, key: str) -> str:
        if not self._ring:
            raise InfluxError("hash ring is empty (no placeable shards)")
        h = _hash64(key)
        idx = bisect_right(self._ring, (h, "￿"))
        if idx == len(self._ring):
            idx = 0
        return self._ring[idx][1]

    def __len__(self) -> int:
        return len(self.nodes)


class ShardedInfluxDB:
    """N shard engines behind a consistent-hash router.

    Drop-in for :class:`~repro.db.influx.InfluxDB` everywhere the substrate
    consumes one (samplers, :mod:`repro.db.influxql`, Grafana, SUPERDB) —
    same method surface, byte-identical query results.
    """

    def __init__(
        self,
        n_shards: int = 4,
        *,
        shard_names: list[str] | None = None,
        rollup_tiers: tuple[float, ...] = DEFAULT_ROLLUP_TIERS,
        vnodes: int = 64,
        faults: NodeFaultSet | None = None,
        sketch: SketchConfig | None = None,
    ) -> None:
        names = list(shard_names) if shard_names else [
            f"shard-{i}" for i in range(n_shards)
        ]
        if not names:
            raise InfluxError("sharded engine needs at least one shard")
        if len(set(names)) != len(names):
            raise InfluxError("shard names must be distinct")
        self._rollup_tiers = rollup_tiers
        self._sketch = sketch
        self.shards: dict[str, InfluxDB] = {
            n: InfluxDB(rollup_tiers, sketch=sketch) for n in names
        }
        self.ring = HashRing(names, vnodes=vnodes)
        #: Shard outages ride the cluster node-fault model, in virtual time.
        self.faults = faults if faults is not None else NodeFaultSet()
        self.now = 0.0
        self._databases: dict[str, float | None] = {}  # name → retention
        self._seqs: dict[tuple[str, str], int] = {}  # (db, measurement) → next
        self._placement: dict[tuple[str, tuple], str] = {}  # series → shard
        self._draining: set[str] = set()
        # Observability.
        self.last_partial = False
        self.partial_queries = 0
        self.dropped_points: dict[str, int] = {n: 0 for n in names}
        self.last_rebalance: dict | None = None
        #: When True, fan-out methods record per-shard wall time in
        #: ``last_timings`` — what the shard benchmark's critical-path
        #: throughput model reads.
        self.instrument = False
        self.last_timings: dict | None = None

    # ------------------------------------------------------------------
    # Virtual time & fault surface
    # ------------------------------------------------------------------
    def at(self, t: float) -> "ShardedInfluxDB":
        """Stamp the virtual time the next operation happens at."""
        self.now = t
        return self

    def inject_shard_fault(self, shard: str, fault: NodeFault) -> NodeFault:
        self._require_shard(shard)
        return self.faults.inject(shard, fault)

    def _up(self, shard: str) -> bool:
        return not self.faults.is_down(shard, self.now)

    def shard_states(self) -> dict[str, str]:
        """Lifecycle state per shard: up / draining / down."""
        out = {}
        for name in sorted(self.shards):
            if not self._up(name):
                out[name] = "down"
            elif name in self._draining:
                out[name] = "draining"
            else:
                out[name] = "up"
        return out

    def shard_names(self) -> list[str]:
        return sorted(self.shards)

    @property
    def rollup_plan(self) -> dict[str, int]:
        """Rollup-planner decision counters summed across shards — the
        same observational surface :attr:`InfluxDB.rollup_plan` exposes on
        the single engine."""
        out: dict[str, int] = {}
        for sh in self.shards.values():
            for k, v in sh.rollup_plan.items():
                out[k] = out.get(k, 0) + v
        return out

    @property
    def sketch_plan(self) -> dict[str, int]:
        """Sketch-planner decision counters summed across shards."""
        out: dict[str, int] = {}
        for sh in self.shards.values():
            for k, v in sh.sketch_plan.items():
                out[k] = out.get(k, 0) + v
        return out

    @property
    def sketch(self) -> SketchConfig:
        """The (shared) sketch configuration of the shard engines."""
        return next(iter(self.shards.values())).sketch

    def _require_shard(self, name: str) -> InfluxDB:
        try:
            return self.shards[name]
        except KeyError:
            raise InfluxError(f"unknown shard {name!r}") from None

    # ------------------------------------------------------------------
    # Admin (fans out to every shard)
    # ------------------------------------------------------------------
    def create_database(self, name: str) -> None:
        if not name:
            raise InfluxError("database name cannot be empty")
        self._databases.setdefault(name, None)
        for sh in self.shards.values():
            sh.create_database(name)

    def drop_database(self, name: str) -> None:
        self._databases.pop(name, None)
        for sh in self.shards.values():
            sh.drop_database(name)
        self._seqs = {k: v for k, v in self._seqs.items() if k[0] != name}

    def databases(self) -> list[str]:
        return sorted(self._databases)

    def _check_db(self, db: str) -> None:
        if db not in self._databases:
            raise InfluxError(f"database {db!r} does not exist")

    def set_retention_policy(self, db: str, duration_s: float | None) -> None:
        self._check_db(db)
        self._databases[db] = duration_s
        for sh in self.shards.values():
            sh.set_retention_policy(db, duration_s)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, db: str, measurement: str, tagkey: tuple) -> str:
        """Shard owning one series; memoized per series key."""
        memo = self._placement
        k = (measurement, tagkey)
        sh = memo.get(k)
        if sh is None:
            sh = memo[k] = self.ring.place(series_key(measurement, tagkey))
        return sh

    def shard_for(self, measurement: str, tags: dict[str, str]) -> str:
        """Where one series lives (public probe for tests and tooling)."""
        return self._place("", measurement, tuple(sorted(tags.items())))

    # ------------------------------------------------------------------
    # Instrumented fan-out helper
    # ------------------------------------------------------------------
    def _timed(self, shard_s: dict[str, float], name: str, fn):
        if not self.instrument:
            return fn()
        t0 = _time.perf_counter()
        out = fn()
        shard_s[name] = shard_s.get(name, 0.0) + _time.perf_counter() - t0
        return out

    def _record(self, op: str, shard_s: dict[str, float]) -> None:
        if self.instrument:
            self.last_timings = {"op": op, "shard_s": shard_s}

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def write(self, db: str, point: Point) -> None:
        self.write_many(db, [point])

    def write_many(
        self, db: str, points: list[Point], *, seqs: list[int] | None = None
    ) -> int:
        """Route a batch: one grouped ``write_many`` per owning shard.

        Every point gets a global per-(db, measurement) write sequence
        before routing, so cross-shard merges reproduce single-engine row
        order exactly.  ``seqs`` lets a caller that already owns a global
        sequence domain (the durable-ingest apply path pins commit-log
        record seqs) supply the stamps instead; the router's own counter
        advances past them so the two domains never collide.  Points owned
        by a crashed shard are dropped and counted (``dropped_points``) —
        ingest degrades, it does not error.  Returns points actually
        written.
        """
        self._check_db(db)
        if seqs is not None and len(seqs) != len(points):
            raise InfluxError("seqs must align 1:1 with points")
        own_seqs = self._seqs
        memo = self._placement
        place = self.ring.place
        groups: dict[str, tuple[list[Point], list[int]]] = {}
        # Hot loop: one sequence stamp + one memoized placement lookup per
        # point; a 0/1-tag set (the telemetry norm) skips the sort.
        for i, p in enumerate(points):
            meas = p.measurement
            k = (db, meas)
            if seqs is None:
                q = own_seqs.get(k, 0)
                own_seqs[k] = q + 1
            else:
                q = seqs[i]
                if q >= own_seqs.get(k, 0):
                    own_seqs[k] = q + 1
            tags = p.tags
            items = tags.items()
            tagkey = tuple(items) if len(tags) < 2 else tuple(sorted(items))
            pk = (meas, tagkey)
            name = memo.get(pk)
            if name is None:
                name = memo[pk] = place(series_key(meas, tagkey))
            g = groups.get(name)
            if g is None:
                g = groups[name] = ([], [])
            g[0].append(p)
            g[1].append(q)
        written = 0
        shard_s: dict[str, float] = {}
        for name, (pts, qs) in groups.items():
            if not self._up(name):
                self.dropped_points[name] = (
                    self.dropped_points.get(name, 0) + len(pts)
                )
                continue
            written += self._timed(
                shard_s, name,
                lambda sh=self.shards[name], p=pts, q=qs: sh.write_many(
                    db, p, seqs=q
                ),
            )
        self._record("write_many", shard_s)
        return written

    def write_lines(self, db: str, lines: str) -> int:
        """Line-protocol ingest: the whole batch parses before any point
        routes, so a malformed line rejects the batch atomically (the
        single-engine contract)."""
        self._check_db(db)
        batch = [
            Point.from_line(line)
            for line in lines.splitlines()
            if line.strip() and not line.lstrip().startswith("#")
        ]
        return self.write_many(db, batch)

    # ------------------------------------------------------------------
    # Scatter planning
    # ------------------------------------------------------------------
    def _scatter_shards(
        self, db: str, measurement: str, tags: dict[str, str] | None
    ) -> tuple[list[str], bool]:
        """(up shards holding matching series, data unreachable?).

        The router routed every series here, so probing each engine's tag
        index is its own placement metadata — a *down* shard's index tells
        us whether the outage actually hides data from this query (partial)
        or is irrelevant to it (complete).
        """
        up: list[str] = []
        partial = False
        for name in sorted(self.shards):
            has = self.shards[name].series_count(db, measurement, tags) > 0
            if self._up(name):
                if has:
                    up.append(name)
            elif has:
                partial = True
        return up, partial

    def _note_partial(self, partial: bool) -> None:
        self.last_partial = partial
        if partial:
            self.partial_queries += 1

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def measurements(self, db: str) -> list[str]:
        self._check_db(db)
        out: set[str] = set()
        partial = False
        for name, sh in self.shards.items():
            if self._up(name):
                out.update(sh.measurements(db))
            elif sh.stats(db)["series_count"]:
                partial = True
        self._note_partial(partial)
        return sorted(out)

    def generation(self, db: str, measurement: str) -> tuple[int, ...]:
        """Generation *vector*: one per-shard stamp, ordered by shard name.

        Any write, series drop, retention trim — or a membership change,
        which changes the vector's length — produces a different vector, so
        read layers (the Grafana panel cache) invalidate with one tuple
        compare, exactly as they do against a single engine's scalar stamp.
        """
        return tuple(
            self.shards[n].generation(db, measurement)
            for n in sorted(self.shards)
        )

    def max_seq(
        self, db: str, measurement: str, tags: dict[str, str] | None = None
    ) -> int:
        """Highest pinned write sequence across *all* shards (down shards
        included: their in-memory state models durable storage that comes
        back with the node, so the durable-ingest gate must see it — the
        safe error direction for at-most-once is "already applied")."""
        return max(
            (sh.max_seq(db, measurement, tags) for sh in self.shards.values()),
            default=-1,
        )

    def scan_points(
        self,
        db: str,
        measurement: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> list[tuple[float, int, Point]]:
        self._check_db(db)
        names, partial = self._scatter_shards(db, measurement, tags)
        self._note_partial(partial)
        streams = [
            self.shards[n].scan_points(
                db, measurement, tags, t0, t1,
                t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
            )
            for n in names
        ]
        if len(streams) <= 1:
            return streams[0] if streams else []
        return list(_heap_merge(*streams, key=lambda r: (r[0], r[1])))

    def points(
        self,
        db: str,
        measurement: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> list[Point]:
        return [
            p
            for _, _, p in self.scan_points(
                db, measurement, tags, t0, t1,
                t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
            )
        ]

    @staticmethod
    def _union_columns(
        per_shard_cols: list[list[str]], columns: list[str] | None
    ) -> list[str]:
        """Merged column set: explicit list verbatim, else the sorted union
        of per-shard discoveries (= the single engine's discovery over the
        same matched rows)."""
        if columns is not None:
            return list(columns)
        out: set[str] = set()
        for cols in per_shard_cols:
            out.update(cols)
        return sorted(out)

    def scan_columns(
        self,
        db: str,
        measurement: str,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
        limit: int | None = None,
    ) -> tuple[list[str], list[tuple[float, list[float | None]]]]:
        """Columnar scatter scan.

        One contributing shard delegates verbatim; otherwise per-shard
        *keyed* streams (each already LIMIT-pushed) are heapq k-way merged
        on (time, seq) with an early stop at ``limit`` — no shard
        materializes more than ``limit`` rows and the router materializes
        exactly the merged prefix.
        """
        self._check_db(db)
        names, partial = self._scatter_shards(db, measurement, tags)
        self._note_partial(partial)
        kw = dict(
            tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        shard_s: dict[str, float] = {}
        if not names:
            self._record("scan_columns", shard_s)
            return (list(columns) if columns is not None else []), []
        if len(names) == 1:
            out = self._timed(
                shard_s, names[0],
                lambda: self.shards[names[0]].scan_columns(
                    db, measurement, columns=columns, limit=limit, **kw
                ),
            )
            self._record("scan_columns", shard_s)
            return out
        per = [
            (
                n,
                self._timed(
                    shard_s, n,
                    lambda n=n: self.shards[n].scan_keyed(
                        db, measurement, columns=columns, limit=limit, **kw
                    ),
                ),
            )
            for n in names
        ]
        cols = self._union_columns([c for _, (c, _) in per], columns)

        def _remap(shard_cols: list[str], rows):
            idx = [
                shard_cols.index(c) if c in shard_cols else None for c in cols
            ]
            for t, q, vals in rows:
                yield (t, q, [vals[i] if i is not None else None for i in idx])

        rows: list[tuple[float, list[float | None]]] = []
        for t, q, vals in _heap_merge(
            *(_remap(c, r) for _, (c, r) in per), key=lambda r: (r[0], r[1])
        ):
            rows.append((t, vals))
            if limit is not None and len(rows) >= limit:
                break
        self._record("scan_columns", shard_s)
        return cols, rows

    # ------------------------------------------------------------------
    # Partial-stat merging
    # ------------------------------------------------------------------
    # A stat is (count, total, vmin, vmax, last, last_t, last_seq, has_nan);
    # see InfluxDB.aggregate_partials.  _merge_stats returns the finalized
    # aggregate or the _FALLBACK sentinel when only an interleaved re-fold
    # is provably exact (MEAN/SUM split across shards; MIN/MAX with a NaN
    # in the fold; LAST whose winning key a rollup did not store).

    _FALLBACK = object()

    @classmethod
    def _merge_stats(cls, agg: str, stats: list[tuple]):
        if not stats:
            return None
        if agg == "COUNT":
            return float(sum(st[0] for st in stats))
        if len(stats) == 1:
            count, total, vmin, vmax, last = stats[0][:5]
            if agg == "MEAN":
                return total / count
            if agg == "SUM":
                return total
            if agg == "MIN":
                return vmin
            if agg == "MAX":
                return vmax
            return last  # LAST
        if agg in ("MEAN", "SUM"):
            return cls._FALLBACK  # float summation order must not reorder
        if agg in ("MIN", "MAX"):
            if any(st[7] for st in stats):
                return cls._FALLBACK  # NaN makes the fold order-sensitive
            vals = [st[2] if agg == "MIN" else st[3] for st in stats]
            best = min(vals) if agg == "MIN" else max(vals)
            # min/max keep the *first* extremum in fold order, and -0.0 ==
            # 0.0: a tie between bit-distinct values is order-sensitive,
            # so only a bitwise-unambiguous extremum merges associatively.
            if any(v == best and repr(v) != repr(best) for v in vals):
                return cls._FALLBACK
            return best
        # LAST: the partial with the latest (time, seq) key wins.
        if any(st[5] is None for st in stats):
            return cls._FALLBACK  # rollup-served partial lost its key
        return max(stats, key=lambda st: (st[5], st[6]))[4]

    def _merged_keyed_rows(
        self, db: str, measurement: str, cols: list[str], names: list[str],
        kw: dict,
    ):
        """Interleaved (time, seq, values) rows across shards — the exact
        single-engine row order the fallback folds re-run in."""
        per = [
            self.shards[n].scan_keyed(db, measurement, columns=cols, **kw)
            for n in names
        ]
        return _heap_merge(
            *(rows for _, rows in per), key=lambda r: (r[0], r[1])
        )

    def aggregate_columns(
        self,
        db: str,
        measurement: str,
        agg: str,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], float | None, list[float | None]]:
        """Scatter-gather aggregate: per-shard partials, merged exactly."""
        if agg not in _FOLDABLE:
            raise InfluxError(f"unknown aggregate {agg}")
        self._check_db(db)
        names, partial = self._scatter_shards(db, measurement, tags)
        self._note_partial(partial)
        kw = dict(
            tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        shard_s: dict[str, float] = {}
        if not names:
            cols = list(columns) if columns is not None else []
            self._record("aggregate_columns", shard_s)
            return cols, None, [None] * len(cols)
        if len(names) == 1:
            out = self._timed(
                shard_s, names[0],
                lambda: self.shards[names[0]].aggregate_columns(
                    db, measurement, agg, columns=columns, **kw
                ),
            )
            self._record("aggregate_columns", shard_s)
            return out
        per = [
            (
                n,
                self._timed(
                    shard_s, n,
                    lambda n=n: self.shards[n].aggregate_partials(
                        db, measurement, columns=columns, **kw
                    ),
                ),
            )
            for n in names
        ]
        cols = self._union_columns([c for _, (c, _, _) in per], columns)
        first_t = min(
            (ft for _, (_, ft, _) in per if ft is not None), default=None
        )
        out: list = []
        fallback_cols: list[int] = []
        for ci, c in enumerate(cols):
            stats = []
            for _, (shard_cols, _, shard_stats) in per:
                try:
                    si = shard_cols.index(c)
                except ValueError:
                    continue
                st = shard_stats[si]
                if st is not None:
                    stats.append(st)
            merged = self._merge_stats(agg, stats)
            if merged is self._FALLBACK:
                fallback_cols.append(ci)
                merged = None
            out.append(merged)
        if fallback_cols:
            vals: dict[int, list[float]] = {ci: [] for ci in fallback_cols}
            fb_names = [cols[ci] for ci in fallback_cols]
            for _, _, row in self._merged_keyed_rows(
                db, measurement, fb_names, names, kw
            ):
                for j, ci in enumerate(fallback_cols):
                    v = row[j]
                    if v is not None:
                        vals[ci].append(v)
            for ci in fallback_cols:
                out[ci] = fold_values(agg, vals[ci]) if vals[ci] else None
        self._record("aggregate_columns", shard_s)
        return cols, first_t, out

    def scan_buckets(
        self,
        db: str,
        measurement: str,
        agg: str,
        group_by_s: float,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], list[tuple[float, list[float | None]]]]:
        """``GROUP BY time(N)`` scatter-gather.

        Per-shard bucket partials (rollup-served where the shard's planner
        allows) merge bucket-by-bucket under the same exactness rules as
        :meth:`aggregate_columns`; any (bucket, column) slot a partial
        merge cannot reproduce bit-for-bit is re-folded from one shared
        interleaved scan.
        """
        if agg not in _FOLDABLE:
            raise InfluxError(f"unknown aggregate {agg}")
        if group_by_s <= 0:
            raise InfluxError("GROUP BY time() needs a positive bucket width")
        self._check_db(db)
        names, partial = self._scatter_shards(db, measurement, tags)
        self._note_partial(partial)
        kw = dict(
            tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        shard_s: dict[str, float] = {}
        if not names:
            self._record("scan_buckets", shard_s)
            return (list(columns) if columns is not None else []), []
        if len(names) == 1:
            out = self._timed(
                shard_s, names[0],
                lambda: self.shards[names[0]].scan_buckets(
                    db, measurement, agg, group_by_s, columns=columns, **kw
                ),
            )
            self._record("scan_buckets", shard_s)
            return out
        per = [
            (
                n,
                self._timed(
                    shard_s, n,
                    lambda n=n: self.shards[n].bucket_partials(
                        db, measurement, group_by_s, columns=columns, **kw
                    ),
                ),
            )
            for n in names
        ]
        cols = self._union_columns([c for _, (c, _) in per], columns)
        buckets: dict[float, list[list[tuple]]] = {}
        for _, (shard_cols, bucket_rows) in per:
            idx = [
                shard_cols.index(c) if c in shard_cols else None for c in cols
            ]
            for b, stat_row in bucket_rows:
                slot = buckets.get(b)
                if slot is None:
                    slot = buckets[b] = [[] for _ in cols]
                for ci, i in enumerate(idx):
                    if i is None:
                        continue
                    st = stat_row[i]
                    if st is not None:
                        slot[ci].append(st)
        ordered = sorted(buckets)
        rows: list[tuple[float, list]] = []
        fallback: set[tuple[float, int]] = set()
        for b in ordered:
            row: list = []
            for ci in range(len(cols)):
                merged = self._merge_stats(agg, buckets[b][ci])
                if merged is self._FALLBACK:
                    fallback.add((b, ci))
                    merged = None
                row.append(merged)
            rows.append((b, row))
        if fallback:
            vals: dict[tuple[float, int], list[float]] = {}
            for t, _, row in self._merged_keyed_rows(
                db, measurement, cols, names, kw
            ):
                b = (t // group_by_s) * group_by_s
                for ci, v in enumerate(row):
                    if v is not None and (b, ci) in fallback:
                        vals.setdefault((b, ci), []).append(v)
            by_bucket = {b: row for b, row in rows}
            for (b, ci) in fallback:
                vs = vals.get((b, ci))
                by_bucket[b][ci] = fold_values(agg, vs) if vs else None
        self._record("scan_buckets", shard_s)
        return cols, rows

    # ------------------------------------------------------------------
    # Sketch-served analytics scatter-gather
    # ------------------------------------------------------------------
    # PERCENTILE ships per-shard t-digest partials and merges them as
    # digests (true merge — the whole point of mergeable sketches), so the
    # cross-shard answer carries the same rank-error bound as a single
    # engine.  COUNT(DISTINCT) merges per-shard HLLs register-wise when
    # every shard may serve approximately, else unions the value-keyed
    # exact lists.  STDDEV and DISTINCT re-fold the interleaved scan —
    # exact, and byte-identical to the unsharded engine.

    def quantile_columns(
        self,
        db: str,
        measurement: str,
        pct: float,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], float | None, list[float | None]]:
        self._check_db(db)
        names, partial = self._scatter_shards(db, measurement, tags)
        self._note_partial(partial)
        kw = dict(
            tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        shard_s: dict[str, float] = {}
        if not names:
            cols = list(columns) if columns is not None else []
            self._record("quantile_columns", shard_s)
            return cols, None, [None] * len(cols)
        if len(names) == 1:
            out = self._timed(
                shard_s, names[0],
                lambda: self.shards[names[0]].quantile_columns(
                    db, measurement, pct, columns=columns, **kw
                ),
            )
            self._record("quantile_columns", shard_s)
            return out
        per = [
            (
                n,
                self._timed(
                    shard_s, n,
                    lambda n=n: self.shards[n].quantile_partials(
                        db, measurement, columns=columns, **kw
                    ),
                ),
            )
            for n in names
        ]
        cols = self._union_columns([c for _, (c, _, _) in per], columns)
        first_t = min(
            (ft for _, (_, ft, _) in per if ft is not None), default=None
        )
        q = pct / 100.0
        out: list[float | None] = []
        for c in cols:
            ds: list[TDigest] = []
            for _, (shard_cols, _, digests) in per:
                try:
                    si = shard_cols.index(c)
                except ValueError:
                    continue
                d = digests[si]
                if d is not None:
                    ds.append(d)
            if not ds:
                out.append(None)
            elif len(ds) == 1:
                out.append(ds[0].quantile(q))
            else:
                out.append(TDigest.merged(ds).quantile(q))
        self._record("quantile_columns", shard_s)
        return cols, first_t, out

    def quantile_buckets(
        self,
        db: str,
        measurement: str,
        pct: float,
        group_by_s: float,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], list[tuple[float, list[float | None]]]]:
        if group_by_s <= 0:
            raise InfluxError("GROUP BY time() needs a positive bucket width")
        self._check_db(db)
        names, partial = self._scatter_shards(db, measurement, tags)
        self._note_partial(partial)
        kw = dict(
            tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        shard_s: dict[str, float] = {}
        if not names:
            self._record("quantile_buckets", shard_s)
            return (list(columns) if columns is not None else []), []
        if len(names) == 1:
            out = self._timed(
                shard_s, names[0],
                lambda: self.shards[names[0]].quantile_buckets(
                    db, measurement, pct, group_by_s, columns=columns, **kw
                ),
            )
            self._record("quantile_buckets", shard_s)
            return out
        per = [
            (
                n,
                self._timed(
                    shard_s, n,
                    lambda n=n: self.shards[n].quantile_bucket_partials(
                        db, measurement, group_by_s, columns=columns, **kw
                    ),
                ),
            )
            for n in names
        ]
        cols = self._union_columns([c for _, (c, _) in per], columns)
        buckets: dict[float, list[list[TDigest]]] = {}
        for _, (shard_cols, bucket_rows) in per:
            idx = [
                shard_cols.index(c) if c in shard_cols else None for c in cols
            ]
            for b, digest_row in bucket_rows:
                slot = buckets.get(b)
                if slot is None:
                    slot = buckets[b] = [[] for _ in cols]
                for ci, i in enumerate(idx):
                    if i is None:
                        continue
                    d = digest_row[i]
                    if d is not None:
                        slot[ci].append(d)
        q = pct / 100.0
        rows: list[tuple[float, list[float | None]]] = []
        for b in sorted(buckets):
            row: list[float | None] = []
            for ds in buckets[b]:
                if not ds:
                    row.append(None)
                elif len(ds) == 1:
                    row.append(ds[0].quantile(q))
                else:
                    row.append(TDigest.merged(ds).quantile(q))
            rows.append((b, row))
        self._record("quantile_buckets", shard_s)
        return cols, rows

    def stddev_columns(
        self,
        db: str,
        measurement: str,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], float | None, list[float | None]]:
        """Exact: single contributing shard delegates (rollup-partial
        serving and all); multi-shard re-folds the interleaved keyed scan in
        single-engine row order, so results stay byte-identical."""
        self._check_db(db)
        names, partial = self._scatter_shards(db, measurement, tags)
        self._note_partial(partial)
        kw = dict(
            tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        if not names:
            cols = list(columns) if columns is not None else []
            return cols, None, [None] * len(cols)
        if len(names) == 1:
            return self.shards[names[0]].stddev_columns(
                db, measurement, columns=columns, **kw
            )
        cols, rows = self.scan_columns(
            db, measurement, columns=columns, **kw
        )
        first_t = rows[0][0] if rows else None
        out: list[float | None] = []
        for i in range(len(cols)):
            vals = [r[i] for _, r in rows if r[i] is not None]
            out.append(stddev_of(vals))
        return cols, first_t, out

    def stddev_buckets(
        self,
        db: str,
        measurement: str,
        group_by_s: float,
        columns: list[str] | None = None,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[list[str], list[tuple[float, list[float | None]]]]:
        if group_by_s <= 0:
            raise InfluxError("GROUP BY time() needs a positive bucket width")
        self._check_db(db)
        names, partial = self._scatter_shards(db, measurement, tags)
        self._note_partial(partial)
        kw = dict(
            tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        if not names:
            return (list(columns) if columns is not None else []), []
        if len(names) == 1:
            return self.shards[names[0]].stddev_buckets(
                db, measurement, group_by_s, columns=columns, **kw
            )
        cols, rows = self.scan_columns(db, measurement, columns=columns, **kw)
        buckets: dict[float, list[list[float]]] = {}
        for t, vals in rows:
            b = (t // group_by_s) * group_by_s
            slot = buckets.setdefault(b, [[] for _ in cols])
            for i, v in enumerate(vals):
                if v is not None:
                    slot[i].append(v)
        return cols, [
            (b, [stddev_of(vs) for vs in buckets[b]]) for b in sorted(buckets)
        ]

    def distinct_values(
        self,
        db: str,
        measurement: str,
        column: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> list[tuple[float, float]]:
        """Exact DISTINCT: per-shard value-keyed lists merged on the global
        (time, seq) first-occurrence key."""
        self._check_db(db)
        names, partial = self._scatter_shards(db, measurement, tags)
        self._note_partial(partial)
        kw = dict(
            tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        if not names:
            return []
        if len(names) == 1:
            return self.shards[names[0]].distinct_values(
                db, measurement, column, **kw
            )
        best: dict[bytes, tuple[float, int, float]] = {}
        for n in names:
            for t, seq, v in self.shards[n].distinct_keyed(
                db, measurement, column, **kw
            ):
                vk = value_key(v)
                prev = best.get(vk)
                if prev is None or (t, seq) < (prev[0], prev[1]):
                    best[vk] = (t, seq, v)
        return [(t, v) for t, _, v in sorted(best.values())]

    def count_distinct(
        self,
        db: str,
        measurement: str,
        column: str,
        tags: dict[str, str] | None = None,
        t0: float | None = None,
        t1: float | None = None,
        *,
        t0_exclusive: bool = False,
        t1_exclusive: bool = False,
    ) -> tuple[float | None, float | None]:
        """COUNT(DISTINCT): register-wise HLL merge when every contributing
        shard may serve approximately, else an exact value-key union."""
        self._check_db(db)
        names, partial = self._scatter_shards(db, measurement, tags)
        self._note_partial(partial)
        kw = dict(
            tags=tags, t0=t0, t1=t1,
            t0_exclusive=t0_exclusive, t1_exclusive=t1_exclusive,
        )
        if not names:
            return None, None
        if len(names) == 1:
            return self.shards[names[0]].count_distinct(
                db, measurement, column, **kw
            )
        per = [
            self.shards[n].distinct_partials(db, measurement, column, **kw)
            for n in names
        ]
        first_t = min((ft for ft, _, _ in per if ft is not None), default=None)
        cfg = self.sketch
        hlls = [h for _, h, _ in per if h is not None]
        # Approximate only when *every* shard could serve its slice and the
        # merged register width stays within the configured bound.
        if (
            len(hlls) == len(per)
            and hlls
            and hlls[0].error_bound() <= cfg.hll_epsilon
        ):
            merged = HyperLogLog(hlls[0].p)
            for h in hlls:
                merged.merge_from(h)
            return first_t, float(round(merged.count()))
        keys: set[bytes] = set()
        for _, _, exact in per:
            keys.update(value_key(v) for _, _, v in exact)
        return first_t, (float(len(keys)) if keys else None)

    # ------------------------------------------------------------------
    # Series administration, retention, stats
    # ------------------------------------------------------------------
    def delete_series(
        self, db: str, measurement: str, tags: dict[str, str] | None = None
    ) -> int:
        self._check_db(db)
        removed = 0
        partial = False
        for name, sh in self.shards.items():
            if self._up(name):
                removed += sh.delete_series(db, measurement, tags)
            elif sh.series_count(db, measurement, tags):
                partial = True
        self._note_partial(partial)
        return removed

    def enforce_retention(self, db: str, now: float) -> int:
        """Fan-out retention; a down shard is skipped (its horizon catches
        up on the next enforcement after recovery — the call is idempotent
        per horizon)."""
        self._check_db(db)
        return sum(
            sh.enforce_retention(db, now)
            for name, sh in self.shards.items()
            if self._up(name)
        )

    def stats(self, db: str) -> dict:
        """Aggregated counters plus the per-shard breakdown (the
        introspection surface the rebalancer, balance tests, and the
        ``pmove shard`` CLI read)."""
        self._check_db(db)
        per = {
            name: self.shards[name].stats(db) for name in sorted(self.shards)
        }
        out: dict = {
            k: sum(s[k] for s in per.values())
            for k in (
                "points_written", "bytes_written", "series_stored",
                "series_count",
            )
        }
        out["shards"] = per
        out["dropped_points"] = dict(self.dropped_points)
        return out

    # ------------------------------------------------------------------
    # Rebalancing & migration
    # ------------------------------------------------------------------
    def add_shard(
        self, name: str | None = None, *, engine: InfluxDB | None = None
    ) -> dict:
        """Attach a new shard and migrate the ring-affected series in."""
        if name is None:
            i = len(self.shards)
            while f"shard-{i}" in self.shards:
                i += 1
            name = f"shard-{i}"
        if name in self.shards:
            raise InfluxError(f"shard {name!r} already attached")
        engine = engine or InfluxDB(self._rollup_tiers, sketch=self._sketch)
        for db, duration in self._databases.items():
            engine.create_database(db)
            if duration is not None:
                engine.set_retention_policy(db, duration)
        self.shards[name] = engine
        self.dropped_points.setdefault(name, 0)
        self.ring.add(name)
        return self._rebalance(f"add {name}")

    def drain_shard(self, name: str) -> dict:
        """Planned maintenance: take ``name`` out of placement and move its
        series to their new ring owners; the engine stays attached (and
        queryable — it is empty) until :meth:`remove_shard`."""
        self._require_shard(name)
        if not self._up(name):
            raise InfluxError(
                f"shard {name!r} is down; clear the fault before draining"
            )
        if name in self.ring.nodes:
            if len(self.ring) <= 1:
                raise InfluxError("cannot drain the last placeable shard")
            self.ring.remove(name)
            self._draining.add(name)
        return self._rebalance(f"drain {name}")

    def remove_shard(self, name: str) -> dict:
        """Drain ``name`` (if still placeable) and detach its engine."""
        self._require_shard(name)
        if len(self.shards) <= 1:
            raise InfluxError("cannot remove the last shard")
        summary = self.drain_shard(name) if name in self.ring.nodes else (
            self._rebalance(f"remove {name}")
        )
        del self.shards[name]
        self._draining.discard(name)
        self.dropped_points.pop(name, None)
        summary["reason"] = f"remove {name}"
        return summary

    def _rebalance(self, reason: str) -> dict:
        """Move every series whose ring placement changed; nothing else.

        Rows migrate with their (time, seq) keys intact, so merge order —
        and every query result — is invariant under rebalancing.  Requires
        all shards up: a crashed shard's data is unreachable, so migrating
        it would fabricate availability the deployment does not have.
        """
        down = [n for n in self.shards if not self._up(n)]
        if down:
            raise InfluxError(
                f"rebalance requires every shard up; down: {down}"
            )
        self._placement.clear()
        memo = self._placement
        moved_series = moved_points = 0
        for db in sorted(self._databases):
            for src_name in sorted(self.shards):
                src = self.shards[src_name]
                for measurement, tags in src.list_series(db):
                    tagkey = tuple(sorted(tags.items()))
                    dst_name = self.ring.place(series_key(measurement, tagkey))
                    memo[(measurement, tagkey)] = dst_name
                    if dst_name == src_name:
                        continue
                    rows = src.pop_series(db, measurement, tags)
                    if rows:
                        self.shards[dst_name].import_rows(
                            db, measurement, tags, rows
                        )
                        moved_series += 1
                        moved_points += len(rows)
        self.last_rebalance = {
            "reason": reason,
            "moved_series": moved_series,
            "moved_points": moved_points,
            "shards": sorted(self.shards),
        }
        return dict(self.last_rebalance)
