"""Database substrates: the InfluxDB-like time-series store (with line
protocol, retention policies and an InfluxQL subset) and the MongoDB-like
document store the Knowledge Base lives in (§III-A)."""

from .faulty import FaultyInfluxDB, ServiceUnavailable
from .influx import (
    DEFAULT_ROLLUP_TIERS,
    InfluxDB,
    InfluxError,
    Point,
    RetentionPolicy,
    fold_values,
)
from .influxql import (
    Query,
    ResultSet,
    execute,
    naive_execute,
    parse_query,
    show_measurements,
)
from .mongo import Collection, MongoDB, MongoError
from .sharded import HashRing, ShardedInfluxDB, series_key

__all__ = [
    "Collection",
    "DEFAULT_ROLLUP_TIERS",
    "FaultyInfluxDB",
    "HashRing",
    "InfluxDB",
    "InfluxError",
    "MongoDB",
    "MongoError",
    "Point",
    "Query",
    "ResultSet",
    "RetentionPolicy",
    "ServiceUnavailable",
    "ShardedInfluxDB",
    "execute",
    "fold_values",
    "naive_execute",
    "series_key",
    "show_measurements",
    "parse_query",
]
