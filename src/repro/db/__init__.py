"""Database substrates: the InfluxDB-like time-series store (with line
protocol, retention policies and an InfluxQL subset) and the MongoDB-like
document store the Knowledge Base lives in (§III-A)."""

from .faulty import FaultyInfluxDB, ServiceUnavailable
from .influx import (
    DEFAULT_ROLLUP_TIERS,
    InfluxDB,
    InfluxError,
    Point,
    RetentionPolicy,
    fold_values,
)
from .influxql import (
    Query,
    ResultSet,
    execute,
    naive_execute,
    parse_query,
    show_measurements,
)
from .mongo import Collection, MongoDB, MongoError

__all__ = [
    "Collection",
    "DEFAULT_ROLLUP_TIERS",
    "FaultyInfluxDB",
    "InfluxDB",
    "InfluxError",
    "MongoDB",
    "MongoError",
    "Point",
    "Query",
    "ResultSet",
    "RetentionPolicy",
    "ServiceUnavailable",
    "execute",
    "fold_values",
    "naive_execute",
    "show_measurements",
    "parse_query",
]
