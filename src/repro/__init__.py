"""P-MoVE reproduction: performance monitoring and visualization with
encoded knowledge (Taşyaran et al., SC 2024).

Top-level subpackages mirror the paper's architecture:

- :mod:`repro.machine` — simulated target systems (Table II platforms).
- :mod:`repro.pmu` — PMU event catalogs, counters, and the Abstraction
  Layer (§IV-A).
- :mod:`repro.probing` — system probing tools and parsers (§III-C).
- :mod:`repro.pcp` — the Performance Co-Pilot substrate: agents, pmcd,
  sampling, host–target transport.
- :mod:`repro.db` — InfluxDB-like time-series store and MongoDB-like
  document store.
- :mod:`repro.core` — the P-MoVE contribution proper: ontology, Knowledge
  Base, observation/benchmark interfaces, query generation, views, the
  daemon (Fig 3 scenarios), and SUPERDB (§III-E).
- :mod:`repro.viz` — Grafana-style dashboards generated from the KB
  (Fig 2, Listing 1).
- :mod:`repro.carm` — Cache-Aware Roofline Model construction and the
  live-CARM panel (§IV-B, Figs 8–9).
- :mod:`repro.workloads` — SpMV (MKL-like and merge-based), likwid-bench
  kernels, STREAM, HPCG, matrix generators and reorderings.
- :mod:`repro.gpu` — the NVIDIA device path of §III-D.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
