"""Event formula expressions for the Abstraction Layer.

The paper's configuration grammar (§IV-A)::

    [pmu_name | alias]
    <generic_event>:<hardware_event_1> [op]
    [op] : ((+|-|*|/) (<hw_event> | <const>)) [op]

A formula is a chain of hardware-event names and numeric constants combined
with ``+ - * /``.  ``pmu_utils.get`` returns the token list form (exactly
the paper's example output); :func:`evaluate` computes a value given a
resolver for hardware-event readings.  Evaluation honours standard operator
precedence (``* /`` over ``+ -``), which coincides with the chain semantics
for the homogeneous-operator formulas the paper shows and is well-defined
for mixed ones.
"""

from __future__ import annotations

import re
from collections.abc import Callable

__all__ = ["tokenize", "Formula", "FormulaError", "evaluate"]

_OPS = ("+", "-", "*", "/")
# Hardware event names: WORD[:WORD] with dots/digits allowed, e.g.
# MEM_INST_RETIRED:ALL_LOADS, RAPL_ENERGY_PKG, FP_ARITH:512B_PACKED_DOUBLE.
_EVENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*(:[A-Za-z0-9_.]+)?$")
_NUM_RE = re.compile(r"^\d+(\.\d+)?([eE][+-]?\d+)?$")


class FormulaError(ValueError):
    """Malformed formula text or token stream."""


def tokenize(text: str) -> list[str]:
    """Split formula text into event / constant / operator tokens.

    Operators may or may not be surrounded by whitespace; event names never
    contain operator characters, so splitting is unambiguous.
    """
    out: list[str] = []
    buf = ""
    for ch in text:
        if ch in "+-*/":
            if buf.strip():
                out.append(buf.strip())
            buf = ""
            out.append(ch)
        else:
            buf += ch
    if buf.strip():
        out.append(buf.strip())
    if not out:
        raise FormulaError("empty formula")
    return out


class Formula:
    """A validated formula: alternating operands and operators."""

    def __init__(self, tokens: list[str]) -> None:
        if not tokens:
            raise FormulaError("empty formula")
        if len(tokens) % 2 == 0:
            raise FormulaError(f"formula must have odd token count: {tokens}")
        for i, tok in enumerate(tokens):
            if i % 2 == 0:
                if tok in _OPS:
                    raise FormulaError(f"operand expected at position {i}: {tokens}")
                if not (_EVENT_RE.match(tok) or _NUM_RE.match(tok)):
                    raise FormulaError(f"bad operand {tok!r}")
            else:
                if tok not in _OPS:
                    raise FormulaError(f"operator expected at position {i}: {tokens}")
        self.tokens = list(tokens)

    @classmethod
    def parse(cls, text: str) -> "Formula":
        return cls(tokenize(text))

    @property
    def events(self) -> list[str]:
        """Hardware event names referenced, in order of first appearance."""
        seen: list[str] = []
        for i, tok in enumerate(self.tokens):
            if i % 2 == 0 and not _NUM_RE.match(tok) and tok not in seen:
                seen.append(tok)
        return seen

    @property
    def constants(self) -> list[float]:
        return [
            float(t) for i, t in enumerate(self.tokens) if i % 2 == 0 and _NUM_RE.match(t)
        ]

    def __repr__(self) -> str:
        return f"Formula({' '.join(self.tokens)})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Formula) and self.tokens == other.tokens

    def text(self) -> str:
        return " ".join(self.tokens)

    def evaluate(self, resolve: Callable[[str], float]) -> float:
        """Compute the formula; ``resolve`` maps event name → reading."""
        return evaluate(self.tokens, resolve)


def evaluate(tokens: list[str], resolve: Callable[[str], float]) -> float:
    """Evaluate a token chain with ``*``/``/`` binding tighter than ``+``/``-``."""
    f = Formula(tokens)  # validates

    def operand(tok: str) -> float:
        if _NUM_RE.match(tok):
            return float(tok)
        return float(resolve(tok))

    # First pass: collapse * and / runs.
    values: list[float] = [operand(f.tokens[0])]
    addops: list[str] = []
    i = 1
    while i < len(f.tokens):
        op, rhs = f.tokens[i], operand(f.tokens[i + 1])
        if op == "*":
            values[-1] *= rhs
        elif op == "/":
            if rhs == 0:
                raise ZeroDivisionError(f"division by zero in {f.text()}")
            values[-1] /= rhs
        else:
            addops.append(op)
            values.append(rhs)
        i += 2
    # Second pass: left-to-right + and -.
    total = values[0]
    for op, v in zip(addops, values[1:]):
        total = total + v if op == "+" else total - v
    return total
