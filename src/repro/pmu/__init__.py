"""PMU substrate: per-microarchitecture event catalogs (the libpfm4
substitute), programmable counters with real slot limits and multiplexing,
the Weaver-style noise model, and the paper's Abstraction Layer (§IV-A)."""

from .abstraction import (
    COMMON_EVENTS,
    DEFAULT_CONFIGS,
    TABLE1_EVENTS,
    AbstractionLayer,
    UnsupportedEventError,
    pmu_utils,
)
from .counters import PMU, CounterAllocationError, CounterSession
from .events import CATALOGS, EventCatalog, EventDef, UnknownEventError, catalog_for
from .formulas import Formula, FormulaError, evaluate, tokenize
from .noise import NoiseModel

__all__ = [
    "CATALOGS",
    "COMMON_EVENTS",
    "DEFAULT_CONFIGS",
    "PMU",
    "TABLE1_EVENTS",
    "AbstractionLayer",
    "CounterAllocationError",
    "CounterSession",
    "EventCatalog",
    "EventDef",
    "Formula",
    "FormulaError",
    "NoiseModel",
    "UnknownEventError",
    "UnsupportedEventError",
    "catalog_for",
    "evaluate",
    "pmu_utils",
    "tokenize",
]
