"""The Abstraction Layer (§IV-A): generic event names → vendor formulas.

PMUs differ per vendor and per microarchitecture; the Abstraction Layer
"maps generic event names to concealed HW-specific PMU event names" via
plain-text configuration files following the paper's grammar::

    [pmu_name | alias]
    <generic_event>:<hardware_event_1> [op]
    [op] : ((+|-|*|/) (<hw_event> | <const>)) [op]

``pmu_utils.get(HW_PMU_NAME, COMMON_EVENT_NAME)`` returns the token-list
form of the formula — the paper's own example::

    >pmu_utils.get("skl", "TOTAL_MEMORY_OPERATIONS")
    >[ "MEM_INST_RETIRED:ALL_LOADS", "+", "MEM_INST_RETIRED:ALL_STORES" ]

Built-in configurations cover the four experiment platforms.  Events a PMU
cannot express are declared ``NOT_SUPPORTED`` (Table I's Intel "L3 Hit").
"""

from __future__ import annotations

from collections.abc import Callable

from .events import catalog_for
from .formulas import Formula, FormulaError

__all__ = [
    "AbstractionLayer",
    "UnsupportedEventError",
    "pmu_utils",
    "DEFAULT_CONFIGS",
    "TABLE1_EVENTS",
    "COMMON_EVENTS",
]

_NOT_SUPPORTED = "NOT_SUPPORTED"


class UnsupportedEventError(KeyError):
    """A generic event has no mapping (or an explicit NOT_SUPPORTED) on a PMU."""


#: Common events every commodity CPU is assumed to support (§IV-A), plus the
#: generic events live-CARM and the Fig 7 monitoring panels rely on.
COMMON_EVENTS = (
    "CYCLES",
    "INSTRUCTIONS",
    "TOTAL_MEMORY_OPERATIONS",
    "TOTAL_MEMORY_INSTRUCTIONS",
    "L1_CACHE_DATA_MISS",
    "RAPL_ENERGY_PKG",
    "FLOPS_DP",
    "SCALAR_DOUBLE_INSTRUCTIONS",
    "AVX512_DOUBLE_INSTRUCTIONS",
    "DATA_VOLUME_BYTES",
)


_INTEL_BODY = """
CYCLES: UNHALTED_CORE_CYCLES
INSTRUCTIONS: INSTRUCTION_RETIRED
TOTAL_MEMORY_OPERATIONS: MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES
TOTAL_MEMORY_INSTRUCTIONS: MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES
LOADS: MEM_INST_RETIRED:ALL_LOADS
STORES: MEM_INST_RETIRED:ALL_STORES
L1_CACHE_DATA_MISS: L1D:REPLACEMENT
L2_CACHE_MISS: L2_RQSTS:MISS
L3_MISS: LONGEST_LAT_CACHE:MISS
L3_ACCESS: LONGEST_LAT_CACHE:REFERENCE
L3_HIT: NOT_SUPPORTED
RAPL_ENERGY_PKG: RAPL_ENERGY_PKG
RAPL_ENERGY_DRAM: RAPL_ENERGY_DRAM
RAPL_POWER_PACKAGE: RAPL_ENERGY_PKG
SCALAR_DOUBLE_INSTRUCTIONS: FP_ARITH:SCALAR_DOUBLE
SSE_DOUBLE_INSTRUCTIONS: FP_ARITH:128B_PACKED_DOUBLE
AVX2_DOUBLE_INSTRUCTIONS: FP_ARITH:256B_PACKED_DOUBLE
AVX512_DOUBLE_INSTRUCTIONS: FP_ARITH:512B_PACKED_DOUBLE
FLOPS_DP: FP_ARITH:SCALAR_DOUBLE + FP_ARITH:128B_PACKED_DOUBLE * 2 + FP_ARITH:256B_PACKED_DOUBLE * 4 + FP_ARITH:512B_PACKED_DOUBLE * 8
FLOPS_SP: FP_ARITH:SCALAR_SINGLE + FP_ARITH:128B_PACKED_SINGLE * 4 + FP_ARITH:256B_PACKED_SINGLE * 8 + FP_ARITH:512B_PACKED_SINGLE * 16
DATA_VOLUME_BYTES: MEM_INST_RETIRED:ALL_LOADS * 8 + MEM_INST_RETIRED:ALL_STORES * 8
FP_DIV_RETIRED: FP_ARITH:SCALAR_DOUBLE
"""

_ZEN3_BODY = """
CYCLES: CYCLES_NOT_IN_HALT
INSTRUCTIONS: RETIRED_INSTRUCTIONS
TOTAL_MEMORY_OPERATIONS: LS_DISPATCH:STORE_DISPATCH + LS_DISPATCH:LD_DISPATCH
TOTAL_MEMORY_INSTRUCTIONS: LS_DISPATCH:STORE_DISPATCH + LS_DISPATCH:LD_DISPATCH
LOADS: LS_DISPATCH:LD_DISPATCH
STORES: LS_DISPATCH:STORE_DISPATCH
L1_CACHE_DATA_MISS: L1_DATA_CACHE_REFILLS:ALL
L2_CACHE_MISS: L2_CACHE_MISS_FROM_DC_MISS
L3_MISS: LONGEST_LAT_CACHE:MISS
L3_ACCESS: LONGEST_LAT_CACHE:MISS + LONGEST_LAT_CACHE:RETIRED
L3_HIT: LONGEST_LAT_CACHE:MISS + LONGEST_LAT_CACHE:RETIRED
RAPL_ENERGY_PKG: RAPL_ENERGY_PKG
RAPL_ENERGY_DRAM: RAPL_ENERGY_DRAM
RAPL_POWER_PACKAGE: RAPL_ENERGY_PKG
SCALAR_DOUBLE_INSTRUCTIONS: NOT_SUPPORTED
AVX512_DOUBLE_INSTRUCTIONS: NOT_SUPPORTED
FLOPS_DP: RETIRED_SSE_AVX_FLOPS:ANY
FLOPS_SP: RETIRED_SSE_AVX_FLOPS:ANY
DATA_VOLUME_BYTES: MEM_UOPS:LOADS * 8 + MEM_UOPS:STORES * 8
FP_DIV_RETIRED: RETIRED_SSE_AVX_FLOPS:MULT_FLOPS
"""

#: Built-in configuration files, in the paper's text format, one per
#: experiment platform.  Header aliases let callers use Table II hostnames.
DEFAULT_CONFIGS = (
    "[skl | skylakex skx]" + _INTEL_BODY,
    "[clx | cascadelake csl]" + _INTEL_BODY,
    "[icx | icelake icl]" + _INTEL_BODY,
    "[zen3 | amd_zen3 milan]" + _ZEN3_BODY,
)

#: Table I of the paper: how the same generic event maps per vendor, with
#: the paper's same/similar/different/exclusive classification.
TABLE1_EVENTS = {
    "Energy": {
        "intel": "RAPL_ENERGY_PKG",
        "amd": "RAPL_ENERGY_PKG + RAPL_ENERGY_DRAM",
        "relation": "same",
    },
    "Instructions": {
        "intel": "INSTRUCTION_RETIRED",
        "amd": "RETIRED_INSTRUCTIONS",
        "relation": "similar",
    },
    "Tot. Mem. Op.": {
        "intel": "MEM_INST_RETIRED:ALL_LOADS + MEM_INST_RETIRED:ALL_STORES",
        "amd": "LS_DISPATCH:STORE_DISPATCH + LS_DISPATCH:LD_DISPATCH",
        "relation": "different",
    },
    "L3 Hit": {
        "intel": None,  # Not Supported
        "amd": "LONGEST_LAT_CACHE:MISS + LONGEST_LAT_CACHE:RETIRED",
        "relation": "exclusive",
    },
}


class AbstractionLayer:
    """Registry of PMU configuration files and the ``get`` lookup."""

    def __init__(self) -> None:
        # canonical name -> {generic: Formula | None}
        self._maps: dict[str, dict[str, Formula | None]] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Config registration
    # ------------------------------------------------------------------
    def register_config(self, text: str) -> str:
        """Parse one configuration file; returns the canonical PMU name."""
        name: str | None = None
        mapping: dict[str, Formula | None] = {}
        aliases: list[str] = []
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("["):
                if name is not None:
                    raise FormulaError(f"line {lineno}: second [header] in config")
                if not line.endswith("]"):
                    raise FormulaError(f"line {lineno}: unterminated header")
                head = line[1:-1]
                parts = [p.strip() for p in head.split("|")]
                name = parts[0]
                if not name:
                    raise FormulaError(f"line {lineno}: empty pmu name")
                if len(parts) > 1:
                    aliases = parts[1].split()
                continue
            if name is None:
                raise FormulaError(f"line {lineno}: mapping before [header]")
            if ":" not in line:
                raise FormulaError(f"line {lineno}: expected GENERIC: formula")
            generic, _, body = line.partition(":")
            generic = generic.strip()
            body = body.strip()
            if not generic or not body:
                raise FormulaError(f"line {lineno}: empty mapping")
            if body == _NOT_SUPPORTED:
                mapping[generic] = None
            else:
                mapping[generic] = Formula.parse(body)
        if name is None:
            raise FormulaError("config has no [header]")
        self._maps[name] = mapping
        self._aliases[name] = name
        for a in aliases:
            self._aliases[a] = name
        return name

    def _resolve_pmu(self, pmu_name: str) -> str:
        try:
            return self._aliases[pmu_name]
        except KeyError:
            raise KeyError(
                f"no PMU config registered for {pmu_name!r}; "
                f"known: {sorted(self._aliases)}"
            ) from None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def pmus(self) -> list[str]:
        return sorted(self._maps)

    def generic_events(self, pmu_name: str) -> list[str]:
        return sorted(self._maps[self._resolve_pmu(pmu_name)])

    def supported(self, pmu_name: str, generic_event: str) -> bool:
        mapping = self._maps[self._resolve_pmu(pmu_name)]
        return mapping.get(generic_event) is not None

    def formula(self, pmu_name: str, generic_event: str) -> Formula:
        mapping = self._maps[self._resolve_pmu(pmu_name)]
        if generic_event not in mapping:
            raise UnsupportedEventError(
                f"{generic_event!r} is not mapped for PMU {pmu_name!r}"
            )
        f = mapping[generic_event]
        if f is None:
            raise UnsupportedEventError(
                f"{generic_event!r} is declared NOT_SUPPORTED on {pmu_name!r}"
            )
        return f

    def get(self, pmu_name: str, generic_event: str) -> list[str]:
        """The paper's ``pmu_utils.get``: formula as a token list."""
        return list(self.formula(pmu_name, generic_event).tokens)

    def hw_events_needed(self, pmu_name: str, generic_events: list[str]) -> list[str]:
        """Deduplicated hardware events required to evaluate a set of
        generic events — what Scenario B programs into the PMU."""
        seen: list[str] = []
        for g in generic_events:
            for e in self.formula(pmu_name, g).events:
                if e not in seen:
                    seen.append(e)
        return seen

    def evaluate(
        self, pmu_name: str, generic_event: str, resolve: Callable[[str], float]
    ) -> float:
        """Evaluate a generic event given a resolver of hardware readings."""
        return self.formula(pmu_name, generic_event).evaluate(resolve)

    def validate_against_catalog(self, pmu_name: str, uarch: str) -> list[str]:
        """Check every mapped hardware event exists in ``uarch``'s catalog;
        returns the list of unknown event names (empty = fully valid)."""
        cat = catalog_for(uarch)
        missing: list[str] = []
        mapping = self._maps[self._resolve_pmu(pmu_name)]
        for f in mapping.values():
            if f is None:
                continue
            for e in f.events:
                if e not in cat and e not in missing:
                    missing.append(e)
        return missing


def _default_layer() -> AbstractionLayer:
    layer = AbstractionLayer()
    for cfg in DEFAULT_CONFIGS:
        layer.register_config(cfg)
    return layer


#: The module-level instance the paper's API examples use
#: (``pmu_utils.get("skl", "TOTAL_MEMORY_OPERATIONS")``).
pmu_utils = _default_layer()
