"""Programmable PMU counter files for a simulated machine.

This models the constraint at the heart of the paper's Abstraction Layer
discussion (§IV-A): counters are a scarce, vendor-specific resource.  Intel
offers 4 programmable counters per hardware thread (8 when the SMT sibling
is idle) plus 3 fixed counters; the paper models AMD with 2.  Requesting
more core events than slots forces time-multiplexing, which degrades
accuracy (see :mod:`repro.pmu.noise` and the multiplexing ablation bench).

Socket-scope events (RAPL) live in their own MSR space and do not consume
core counter slots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.simulator import SimulatedMachine

from .events import EventCatalog, EventDef, catalog_for
from .noise import NoiseModel

__all__ = ["CounterSession", "PMU", "CounterAllocationError"]


class CounterAllocationError(RuntimeError):
    """Raised when an event set cannot be scheduled without multiplexing
    and the caller asked for ``allow_multiplexing=False``."""


@dataclass(frozen=True)
class CounterSession:
    """One programming of the PMU: which events, where, since when."""

    events: tuple[str, ...]
    cpus: tuple[int, ...]
    t_programmed: float
    mux_groups: int

    def __contains__(self, event: str) -> bool:
        return event in self.events


class PMU:
    """The performance-monitoring unit of one simulated machine."""

    def __init__(self, machine: SimulatedMachine, seed: int = 0) -> None:
        self.machine = machine
        self.spec = machine.spec.pmu
        self.catalog: EventCatalog = catalog_for(self.spec.uarch)
        self.noise = NoiseModel(self.spec, machine_seed=seed)
        self._session: CounterSession | None = None

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def slots_available(self, smt_sibling_idle: bool = False) -> int:
        """Programmable slots per hardware thread.

        Intel doubles the per-thread budget when the core is not shared
        with a second thread (§IV-A).
        """
        n = self.spec.n_programmable
        if smt_sibling_idle and self.catalog.vendor == "GenuineIntel":
            n *= 2
        return n

    def program(
        self,
        events: list[str],
        cpus: list[int] | None = None,
        allow_multiplexing: bool = True,
        smt_sibling_idle: bool = False,
    ) -> CounterSession:
        """Bind ``events`` to counters on ``cpus`` (default: all threads).

        Core events beyond the fixed counters compete for programmable
        slots; overflow triggers time-multiplexing in round-robin groups,
        or raises :class:`CounterAllocationError` if disallowed.
        """
        if not events:
            raise ValueError("must program at least one event")
        defs = [self.catalog.get(e) for e in events]  # raises on unknown
        if len(set(events)) != len(events):
            raise ValueError("duplicate events in programming request")
        if cpus is None:
            cpus = list(range(self.machine.spec.n_threads))
        bad = [c for c in cpus if not 0 <= c < self.machine.spec.n_threads]
        if bad:
            raise ValueError(f"cpus {bad} out of range")

        programmable = [
            d for d in defs if d.scope == "cpu" and not d.fixed
        ]
        slots = self.slots_available(smt_sibling_idle)
        mux_groups = max(1, -(-len(programmable) // slots))  # ceil division
        if mux_groups > 1 and not allow_multiplexing:
            raise CounterAllocationError(
                f"{len(programmable)} programmable events need "
                f"{mux_groups} multiplexing groups on {slots} slots"
            )
        self._session = CounterSession(
            events=tuple(events),
            cpus=tuple(cpus),
            t_programmed=self.machine.clock.now(),
            mux_groups=mux_groups,
        )
        return self._session

    @property
    def session(self) -> CounterSession:
        if self._session is None:
            raise RuntimeError("PMU has not been programmed")
        return self._session

    def stop(self) -> None:
        self._session = None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _scope_for(self, edef: EventDef, cpu: int) -> tuple[str, int]:
        if edef.scope == "socket":
            socket = self.machine.spec.socket_of_core(
                self.machine.spec.core_of_thread(cpu)
            )
            return ("socket", socket)
        return ("cpu", cpu)

    def _true_value(self, edef: EventDef, cpu: int, t0: float, t1: float) -> float:
        scope = self._scope_for(edef, cpu)
        return sum(
            scale * self.machine.read(scope, quantity, t0, t1)
            for quantity, scale in edef.terms.items()
        )

    def read_interval(self, event: str, cpu: int, t0: float, t1: float) -> float:
        """Measured event count on one cpu over a window.

        Socket-scope events (RAPL) are attributed to the socket owning
        ``cpu``; sibling threads of the same socket would read the same
        value, exactly as ``perfevent`` instance domains behave.
        """
        sess = self.session
        if event not in sess:
            raise KeyError(f"event {event!r} not programmed")
        if cpu not in sess.cpus:
            raise KeyError(f"cpu {cpu} not covered by current session")
        edef = self.catalog.get(event)
        true = self._true_value(edef, cpu, t0, t1)
        mux = sess.mux_groups if (edef.scope == "cpu" and not edef.fixed) else 1
        return self.noise.measure(true, cpu, event, t0, t1, mux_groups=mux)

    def read(self, event: str, cpu: int) -> float:
        """Cumulative measured count since the session was programmed."""
        return self.read_interval(
            event, cpu, self.session.t_programmed, self.machine.clock.now()
        )

    def read_all_cpus(self, event: str, t0: float, t1: float) -> dict[int, float]:
        """One window read for every cpu in the session (a perfevent fetch).

        Routed through the batched path: one timeline pass for the whole
        cpu set instead of a scalar integrate per cpu."""
        return self.read_events_all_cpus([event], t0, t1)[event]

    def read_events_all_cpus(
        self, events: list[str], t0: float, t1: float
    ) -> dict[str, dict[int, float]]:
        """Window reads for many events × every session cpu, in one batched
        timeline pass.

        This is the whole-tick fetch of a PCP sampler: the true
        accumulations for all (event term, cpu) pairs come back from a
        single :meth:`SimulatedMachine.read_batch` call, then the
        deterministic per-read noise is applied — measured values are
        identical to scalar :meth:`read_interval` reads, only the number
        of timeline traversals changes."""
        sess = self.session
        missing = [e for e in events if e not in sess]
        if missing:
            raise KeyError(f"events {missing} not programmed")
        defs = [self.catalog.get(e) for e in events]
        pairs: list[tuple[tuple[str, int], str]] = []
        for edef in defs:
            for cpu in sess.cpus:
                scope = self._scope_for(edef, cpu)
                for quantity in edef.terms:
                    pairs.append((scope, quantity))
        raw = self.machine.read_batch(pairs, t0, t1)
        out: dict[str, dict[int, float]] = {}
        k = 0
        for event, edef in zip(events, defs):
            mux = sess.mux_groups if (edef.scope == "cpu" and not edef.fixed) else 1
            per_cpu: dict[int, float] = {}
            for cpu in sess.cpus:
                true = 0.0
                for scale in edef.terms.values():
                    true += scale * raw[k]
                    k += 1
                per_cpu[cpu] = self.noise.measure(
                    true, cpu, event, t0, t1, mux_groups=mux
                )
            out[event] = per_cpu
        return out
