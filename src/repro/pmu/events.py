"""PMU event catalogs — the libpfm4 substitute.

libpfm4 "can recognize model-specific registers (and events) of virtually
every x86 and ARM processor on the market" (§III-C).  Here, each supported
microarchitecture gets a catalog of :class:`EventDef` entries mapping the
vendor's event names onto the simulator's generic quantities.  An event's
value is a linear combination of quantities (``terms``), which expresses
things like AMD's ``RETIRED_SSE_AVX_FLOPS:ANY`` counting *FLOPs* while
Intel's ``FP_ARITH`` events count *instructions* per width class.

Catalog keys are the ``PMUSpec.uarch`` strings of the machine presets:
``skylakex``, ``cascadelake``, ``icelake``, ``zen3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EventDef", "EventCatalog", "catalog_for", "CATALOGS", "UnknownEventError"]


class UnknownEventError(KeyError):
    """Raised when an event name is not in a microarchitecture's catalog."""


@dataclass(frozen=True)
class EventDef:
    """One hardware event.

    ``terms`` maps generic quantity names to scale factors: the event's true
    value over a window is ``sum(scale * quantity_integral)``.  ``scope`` is
    ``"cpu"`` for core events and ``"socket"`` for uncore/RAPL events.
    ``fixed`` events live on fixed counters and never consume programmable
    slots (Intel has 3; AMD none in this model — §IV-A).
    """

    name: str
    terms: dict[str, float]
    scope: str = "cpu"
    fixed: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.scope not in ("cpu", "socket"):
            raise ValueError(f"bad scope {self.scope!r}")
        if not self.terms:
            raise ValueError(f"event {self.name} has no quantity terms")


class EventCatalog:
    """All events one microarchitecture's PMU can count."""

    def __init__(self, uarch: str, vendor: str, events: list[EventDef]) -> None:
        self.uarch = uarch
        self.vendor = vendor
        self._events = {e.name: e for e in events}
        if len(self._events) != len(events):
            raise ValueError("duplicate event names in catalog")

    def __contains__(self, name: str) -> bool:
        return name in self._events

    def __len__(self) -> int:
        return len(self._events)

    def get(self, name: str) -> EventDef:
        try:
            return self._events[name]
        except KeyError:
            raise UnknownEventError(
                f"{self.uarch} PMU has no event {name!r}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._events)

    def core_events(self) -> list[str]:
        return sorted(n for n, e in self._events.items() if e.scope == "cpu")

    def socket_events(self) -> list[str]:
        return sorted(n for n, e in self._events.items() if e.scope == "socket")


# ----------------------------------------------------------------------
# Intel catalogs.  Skylake-X / Cascade Lake / Ice Lake share the FP_ARITH /
# MEM_INST_RETIRED scheme; Ice Lake renames a couple of uncore events but
# the subset P-MoVE uses is stable across the three.
# ----------------------------------------------------------------------


def _intel_events() -> list[EventDef]:
    evs = [
        EventDef("UNHALTED_CORE_CYCLES", {"cycles": 1.0}, fixed=True,
                 description="Core cycles while not halted"),
        EventDef("UNHALTED_REFERENCE_CYCLES", {"cycles": 0.7}, fixed=True,
                 description="Reference (TSC-rate) cycles while not halted"),
        EventDef("INSTRUCTION_RETIRED", {"instructions": 1.0}, fixed=True,
                 description="Instructions retired"),
        EventDef("INSTRUCTIONS_RETIRED", {"instructions": 1.0}, fixed=True,
                 description="Alias of INSTRUCTION_RETIRED"),
        EventDef("UOPS_DISPATCHED", {"instructions": 1.25},
                 description="Micro-ops dispatched to execution ports"),
        EventDef("BRANCH_INSTRUCTIONS_RETIRED", {"instructions": 0.12},
                 description="Retired branch instructions"),
        # FP_ARITH_INST_RETIRED family: counts instructions per width class
        # (FMA counts double) — this is what live-CARM inverts into GFLOPS.
        EventDef("FP_ARITH:SCALAR_DOUBLE", {"fp_dp_scalar": 1.0},
                 description="Retired scalar DP FP instructions (FMA=2)"),
        EventDef("FP_ARITH:SCALAR_SINGLE", {"fp_sp_scalar": 1.0},
                 description="Retired scalar SP FP instructions (FMA=2)"),
        EventDef("FP_ARITH:128B_PACKED_DOUBLE", {"fp_dp_sse": 1.0},
                 description="Retired 128-bit packed DP FP instructions"),
        EventDef("FP_ARITH:128B_PACKED_SINGLE", {"fp_sp_sse": 1.0},
                 description="Retired 128-bit packed SP FP instructions"),
        EventDef("FP_ARITH:256B_PACKED_DOUBLE", {"fp_dp_avx2": 1.0},
                 description="Retired 256-bit packed DP FP instructions"),
        EventDef("FP_ARITH:256B_PACKED_SINGLE", {"fp_sp_avx2": 1.0},
                 description="Retired 256-bit packed SP FP instructions"),
        EventDef("FP_ARITH:512B_PACKED_DOUBLE", {"fp_dp_avx512": 1.0},
                 description="Retired 512-bit packed DP FP instructions"),
        EventDef("FP_ARITH:512B_PACKED_SINGLE", {"fp_sp_avx512": 1.0},
                 description="Retired 512-bit packed SP FP instructions"),
        EventDef("MEM_INST_RETIRED:ALL_LOADS", {"loads": 1.0},
                 description="Retired load instructions"),
        EventDef("MEM_INST_RETIRED:ALL_STORES", {"stores": 1.0},
                 description="Retired store instructions"),
        EventDef("MEM_UOPS_RETIRED:ALL_LOADS", {"loads": 1.02},
                 description="Retired load uops"),
        EventDef("MEM_UOPS_RETIRED:ALL_STORES", {"stores": 1.02},
                 description="Retired store uops"),
        EventDef("L1D:REPLACEMENT", {"l1d_miss": 1.0},
                 description="L1D lines replaced (fill-side miss proxy)"),
        EventDef("L2_RQSTS:MISS", {"l2_miss": 1.0},
                 description="L2 requests that missed"),
        EventDef("L2_RQSTS:REFERENCES", {"l1d_miss": 1.0},
                 description="All L2 requests (= L1D misses reaching L2)"),
        EventDef("LONGEST_LAT_CACHE:MISS", {"l3_miss": 1.0},
                 description="LLC misses"),
        EventDef("LONGEST_LAT_CACHE:REFERENCE", {"l3_access": 1.0},
                 description="LLC references"),
        # RAPL: per-socket energy, reported in joules by the perfevent
        # agent (libpfm4 exposes the 2^-32 J scale; pre-scaled here).
        EventDef("RAPL_ENERGY_PKG", {"energy_pkg": 1.0}, scope="socket",
                 description="Package energy (J)"),
        EventDef("RAPL_ENERGY_DRAM", {"energy_dram": 1.0}, scope="socket",
                 description="DRAM energy (J)"),
    ]
    return evs


def _zen3_events() -> list[EventDef]:
    return [
        EventDef("CYCLES_NOT_IN_HALT", {"cycles": 1.0},
                 description="Core cycles not in halt"),
        EventDef("RETIRED_INSTRUCTIONS", {"instructions": 1.0},
                 description="Instructions retired"),
        EventDef("RETIRED_UOPS", {"instructions": 1.3},
                 description="Micro-ops retired"),
        EventDef("RETIRED_BRANCH_INSTRUCTIONS", {"instructions": 0.12},
                 description="Retired branch instructions"),
        # Zen counts FLOPs directly (not instructions): MacOp FLOP count.
        EventDef(
            "RETIRED_SSE_AVX_FLOPS:ANY",
            {
                "fp_dp_scalar": 1.0,
                "fp_dp_sse": 2.0,
                "fp_dp_avx2": 4.0,
                "fp_sp_scalar": 1.0,
                "fp_sp_sse": 4.0,
                "fp_sp_avx2": 8.0,
            },
            description="All retired SSE/AVX FLOPs (FMA counts 2 per lane)",
        ),
        EventDef("RETIRED_SSE_AVX_FLOPS:ADD_SUB_FLOPS", {"fp_dp_scalar": 0.4, "fp_dp_avx2": 1.6},
                 description="Retired add/sub FLOPs (approximate split)"),
        EventDef("RETIRED_SSE_AVX_FLOPS:MULT_FLOPS", {"fp_dp_scalar": 0.4, "fp_dp_avx2": 1.6},
                 description="Retired multiply FLOPs (approximate split)"),
        EventDef("LS_DISPATCH:LD_DISPATCH", {"loads": 1.0},
                 description="Load operations dispatched"),
        EventDef("LS_DISPATCH:STORE_DISPATCH", {"stores": 1.0},
                 description="Store operations dispatched"),
        EventDef("MEM_UOPS:LOADS", {"loads": 1.0},
                 description="Load uops (alias used by the paper's Fig 4 setup)"),
        EventDef("MEM_UOPS:STORES", {"stores": 1.0},
                 description="Store uops (alias used by the paper's Fig 4 setup)"),
        EventDef("L1_DATA_CACHE_REFILLS:ALL", {"l1d_miss": 1.0},
                 description="L1D refills from L2 or beyond"),
        EventDef("L2_CACHE_MISS_FROM_DC_MISS", {"l2_miss": 1.0},
                 description="L2 misses from demand data"),
        # Table I: AMD expresses L3 hits via LONGEST_LAT_CACHE events.
        EventDef("LONGEST_LAT_CACHE:MISS", {"l3_miss": 1.0},
                 description="LLC (CCX L3) misses"),
        EventDef("LONGEST_LAT_CACHE:RETIRED", {"l3_hit": 1.0},
                 description="LLC accesses that hit (retired)"),
        EventDef("RAPL_ENERGY_PKG", {"energy_pkg": 1.0}, scope="socket",
                 description="Package energy (J)"),
        EventDef("RAPL_ENERGY_DRAM", {"energy_dram": 1.0}, scope="socket",
                 description="DRAM energy (J)"),
    ]


CATALOGS: dict[str, EventCatalog] = {
    "skylakex": EventCatalog("skylakex", "GenuineIntel", _intel_events()),
    "cascadelake": EventCatalog("cascadelake", "GenuineIntel", _intel_events()),
    "icelake": EventCatalog("icelake", "GenuineIntel", _intel_events()),
    "zen3": EventCatalog("zen3", "AuthenticAMD", _zen3_events()),
}


def catalog_for(uarch: str) -> EventCatalog:
    """Catalog for a microarchitecture key (see ``PMUSpec.uarch``)."""
    try:
        return CATALOGS[uarch]
    except KeyError:
        raise UnknownEventError(
            f"no PMU catalog for microarchitecture {uarch!r}; "
            f"known: {sorted(CATALOGS)}"
        ) from None
