"""Measurement noise for PMU reads.

Real hardware counters are not exact: Weaver et al. [28] document both a
systematic overcount (interrupt/syscall boundary effects) and run-to-run
jitter; multiplexed events add extrapolation error on top.  Fig 4 of the
paper exists to show these errors stay small enough for coherent performance
models — so this reproduction needs the same error structure.

Noise is deterministic per read: the RNG is derived from the read's identity
(machine seed, cpu, event, window), so re-reading the same window yields the
same measured value, and experiment outcomes are reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from repro.machine.spec import PMUSpec

__all__ = ["NoiseModel"]


class NoiseModel:
    """Applies overcount + jitter + multiplexing error to true counts."""

    def __init__(self, pmu: PMUSpec, machine_seed: int = 0) -> None:
        self.pmu = pmu
        self.machine_seed = machine_seed

    def _rng(self, cpu: int, event: str, t0: float, t1: float) -> np.random.Generator:
        ident = f"{self.machine_seed}:{cpu}:{event}:{t0:.9f}:{t1:.9f}".encode()
        digest = hashlib.blake2b(ident, digest_size=8).digest()
        (seed,) = struct.unpack("<Q", digest)
        return np.random.default_rng(seed)

    def measure(
        self,
        true_value: float,
        cpu: int,
        event: str,
        t0: float,
        t1: float,
        mux_groups: int = 1,
    ) -> float:
        """Measured counter value for a true accumulation over [t0, t1).

        ``mux_groups`` > 1 means the event shared its counter slot with
        other event groups and was extrapolated from a 1/mux_groups time
        slice (linear scaling, as Linux perf does), adding relative error
        that grows with the number of groups.
        """
        if true_value < 0:
            raise ValueError("counter accumulation cannot be negative")
        if mux_groups < 1:
            raise ValueError("mux_groups must be >= 1")
        if true_value == 0.0:
            return 0.0
        rng = self._rng(cpu, event, t0, t1)
        over = self.pmu.overcount_ppm * 1e-6
        jitter = rng.normal(0.0, self.pmu.jitter_ppm * 1e-6)
        rel = over + jitter
        if mux_groups > 1:
            # Extrapolation error ~0.8 % per extra group (empirically what
            # perf-style time-slicing costs on steady workloads).
            rel += rng.normal(0.0, 0.008 * (mux_groups - 1))
        measured = true_value * (1.0 + rel)
        return max(0.0, measured)
