"""Simulated NVIDIA GPU devices (§III-D).

A :class:`SimulatedGpu` owns a :class:`~repro.machine.spec.GpuSpec` and a
tiny roofline envelope (peak FP32 throughput from SM count/clock, DRAM
bandwidth), executes :class:`GpuKernelDescriptor` launches on the shared
virtual clock, and keeps a launch history that the NVML sampler and the
``ncu`` wrapper read from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import GpuSpec
from repro.machine.tsc import VirtualClock

__all__ = ["GpuKernelDescriptor", "GpuKernelLaunch", "SimulatedGpu"]


@dataclass(frozen=True)
class GpuKernelDescriptor:
    """Operation counts of one GPU kernel launch."""

    name: str
    flops_sp: float = 0.0
    flops_dp: float = 0.0
    dram_bytes: float = 0.0
    l2_bytes: float = 0.0
    shared_bytes: float = 0.0
    occupancy: float = 0.8  # achieved / theoretical warps
    grid_size: int = 1024
    block_size: int = 256

    def __post_init__(self) -> None:
        if not 0.0 < self.occupancy <= 1.0:
            raise ValueError("occupancy must be in (0, 1]")
        if min(self.flops_sp, self.flops_dp, self.dram_bytes, self.l2_bytes) < 0:
            raise ValueError("negative operation counts")


@dataclass
class GpuKernelLaunch:
    """One completed launch: timing plus derived throughput metrics."""

    descriptor: GpuKernelDescriptor
    t_start: float
    t_end: float
    metrics: dict[str, float]

    @property
    def runtime_s(self) -> float:
        return self.t_end - self.t_start


class SimulatedGpu:
    """One GPU: envelope + launch history on a shared virtual clock."""

    #: FP32 ops per SM per clock (2 per FMA on 64 CUDA cores).
    _FLOPS_PER_SM_CLK_SP = 128.0

    def __init__(self, spec: GpuSpec, clock: VirtualClock) -> None:
        self.spec = spec
        self.clock = clock
        self.launches: list[GpuKernelLaunch] = []
        self.mem_used_mb_base = 420.0  # driver/context overhead

    # ------------------------------------------------------------------
    @property
    def peak_gflops_sp(self) -> float:
        return (
            self.spec.n_sms
            * self._FLOPS_PER_SM_CLK_SP
            * self.spec.base_clock_mhz
            / 1e3
        )

    @property
    def peak_gflops_dp(self) -> float:
        return self.peak_gflops_sp / 2.0  # GV100-class 1:2 DP ratio

    @property
    def dram_bw_gbs(self) -> float:
        return 870.0  # HBM2-class

    @property
    def l2_bw_gbs(self) -> float:
        return 2500.0

    # ------------------------------------------------------------------
    def launch(self, desc: GpuKernelDescriptor) -> GpuKernelLaunch:
        """Execute a kernel: roofline timing, ncu-style metric synthesis."""
        t_sp = desc.flops_sp / (self.peak_gflops_sp * 1e9 * desc.occupancy)
        t_dp = desc.flops_dp / (self.peak_gflops_dp * 1e9 * desc.occupancy)
        t_dram = desc.dram_bytes / (self.dram_bw_gbs * 1e9)
        t_l2 = desc.l2_bytes / (self.l2_bw_gbs * 1e9)
        runtime = max(t_sp + t_dp, t_dram, t_l2, 1e-6)

        sm_pct = 100.0 * (t_sp + t_dp) / runtime * desc.occupancy
        mem_pct = 100.0 * max(t_dram, t_l2) / runtime
        metrics = {
            "gpu__time_duration.sum": runtime * 1e3,  # ms
            "sm__throughput.avg.pct_of_peak_sustained_elapsed": min(100.0, sm_pct),
            "gpu__compute_memory_access_throughput.avg.pct_of_peak_sustained_elapsed": min(
                100.0, mem_pct
            ),
            "dram__bytes.sum": desc.dram_bytes,
            "lts__t_bytes.sum": desc.l2_bytes,
            "smsp__sass_thread_inst_executed_op_fadd_pred_on.sum": desc.flops_sp / 2,
            "smsp__sass_thread_inst_executed_op_dfma_pred_on.sum": desc.flops_dp / 2,
            "sm__warps_active.avg.pct_of_peak_sustained_active": desc.occupancy * 100.0,
            "launch__grid_size": float(desc.grid_size),
            "launch__block_size": float(desc.block_size),
        }
        t0 = self.clock.now()
        t1 = self.clock.advance(runtime)
        launch = GpuKernelLaunch(descriptor=desc, t_start=t0, t_end=t1, metrics=metrics)
        self.launches.append(launch)
        return launch

    # ------------------------------------------------------------------
    def utilization(self, t: float) -> float:
        """GPU busy fraction at time ``t`` (1.0 during a launch)."""
        return 1.0 if any(l.t_start <= t < l.t_end for l in self.launches) else 0.0

    def mem_used_mb(self, t: float) -> float:
        active = [l for l in self.launches if l.t_start <= t < l.t_end]
        # Working set approximated by DRAM traffic capped at device memory.
        extra = sum(
            min(l.descriptor.dram_bytes / 1e6, self.spec.memory_mb * 0.5)
            for l in active
        )
        return min(self.spec.memory_mb, self.mem_used_mb_base + extra)

    def power_watts(self, t: float) -> float:
        return 35.0 + 215.0 * self.utilization(t)
