"""``nvidia-smi`` / DeviceQuery / NVML substitutes (§III-D).

The paper probes NVIDIA GPUs with ``nvidia-smi`` (models, bus, processes),
``/sys/class/drm`` (NUMA placement) and ``DeviceQuery`` (SMs, shared memory,
caches), then samples *SWTelemetry* with ``pcp-pmda-nvidia`` — "essentially
capturing every metric supported by NVML".  Renderers emit the tool formats
from specs; parsers recover structured facts; :class:`NvmlSampler` exposes
the NVML metric set over a :class:`~repro.gpu.device.SimulatedGpu`.
"""

from __future__ import annotations

import re
from typing import Any

from repro.machine.spec import GpuSpec, MachineSpec

from .device import SimulatedGpu

__all__ = [
    "render_nvidia_smi",
    "parse_nvidia_smi",
    "render_device_query",
    "parse_device_query",
    "render_drm_numa",
    "parse_drm_numa",
    "NVML_METRICS",
    "NvmlSampler",
]


def render_nvidia_smi(spec: MachineSpec) -> str:
    """``nvidia-smi --query-gpu=index,name,memory.total,pci.bus_id
    --format=csv`` output."""
    lines = ["index, name, memory.total [MiB], pci.bus_id"]
    for g in spec.gpus:
        lines.append(f"{g.index}, {g.model}, {g.memory_mb} MiB, {g.bus_id}")
    return "\n".join(lines) + "\n"


def parse_nvidia_smi(text: str) -> list[dict[str, Any]]:
    """Parse the CSV query output into per-GPU dicts."""
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines or not lines[0].startswith("index"):
        raise ValueError("not nvidia-smi CSV query output")
    gpus = []
    for line in lines[1:]:
        parts = [p.strip() for p in line.split(",")]
        if len(parts) != 4:
            raise ValueError(f"malformed nvidia-smi row: {line!r}")
        mem = int(parts[2].split()[0])
        gpus.append(
            {"index": int(parts[0]), "model": parts[1], "memory_mb": mem, "bus_id": parts[3]}
        )
    return gpus


def render_device_query(gpu: GpuSpec) -> str:
    """CUDA ``deviceQuery``-style report for one GPU."""
    return (
        f'Device {gpu.index}: "{gpu.model}"\n'
        f"  CUDA Capability Major/Minor version number:    {gpu.compute_capability}\n"
        f"  Total amount of global memory:                 {gpu.memory_mb} MBytes\n"
        f"  ({gpu.n_sms}) Multiprocessors\n"
        f"  GPU Max Clock rate:                            {gpu.base_clock_mhz} MHz\n"
        f"  L2 Cache Size:                                 {gpu.l2_cache_kb * 1024} bytes\n"
        f"  Total amount of shared memory per block:       {gpu.shared_mem_per_block_kb * 1024} bytes\n"
    )


def parse_device_query(text: str) -> dict[str, Any]:
    """Parse deviceQuery text into the HW-spec facts the KB needs."""
    out: dict[str, Any] = {}
    if m := re.search(r'Device (\d+): "(.+)"', text):
        out["index"] = int(m.group(1))
        out["model"] = m.group(2)
    if m := re.search(r"Capability Major/Minor version number:\s*([\d.]+)", text):
        out["compute_capability"] = m.group(1)
    if m := re.search(r"global memory:\s*(\d+) MBytes", text):
        out["memory_mb"] = int(m.group(1))
    if m := re.search(r"\((\d+)\) Multiprocessors", text):
        out["n_sms"] = int(m.group(1))
    if m := re.search(r"L2 Cache Size:\s*(\d+) bytes", text):
        out["l2_cache_kb"] = int(m.group(1)) // 1024
    if m := re.search(r"shared memory per block:\s*(\d+) bytes", text):
        out["shared_mem_per_block_kb"] = int(m.group(1)) // 1024
    if "model" not in out:
        raise ValueError("deviceQuery output has no Device header")
    return out


def render_drm_numa(spec: MachineSpec) -> dict[str, str]:
    """``/sys/class/drm/cardN/device/numa_node`` file map."""
    return {
        f"/sys/class/drm/card{g.index}/device/numa_node": str(g.numa_node)
        for g in spec.gpus
    }


def parse_drm_numa(files: dict[str, str]) -> dict[int, int]:
    """card index -> numa node."""
    out: dict[int, int] = {}
    for path, content in files.items():
        if m := re.match(r"/sys/class/drm/card(\d+)/device/numa_node", path):
            out[int(m.group(1))] = int(content.strip())
    return out


#: NVML metric set exposed by pcp-pmda-nvidia (SWTelemetry, §III-D).
NVML_METRICS = {
    "nvidia.gpuactive": ("percent", "GPU utilization"),
    "nvidia.memactive": ("percent", "Memory utilization"),
    "nvidia.memused": ("MB", "Device memory in use"),
    "nvidia.memtotal": ("MB", "Device memory total"),
    "nvidia.power": ("watts", "Board power draw"),
    "nvidia.temp": ("celsius", "Core temperature"),
    "nvidia.fanspeed": ("percent", "Fan speed"),
}


class NvmlSampler:
    """NVML metric reads over a simulated GPU (what pcp-pmda-nvidia does)."""

    def __init__(self, gpu: SimulatedGpu) -> None:
        self.gpu = gpu

    def metrics(self) -> list[str]:
        return sorted(NVML_METRICS)

    def value(self, metric: str, t: float) -> float:
        g = self.gpu
        if metric == "nvidia.gpuactive":
            return g.utilization(t) * 100.0
        if metric == "nvidia.memactive":
            return g.utilization(t) * 65.0
        if metric == "nvidia.memused":
            return g.mem_used_mb(t)
        if metric == "nvidia.memtotal":
            return float(g.spec.memory_mb)
        if metric == "nvidia.power":
            return g.power_watts(t)
        if metric == "nvidia.temp":
            return 34.0 + 42.0 * g.utilization(t)
        if metric == "nvidia.fanspeed":
            return 25.0 + 45.0 * g.utilization(t)
        raise KeyError(f"unknown NVML metric {metric!r}")
