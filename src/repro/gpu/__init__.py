"""NVIDIA GPU path of §III-D: simulated devices, nvidia-smi/DeviceQuery/NVML
substitutes, and the ncu profiling wrapper."""

from .device import GpuKernelDescriptor, GpuKernelLaunch, SimulatedGpu
from .ncu import build_wrapper_script, parse_ncu_report, render_ncu_report, run_ncu
from .nvml import (
    NVML_METRICS,
    NvmlSampler,
    parse_device_query,
    parse_drm_numa,
    parse_nvidia_smi,
    render_device_query,
    render_drm_numa,
    render_nvidia_smi,
)

__all__ = [
    "NVML_METRICS",
    "GpuKernelDescriptor",
    "GpuKernelLaunch",
    "NvmlSampler",
    "SimulatedGpu",
    "build_wrapper_script",
    "parse_device_query",
    "parse_drm_numa",
    "parse_ncu_report",
    "parse_nvidia_smi",
    "render_device_query",
    "render_drm_numa",
    "render_ncu_report",
    "render_nvidia_smi",
    "run_ncu",
]
