"""Node-lifecycle faults: whole machines going away, in virtual time.

:mod:`repro.machine.faults` degrades a node's *performance* and
:mod:`repro.faults.services` breaks the *host-side services*; this module
covers the remaining failure domain of §VI's cluster design — the node
itself.  Production fleets (DCDB's independently-degrading collector units,
the MIT twin's node churn) treat node loss as the normal case, so the
simulated cluster needs the same vocabulary:

- :class:`NodeCrash` — the node is down for the whole window; a job using
  it fails at the instant the window opens;
- :class:`NodeHang` — the node is alive but unresponsive-slow (a straggler
  stuck in swap, a dying fan throttling everything); it paces every
  bulk-synchronous step it participates in;
- :class:`NodeFlap` — the node bounces with a deterministic duty cycle
  (a flaky PSU, an unstable link), the pathology quarantine exists for.

All windows are ``[t0, t1)`` virtual time, like every other fault set in
the substrate, and all state queries are pure functions of ``t`` so chaos
schedules replay bit-for-bit.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["NodeFault", "NodeCrash", "NodeHang", "NodeFlap", "NodeFaultSet",
           "NodeFailure"]


class NodeFailure(RuntimeError):
    """A job execution was killed by a node going down."""

    def __init__(self, node: str, t: float) -> None:
        super().__init__(f"node {node!r} went down at t={t:.6f}s")
        self.node = node
        self.t = t


@dataclass(frozen=True)
class NodeFault:
    """Base node fault: a lifecycle disruption active on [t0, t1)."""

    t0: float
    t1: float

    def __post_init__(self) -> None:
        if self.t1 <= self.t0:
            raise ValueError("fault window must have positive length")

    def active(self, t: float) -> bool:
        return self.t0 <= t < self.t1

    # ------------------------------------------------------------------
    def down_at(self, t: float) -> bool:
        """Whether this fault has the node down at ``t``."""
        return False

    def next_down(self, t: float) -> float | None:
        """Earliest instant >= ``t`` this fault takes the node down."""
        return None

    def next_up(self, t: float) -> float:
        """Earliest instant >= ``t`` this fault has the node up again."""
        return t

    def hang_factor(self, t: float) -> float:
        """Pacing multiplier (>= 1) on bulk-synchronous compute at ``t``."""
        return 1.0

    def down_intervals(self, t0: float, t1: float) -> list[tuple[float, float]]:
        """Down sub-intervals of this fault clipped to ``[t0, t1)``."""
        return []


@dataclass(frozen=True)
class NodeCrash(NodeFault):
    """The node is hard-down on the whole window (kernel panic, power
    loss); ``t1=inf`` models a node that never comes back."""

    def down_at(self, t: float) -> bool:
        return self.active(t)

    def next_down(self, t: float) -> float | None:
        if t >= self.t1:
            return None
        return max(t, self.t0)

    def next_up(self, t: float) -> float:
        return self.t1 if self.active(t) else t

    def down_intervals(self, t0: float, t1: float) -> list[tuple[float, float]]:
        lo, hi = max(t0, self.t0), min(t1, self.t1)
        return [(lo, hi)] if lo < hi else []


@dataclass(frozen=True)
class NodeHang(NodeFault):
    """The node stays up but crawls: every bulk-synchronous step it joins
    is paced by ``factor`` while the window is active (the straggler §I's
    load-imbalance pathology escalates into)."""

    factor: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor < 1.0:
            raise ValueError("hang factor must be >= 1")

    def hang_factor(self, t: float) -> float:
        return self.factor if self.active(t) else 1.0


@dataclass(frozen=True)
class NodeFlap(NodeFault):
    """The node bounces on a deterministic duty cycle inside the window:
    each ``period_s`` starts with ``down_fraction`` of downtime."""

    period_s: float = 2.0
    down_fraction: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period_s <= 0:
            raise ValueError("flap period must be positive")
        if not 0.0 < self.down_fraction < 1.0:
            raise ValueError("down_fraction must be in (0, 1)")

    def _down_len(self) -> float:
        return self.down_fraction * self.period_s

    def down_at(self, t: float) -> bool:
        if not self.active(t):
            return False
        return (t - self.t0) % self.period_s < self._down_len()

    def next_down(self, t: float) -> float | None:
        if t >= self.t1:
            return None
        t = max(t, self.t0)
        phase = (t - self.t0) % self.period_s
        if phase < self._down_len():
            cand = t
        else:
            cand = t + (self.period_s - phase)
        return cand if cand < self.t1 else None

    def next_up(self, t: float) -> float:
        if not self.down_at(t):
            return t
        phase = (t - self.t0) % self.period_s
        return min(t + (self._down_len() - phase), self.t1)

    def down_intervals(self, t0: float, t1: float) -> list[tuple[float, float]]:
        lo, hi = max(t0, self.t0), min(t1, self.t1)
        if lo >= hi:
            return []
        out = []
        k = math.floor((lo - self.t0) / self.period_s)
        while True:
            cycle = self.t0 + k * self.period_s
            if cycle >= hi:
                break
            a, b = max(lo, cycle), min(hi, cycle + self._down_len())
            if a < b:
                out.append((a, b))
            k += 1
        return out


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of half-open intervals."""
    if not intervals:
        return []
    intervals.sort()
    out = [intervals[0]]
    for a, b in intervals[1:]:
        if a <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], b))
        else:
            out.append((a, b))
    return out


@dataclass
class NodeFaultSet:
    """The cluster's installed node faults, keyed by node name."""

    by_node: dict[str, list[NodeFault]] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return any(self.by_node.values())

    def inject(
        self, node: str, fault: NodeFault, *, allow_overlap: bool = False
    ) -> NodeFault:
        """Install one fault on ``node``.

        Two same-kind faults whose windows overlap on one node are almost
        always a schedule bug (the writer meant back-to-back windows, or
        injected twice) — silently merging them hides it, so injection
        rejects the overlap loudly.  Pass ``allow_overlap=True`` for the
        deliberate cases (compounding hang factors, chaos soak layering).
        Zero-length windows are already rejected by the fault constructor.
        """
        if fault.t1 <= fault.t0:  # defensive: constructors enforce this
            raise ValueError(f"zero-length fault window on {node}: {fault}")
        if not allow_overlap:
            for f in self.by_node.get(node, []):
                if type(f) is type(fault) and f.t0 < fault.t1 and fault.t0 < f.t1:
                    raise ValueError(
                        f"overlapping {type(fault).__name__} windows on "
                        f"{node}: [{f.t0}, {f.t1}) vs [{fault.t0}, {fault.t1}) "
                        "— pass allow_overlap=True if layering is intended"
                    )
        self.by_node.setdefault(node, []).append(fault)
        return fault

    def remove(self, node: str, fault: NodeFault) -> bool:
        """Remove one installed fault; returns whether it was present."""
        try:
            self.by_node.get(node, []).remove(fault)
            return True
        except ValueError:
            return False

    @contextmanager
    def scoped(self, node: str, fault: NodeFault) -> Iterator[NodeFault]:
        """Inject on enter, remove on exit — chaos tests leak no state."""
        self.inject(node, fault)
        try:
            yield fault
        finally:
            self.remove(node, fault)

    def clear(self) -> None:
        self.by_node.clear()

    def faults_for(self, node: str) -> list[NodeFault]:
        return list(self.by_node.get(node, []))

    # ------------------------------------------------------------------
    def is_down(self, node: str, t: float) -> bool:
        return any(f.down_at(t) for f in self.by_node.get(node, []))

    def hang_factor(self, node: str, t: float) -> float:
        factor = 1.0
        for f in self.by_node.get(node, []):
            factor *= f.hang_factor(t)
        return factor

    def next_down(self, node: str, t: float) -> float | None:
        """Earliest instant >= ``t`` the node goes (or already is) down."""
        cands = [c for f in self.by_node.get(node, [])
                 if (c := f.next_down(t)) is not None]
        return min(cands) if cands else None

    def next_up(self, node: str, t: float) -> float:
        """Earliest instant >= ``t`` with the node up (fixpoint over all
        faults, since windows may chain back-to-back)."""
        faults = self.by_node.get(node, [])
        while True:
            t2 = t
            for f in faults:
                t2 = max(t2, f.next_up(t2))
            if t2 == t:
                return t
            t = t2

    def down_intervals(self, node: str, t0: float, t1: float) -> list[tuple[float, float]]:
        """Merged downtime intervals of one node clipped to [t0, t1)."""
        raw: list[tuple[float, float]] = []
        for f in self.by_node.get(node, []):
            raw.extend(f.down_intervals(t0, t1))
        return _merge(raw)

    def down_seconds(self, node: str, t0: float, t1: float) -> float:
        """Total downtime of one node on [t0, t1) — what utilization
        accounting excludes from the denominator."""
        return sum(b - a for a, b in self.down_intervals(node, t0, t1))

    def first_failure(
        self, nodes: list[str], t0: float, t1: float
    ) -> tuple[str, float] | None:
        """The earliest (node, instant) in ``[t0, t1)`` at which any of
        ``nodes`` is down — the crash that kills a job on that window."""
        best: tuple[str, float] | None = None
        for n in nodes:
            c = self.next_down(n, t0)
            if c is not None and c < t1 and (best is None or c < best[1]):
                best = (n, c)
        return best
