"""Commit-log-level fault injection in virtual time.

The durable ingest path (:mod:`repro.pcp.commitlog`) has two failure
domains of its own, below the service faults that break the DB endpoint
and beside the node faults that kill whole machines:

- :class:`LogTruncation` — the log process dies and restarts at an
  instant, losing whatever had been appended but **not yet flushed**.
  Flushed segments are durable by contract, so the blast radius is
  exactly the producer's unacked tail — which the producer retains and
  resends (same sequence numbers), making truncation loss-free end to
  end.
- :class:`ConsumerCrash` — one member of a consumer group dies over a
  window ``[t0, t1)``: it stops polling, its partitions rebalance to the
  surviving members, and (if ``t1`` is finite) it rejoins at ``t1``,
  triggering a second rebalance.  Flap = several short windows for the
  same consumer.

Both are declarative schedule entries consulted by the pipeline's
virtual clock, so chaos runs replay bit-for-bit under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LogTruncation", "ConsumerCrash", "LogFaultSet"]


@dataclass(frozen=True)
class LogTruncation:
    """Instant log crash-restart at ``at``: the unflushed tail is lost."""

    at: float
    #: Restrict the loss to one topic; None truncates every partition.
    topic: str | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("truncation time must be >= 0")


@dataclass(frozen=True)
class ConsumerCrash:
    """One consumer of ``group`` is dead over ``[t0, t1)``."""

    group: str
    consumer: str
    t0: float
    t1: float = field(default=np.inf)

    def __post_init__(self) -> None:
        if self.t1 <= self.t0:
            raise ValueError("crash window must have t1 > t0")

    def covers(self, t: float) -> bool:
        return self.t0 <= t < self.t1


class LogFaultSet:
    """Schedule of commit-log faults, consulted by the ingest pipeline."""

    def __init__(self) -> None:
        self.truncations: list[LogTruncation] = []
        self.crashes: list[ConsumerCrash] = []

    def inject(
        self,
        fault: LogTruncation | ConsumerCrash,
        *,
        allow_overlap: bool = False,
    ):
        """Add one fault to the schedule, validating it loudly.

        A duplicate truncation (same instant, same topic scope) or two
        crash windows that overlap for the same consumer are schedule
        bugs — the merged behaviour is indistinguishable from a single
        window, so the writer's intent silently degrades.  Injection
        rejects both; ``allow_overlap=True`` opts a deliberate layering
        back in.  Zero-length crash windows are already rejected by the
        :class:`ConsumerCrash` constructor.
        """
        if isinstance(fault, LogTruncation):
            if not allow_overlap:
                for f in self.truncations:
                    if f.at == fault.at and f.topic == fault.topic:
                        raise ValueError(
                            f"duplicate truncation at t={fault.at} "
                            f"(topic={fault.topic!r})"
                        )
            self.truncations.append(fault)
            self.truncations.sort(key=lambda f: f.at)
        elif isinstance(fault, ConsumerCrash):
            if fault.t1 <= fault.t0:  # defensive: constructor enforces
                raise ValueError(f"zero-length crash window: {fault}")
            if not allow_overlap:
                for f in self.crashes:
                    if (
                        f.group == fault.group
                        and f.consumer == fault.consumer
                        and f.t0 < fault.t1
                        and fault.t0 < f.t1
                    ):
                        raise ValueError(
                            "overlapping crash windows for "
                            f"{fault.group}/{fault.consumer}: "
                            f"[{f.t0}, {f.t1}) vs [{fault.t0}, {fault.t1}) "
                            "— pass allow_overlap=True if layering is intended"
                        )
            self.crashes.append(fault)
            self.crashes.sort(key=lambda f: (f.t0, f.t1))
        else:
            raise TypeError(f"not a commit-log fault: {fault!r}")
        return fault

    def clear(self) -> None:
        self.truncations.clear()
        self.crashes.clear()

    @property
    def faults(self) -> list[LogTruncation | ConsumerCrash]:
        """Uniform listing surface, matching the service/node fault sets."""
        return [*self.truncations, *self.crashes]

    # ------------------------------------------------------------------
    def crashed(self, group: str, consumer: str, t: float) -> bool:
        """Is this consumer inside any of its crash windows at ``t``?"""
        return any(
            c.group == group and c.consumer == consumer and c.covers(t)
            for c in self.crashes
        )

    def next_up(self, group: str, consumer: str, t: float) -> float:
        """Earliest time ≥ ``t`` the consumer is outside every window.

        Fixpoint over the schedule, so adjacent/overlapping windows merge.
        """
        changed = True
        while changed:
            changed = False
            for c in self.crashes:
                if c.group == group and c.consumer == consumer and c.covers(t):
                    t = c.t1
                    changed = True
        return t
