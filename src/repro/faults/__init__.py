"""Service-level fault injection: host-side failures in virtual time.

Where :mod:`repro.machine.faults` degrades the *target* (throttling,
contention, stragglers), this package breaks the *host-side services* the
telemetry path depends on — the InfluxDB endpoint, the host link, the
insert path — so the resilient shipping layer has something real to
survive.
"""

from .services import (
    DbOutage,
    FlakyWrites,
    InsertLatencySpike,
    NetworkPartition,
    ServiceFault,
    ServiceFaultSet,
    ServiceUnavailable,
)

__all__ = [
    "DbOutage",
    "FlakyWrites",
    "InsertLatencySpike",
    "NetworkPartition",
    "ServiceFault",
    "ServiceFaultSet",
    "ServiceUnavailable",
]
