"""Service- and node-level fault injection in virtual time.

Where :mod:`repro.machine.faults` degrades the *target* (throttling,
contention, stragglers), this package breaks the *host-side services* the
telemetry path depends on — the InfluxDB endpoint, the host link, the
insert path — and, one level up, the cluster's *nodes themselves* (crash,
hang, flap), so the resilient shipping layer and the failure-aware
scheduler both have something real to survive.
"""

from .log import ConsumerCrash, LogFaultSet, LogTruncation
from .nodes import (
    NodeCrash,
    NodeFailure,
    NodeFault,
    NodeFaultSet,
    NodeFlap,
    NodeHang,
)
from .services import (
    DbOutage,
    FlakyWrites,
    InsertLatencySpike,
    NetworkPartition,
    ServiceFault,
    ServiceFaultSet,
    ServiceUnavailable,
)

__all__ = [
    "ConsumerCrash",
    "DbOutage",
    "FlakyWrites",
    "InsertLatencySpike",
    "LogFaultSet",
    "LogTruncation",
    "NetworkPartition",
    "NodeCrash",
    "NodeFailure",
    "NodeFault",
    "NodeFaultSet",
    "NodeFlap",
    "NodeHang",
    "ServiceFault",
    "ServiceFaultSet",
    "ServiceUnavailable",
]
