"""Host-side service faults on time windows, consulted in virtual time.

§V-A's loss study treats the DB insert as an always-up (if slow) sink; any
production deployment of the pipeline also has to survive the sink going
*away* — an InfluxDB restart, a partitioned host link, a compaction-stalled
insert path, a flaky proxy.  Each fault here is active on ``[t0, t1)`` and
affects the write path in one specific way:

- :class:`DbOutage` — every insert during the window fails;
- :class:`NetworkPartition` — the host is unreachable (fails before the DB);
- :class:`InsertLatencySpike` — inserts succeed but take ``factor``× longer;
- :class:`FlakyWrites` — each insert fails with probability ``p_fail``.

Failure draws are hashed from ``(seed, attempt time)`` so a chaos run is
bit-for-bit reproducible regardless of how many times or in what order the
fault set is consulted.
"""

from __future__ import annotations

import hashlib
import struct
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "ServiceFault",
    "DbOutage",
    "NetworkPartition",
    "InsertLatencySpike",
    "FlakyWrites",
    "ServiceFaultSet",
    "ServiceUnavailable",
]


class ServiceUnavailable(RuntimeError):
    """A write was rejected by an active service fault."""

    def __init__(self, reason: str, t: float) -> None:
        super().__init__(f"service unavailable at t={t:.6f}s ({reason})")
        self.reason = reason
        self.t = t


@dataclass(frozen=True)
class ServiceFault:
    """Base service fault: a named disruption active on [t0, t1)."""

    t0: float
    t1: float

    def __post_init__(self) -> None:
        if self.t1 <= self.t0:
            raise ValueError("fault window must have positive length")

    def active(self, t: float) -> bool:
        return self.t0 <= t < self.t1

    #: Short reason tag used in errors and stats; None = does not fail writes.
    reason: str | None = None

    def fails_write(self, t: float) -> bool:
        """Whether a write attempted at ``t`` fails because of this fault."""
        return False

    def latency_factor(self, t: float) -> float:
        """Multiplier on insert service time for an attempt at ``t``."""
        return 1.0


@dataclass(frozen=True)
class DbOutage(ServiceFault):
    """The DB endpoint is down: every insert in the window fails."""

    reason: str | None = "db-outage"

    def fails_write(self, t: float) -> bool:
        return self.active(t)


@dataclass(frozen=True)
class NetworkPartition(ServiceFault):
    """Host link severed: reports never reach the DB during the window."""

    reason: str | None = "network-partition"

    def fails_write(self, t: float) -> bool:
        return self.active(t)


@dataclass(frozen=True)
class InsertLatencySpike(ServiceFault):
    """Inserts succeed but take ``factor``× their nominal service time
    (compaction stall, noisy neighbour on the DB host)."""

    factor: float = 5.0
    reason: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor < 1.0:
            raise ValueError("latency factor must be >= 1")

    def latency_factor(self, t: float) -> float:
        return self.factor if self.active(t) else 1.0


@dataclass(frozen=True)
class FlakyWrites(ServiceFault):
    """Each insert in the window fails independently with ``p_fail``.

    The draw is a hash of ``(seed, attempt time)``, not a stateful RNG, so
    outcomes are reproducible and order-independent.
    """

    p_fail: float = 0.5
    seed: int = 0
    reason: str | None = "flaky-write"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.p_fail <= 1.0:
            raise ValueError("p_fail must be in [0, 1]")

    def _draw(self, t: float) -> float:
        h = hashlib.blake2b(struct.pack("<qd", self.seed, t), digest_size=8)
        return int.from_bytes(h.digest(), "little") / 2.0**64

    def fails_write(self, t: float) -> bool:
        return self.active(t) and self._draw(t) < self.p_fail


@dataclass
class ServiceFaultSet:
    """The installed host-side faults, consulted at attempt time."""

    faults: list[ServiceFault] = field(default_factory=list)

    def inject(self, fault: ServiceFault) -> ServiceFault:
        self.faults.append(fault)
        return fault

    def remove(self, fault: ServiceFault) -> bool:
        """Remove one installed fault; returns whether it was present."""
        try:
            self.faults.remove(fault)
            return True
        except ValueError:
            return False

    @contextmanager
    def scoped(self, fault: ServiceFault) -> Iterator[ServiceFault]:
        """Inject on enter, remove on exit — chaos tests leak no state."""
        self.inject(fault)
        try:
            yield fault
        finally:
            self.remove(fault)

    def clear(self) -> None:
        self.faults.clear()

    def active_at(self, t: float) -> list[ServiceFault]:
        return [f for f in self.faults if f.active(t)]

    # ------------------------------------------------------------------
    def write_error(self, t: float) -> str | None:
        """Reason string if a write attempted at ``t`` fails, else None."""
        for f in self.faults:
            if f.fails_write(t):
                return f.reason or type(f).__name__
        return None

    def latency_factor(self, t: float) -> float:
        """Composed insert-service-time multiplier at ``t``."""
        factor = 1.0
        for f in self.faults:
            factor *= f.latency_factor(t)
        return factor
