"""Visualization substrate: the Listing-1 dashboard JSON model, automatic
dashboard generation from KB views (Fig 2), a Grafana-like server, and
text/SVG renderers."""

from .continuous import ContinuousQuery, ContinuousQueryRegistrar
from .dashboard import Dashboard, DashboardError, Panel, Target
from .generator import generate_dashboard
from .grafana import GrafanaServer
from .render import render_series_svg, render_series_text, sparkline
from .svg import PALETTE, SvgCanvas

__all__ = [
    "PALETTE",
    "ContinuousQuery",
    "ContinuousQueryRegistrar",
    "Dashboard",
    "DashboardError",
    "GrafanaServer",
    "Panel",
    "SvgCanvas",
    "Target",
    "generate_dashboard",
    "render_series_svg",
    "render_series_text",
    "sparkline",
]
