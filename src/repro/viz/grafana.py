"""The Grafana server substitute.

"With a plugin, Grafana processes the file and handles the connections to
the streaming database that stores the performance data coming from P-MoVE
telemetry agents and displays them" (§III-B).  :class:`GrafanaServer` keeps
a registry of dashboards (by uid), resolves each panel target against the
Influx substrate (the plugin role), and renders panels to text or SVG.

Panel execution carries a write-invalidated result cache: each target's
(database, statement) result is stored with the measurement's generation
stamp (:meth:`~repro.db.influx.InfluxDB.generation`), read *before* the
query runs.  An unchanged panel refresh — the dominant dashboard workload,
since auto-generated statements are re-issued verbatim — is a dict hit;
any write, series drop, or retention trim on the measurement moves the
generation and the next refresh recomputes.  Staleness is impossible by
construction: a stamp taken before execution can only under-report
freshness, never over-report it.
"""

from __future__ import annotations

import re
from collections import OrderedDict

from repro.db.influx import InfluxDB
from repro.db.influxql import execute

from .dashboard import Dashboard, DashboardError, Panel, Target
from .render import Series, render_series_svg, render_series_text

__all__ = ["GrafanaServer", "quote_tag_value"]

_AND_SPLIT = re.compile(r"\s+AND\s+", re.IGNORECASE)


def quote_tag_value(value: str) -> str:
    """Quote a tag value for a WHERE clause, or refuse.

    The InfluxQL grammar here has no escape sequences: a double-quoted
    value may not contain ``"`` and a single-quoted one may not contain
    ``'``.  A value containing ``"`` is emitted single-quoted; one
    containing both quote kinds, or anything the parser's ``AND``
    splitter would cut in half, cannot be represented and is rejected
    outright — a malformed (or worse, silently truncated) statement is
    never produced.
    """
    if '"' in value and "'" in value:
        raise DashboardError(
            f"tag value {value!r} mixes single and double quotes; "
            "InfluxQL here cannot escape either"
        )
    if _AND_SPLIT.search(value):
        raise DashboardError(
            f"tag value {value!r} contains an AND separator; "
            "it would split the WHERE clause"
        )
    quote = "'" if '"' in value else '"'
    return f"{quote}{value}{quote}"


class GrafanaServer:
    """Dashboard registry + panel execution against InfluxDB."""

    def __init__(
        self,
        influx: InfluxDB,
        database: str = "pmove",
        api_token: str = "",
        cache_size: int = 512,
    ) -> None:
        self.influx = influx
        self.database = database
        self.api_token = api_token
        self._dashboards: dict[str, Dashboard] = {}
        #: (database, statement) → (generation, times, values); LRU-bounded.
        #: This is the *default* partition — the single-caller path every
        #: PR before the serving tier used, byte-identical.
        self._cache: OrderedDict[
            tuple[str, str], tuple[int, list[float], list[float]]
        ] = OrderedDict()
        #: tenant → its private partition of the same generation-stamped
        #: cache.  Partitions are evicted independently: an aggressor
        #: tenant churning its own partition cannot evict a quiet
        #: tenant's working set (or the default partition's).
        self._tenant_caches: dict[
            str, OrderedDict[tuple[str, str], tuple[int, list[float], list[float]]]
        ] = {}
        self._tenant_cache_sizes: dict[str, int] = {}
        self.cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0
        #: Renders served from a degraded (shard-down) engine state.
        self.partial_serves = 0

    # ------------------------------------------------------------------
    def register(self, dashboard: Dashboard) -> str:
        """Install (or replace) a dashboard; returns its uid."""
        uid = dashboard.uid or f"dash{dashboard.id}"
        dashboard.uid = uid
        self._dashboards[uid] = dashboard
        return uid

    def register_json(self, text: str) -> str:
        """Install a dashboard from its shared JSON file (Listing 1)."""
        return self.register(Dashboard.loads(text))

    def dashboards(self) -> list[str]:
        return sorted(self._dashboards)

    def get(self, uid: str) -> Dashboard:
        try:
            return self._dashboards[uid]
        except KeyError:
            raise DashboardError(f"no dashboard {uid!r} registered") from None

    # ------------------------------------------------------------------
    @staticmethod
    def target_statement(
        target: Target,
        t0: float | None = None,
        t1: float | None = None,
        tag: str | None = None,
    ) -> str:
        """The InfluxQL statement one target resolves to (Listing 3 shape)."""
        where = []
        effective_tag = target.tag or tag
        if effective_tag is not None and effective_tag != "":
            where.append(f"tag={quote_tag_value(effective_tag)}")
        if t0 is not None:
            where.append(f"time >= {t0}")
        if t1 is not None:
            where.append(f"time <= {t1}")
        clause = (" WHERE " + " AND ".join(where)) if where else ""
        sel = f'"{target.params}"'
        if target.agg:
            if target.agg_arg is not None:
                sel = f'{target.agg}({sel}, {target.agg_arg:g})'
            else:
                sel = f'{target.agg}({sel})'
        if target.group_by_s:
            clause += f" GROUP BY time({target.group_by_s}s)"
        return f'SELECT {sel} FROM "{target.measurement}"{clause}'

    # ------------------------------------------------------------------
    # Tenant cache partitions
    # ------------------------------------------------------------------
    def set_tenant_cache_size(self, tenant: str, entries: int) -> None:
        """Create (or resize) ``tenant``'s private cache partition."""
        if entries < 1:
            raise ValueError("tenant cache needs at least one entry")
        self._tenant_cache_sizes[tenant] = entries
        partition = self._tenant_caches.setdefault(tenant, OrderedDict())
        while len(partition) > entries:
            partition.popitem(last=False)

    def tenant_cache_info(self, tenant: str) -> dict[str, int]:
        partition = self._tenant_caches.get(tenant, {})
        return {
            "entries": len(partition),
            "capacity": self._tenant_cache_sizes.get(tenant, self.cache_size),
        }

    def _partition_for(self, tenant: str | None) -> tuple[OrderedDict, int]:
        if tenant is None:
            return self._cache, self.cache_size
        partition = self._tenant_caches.setdefault(tenant, OrderedDict())
        return partition, self._tenant_cache_sizes.get(tenant, self.cache_size)

    def _target_series(
        self, target: Target, statement: str, tenant: str | None = None
    ) -> tuple[list[float], list[float], bool]:
        """One target's (times, values, served_from_cache).

        The generation stamp is read *before* executing, so a write racing
        the query can only make the cached entry look stale (recompute),
        never fresh (stale serve).  Engines without generation support
        (stamp ``None``) bypass the cache entirely.  ``tenant`` selects a
        private partition; ``None`` is the default (single-caller) one.
        """
        cache, capacity = self._partition_for(tenant)
        key = (self.database, statement)
        gen_of = getattr(self.influx, "generation", None)
        gen = gen_of(self.database, target.measurement) if callable(gen_of) else None
        hit = cache.get(key)
        if hit is not None and gen is not None and hit[0] == gen:
            cache.move_to_end(key)
            self.cache_hits += 1
            return list(hit[1]), list(hit[2]), True
        self.cache_misses += 1
        rs = execute(self.influx, self.database, statement)
        times, values = [], []
        for t, row in rs.rows:
            if row[0] is not None:
                times.append(t)
                values.append(row[0])
        # A sharded engine flags results computed while a shard holding
        # relevant data was down.  Those are served (degraded beats blank
        # panels) but never cached: the generation vector does not move
        # when a shard merely recovers, so a cached partial could outlive
        # the outage.
        if getattr(self.influx, "last_partial", False):
            self.partial_serves += 1
        elif gen is not None:
            cache[key] = (gen, list(times), list(values))
            cache.move_to_end(key)
            while len(cache) > capacity:
                cache.popitem(last=False)
        return times, values, False

    def invalidate_cache(self) -> None:
        """Drop every cached panel result, in every partition."""
        self._cache.clear()
        for partition in self._tenant_caches.values():
            partition.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/partial counters (results stats, not caches).

        Counters describe the *current* engine's serving history; leaving
        them running across an engine swap blends two engines' stats into
        one meaningless series."""
        self.cache_hits = 0
        self.cache_misses = 0
        self.partial_serves = 0

    def set_engine(self, influx: InfluxDB) -> None:
        """Swap the backing engine: drop cached results AND stats.

        The cache must go because generation stamps are per-engine (a
        fresh engine restarts its counters, so stale entries could look
        fresh); the stats must go because they described the old engine."""
        self.influx = influx
        self.invalidate_cache()
        self.reset_stats()

    def execute_target(
        self,
        target: Target,
        t0: float | None = None,
        t1: float | None = None,
        tag: str | None = None,
        tenant: str | None = None,
    ) -> tuple[list[float], list[float], bool]:
        """One target's (times, values, served_from_cache) — the serving
        frontend's per-target entry point (it needs the hit flag for its
        service-cost model)."""
        statement = self.target_statement(target, t0, t1, tag)
        return self._target_series(target, statement, tenant=tenant)

    def execute_panel(
        self,
        panel: Panel,
        t0: float | None = None,
        t1: float | None = None,
        tag: str | None = None,
        tenant: str | None = None,
    ) -> Series:
        """Run a panel's targets; returns label → (times, values)."""
        series: Series = {}
        for target in panel.targets:
            statement = self.target_statement(target, t0, t1, tag)
            times, values, _ = self._target_series(target, statement, tenant=tenant)
            label = target.alias or f"{target.measurement}{target.params}"[-40:]
            series[label] = (times, values)
        return series

    def render_panel_text(self, uid: str, panel_id: int, **kw) -> str:
        dash = self.get(uid)
        panel = dash.panel(panel_id)
        return render_series_text(panel.title, self.execute_panel(panel, **kw))

    def render_panel_svg(self, uid: str, panel_id: int, **kw) -> str:
        dash = self.get(uid)
        panel = dash.panel(panel_id)
        return render_series_svg(panel.title, self.execute_panel(panel, **kw))

    def render_dashboard_text(self, uid: str, **kw) -> str:
        dash = self.get(uid)
        blocks = [f"== {dash.title} =="]
        for panel in dash.panels:
            blocks.append(render_series_text(panel.title, self.execute_panel(panel, **kw)))
        return "\n\n".join(blocks)
