"""The Grafana server substitute.

"With a plugin, Grafana processes the file and handles the connections to
the streaming database that stores the performance data coming from P-MoVE
telemetry agents and displays them" (§III-B).  :class:`GrafanaServer` keeps
a registry of dashboards (by uid), resolves each panel target against the
Influx substrate (the plugin role), and renders panels to text or SVG.

Panel execution carries a write-invalidated result cache: each target's
(database, statement) result is stored with the measurement's generation
stamp (:meth:`~repro.db.influx.InfluxDB.generation`), read *before* the
query runs.  An unchanged panel refresh — the dominant dashboard workload,
since auto-generated statements are re-issued verbatim — is a dict hit;
any write, series drop, or retention trim on the measurement moves the
generation and the next refresh recomputes.  Staleness is impossible by
construction: a stamp taken before execution can only under-report
freshness, never over-report it.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.db.influx import InfluxDB
from repro.db.influxql import execute

from .dashboard import Dashboard, DashboardError, Panel, Target
from .render import Series, render_series_svg, render_series_text

__all__ = ["GrafanaServer"]


class GrafanaServer:
    """Dashboard registry + panel execution against InfluxDB."""

    def __init__(
        self,
        influx: InfluxDB,
        database: str = "pmove",
        api_token: str = "",
        cache_size: int = 512,
    ) -> None:
        self.influx = influx
        self.database = database
        self.api_token = api_token
        self._dashboards: dict[str, Dashboard] = {}
        #: (database, statement) → (generation, times, values); LRU-bounded.
        self._cache: OrderedDict[
            tuple[str, str], tuple[int, list[float], list[float]]
        ] = OrderedDict()
        self.cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0
        #: Renders served from a degraded (shard-down) engine state.
        self.partial_serves = 0

    # ------------------------------------------------------------------
    def register(self, dashboard: Dashboard) -> str:
        """Install (or replace) a dashboard; returns its uid."""
        uid = dashboard.uid or f"dash{dashboard.id}"
        dashboard.uid = uid
        self._dashboards[uid] = dashboard
        return uid

    def register_json(self, text: str) -> str:
        """Install a dashboard from its shared JSON file (Listing 1)."""
        return self.register(Dashboard.loads(text))

    def dashboards(self) -> list[str]:
        return sorted(self._dashboards)

    def get(self, uid: str) -> Dashboard:
        try:
            return self._dashboards[uid]
        except KeyError:
            raise DashboardError(f"no dashboard {uid!r} registered") from None

    # ------------------------------------------------------------------
    @staticmethod
    def target_statement(
        target: Target,
        t0: float | None = None,
        t1: float | None = None,
        tag: str | None = None,
    ) -> str:
        """The InfluxQL statement one target resolves to (Listing 3 shape)."""
        where = []
        effective_tag = target.tag or tag
        if effective_tag is not None and effective_tag != "":
            where.append(f'tag="{effective_tag}"')
        if t0 is not None:
            where.append(f"time >= {t0}")
        if t1 is not None:
            where.append(f"time <= {t1}")
        clause = (" WHERE " + " AND ".join(where)) if where else ""
        sel = f'"{target.params}"'
        if target.agg:
            sel = f'{target.agg}({sel})'
        if target.group_by_s:
            clause += f" GROUP BY time({target.group_by_s}s)"
        return f'SELECT {sel} FROM "{target.measurement}"{clause}'

    def _target_series(
        self, target: Target, statement: str
    ) -> tuple[list[float], list[float]]:
        """One target's (times, values), through the generation cache.

        The generation stamp is read *before* executing, so a write racing
        the query can only make the cached entry look stale (recompute),
        never fresh (stale serve).  Engines without generation support
        (stamp ``None``) bypass the cache entirely.
        """
        key = (self.database, statement)
        gen_of = getattr(self.influx, "generation", None)
        gen = gen_of(self.database, target.measurement) if callable(gen_of) else None
        hit = self._cache.get(key)
        if hit is not None and gen is not None and hit[0] == gen:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            return list(hit[1]), list(hit[2])
        self.cache_misses += 1
        rs = execute(self.influx, self.database, statement)
        times, values = [], []
        for t, row in rs.rows:
            if row[0] is not None:
                times.append(t)
                values.append(row[0])
        # A sharded engine flags results computed while a shard holding
        # relevant data was down.  Those are served (degraded beats blank
        # panels) but never cached: the generation vector does not move
        # when a shard merely recovers, so a cached partial could outlive
        # the outage.
        if getattr(self.influx, "last_partial", False):
            self.partial_serves += 1
        elif gen is not None:
            self._cache[key] = (gen, list(times), list(values))
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return times, values

    def invalidate_cache(self) -> None:
        """Drop every cached panel result (e.g. after swapping engines)."""
        self._cache.clear()

    def execute_panel(
        self,
        panel: Panel,
        t0: float | None = None,
        t1: float | None = None,
        tag: str | None = None,
    ) -> Series:
        """Run a panel's targets; returns label → (times, values)."""
        series: Series = {}
        for target in panel.targets:
            statement = self.target_statement(target, t0, t1, tag)
            times, values = self._target_series(target, statement)
            label = target.alias or f"{target.measurement}{target.params}"[-40:]
            series[label] = (times, values)
        return series

    def render_panel_text(self, uid: str, panel_id: int, **kw) -> str:
        dash = self.get(uid)
        panel = dash.panel(panel_id)
        return render_series_text(panel.title, self.execute_panel(panel, **kw))

    def render_panel_svg(self, uid: str, panel_id: int, **kw) -> str:
        dash = self.get(uid)
        panel = dash.panel(panel_id)
        return render_series_svg(panel.title, self.execute_panel(panel, **kw))

    def render_dashboard_text(self, uid: str, **kw) -> str:
        dash = self.get(uid)
        blocks = [f"== {dash.title} =="]
        for panel in dash.panels:
            blocks.append(render_series_text(panel.title, self.execute_panel(panel, **kw)))
        return "\n\n".join(blocks)
