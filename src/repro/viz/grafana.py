"""The Grafana server substitute.

"With a plugin, Grafana processes the file and handles the connections to
the streaming database that stores the performance data coming from P-MoVE
telemetry agents and displays them" (§III-B).  :class:`GrafanaServer` keeps
a registry of dashboards (by uid), resolves each panel target against the
Influx substrate (the plugin role), and renders panels to text or SVG.
"""

from __future__ import annotations

from repro.db.influx import InfluxDB
from repro.db.influxql import execute

from .dashboard import Dashboard, DashboardError, Panel
from .render import Series, render_series_svg, render_series_text

__all__ = ["GrafanaServer"]


class GrafanaServer:
    """Dashboard registry + panel execution against InfluxDB."""

    def __init__(self, influx: InfluxDB, database: str = "pmove", api_token: str = "") -> None:
        self.influx = influx
        self.database = database
        self.api_token = api_token
        self._dashboards: dict[str, Dashboard] = {}

    # ------------------------------------------------------------------
    def register(self, dashboard: Dashboard) -> str:
        """Install (or replace) a dashboard; returns its uid."""
        uid = dashboard.uid or f"dash{dashboard.id}"
        dashboard.uid = uid
        self._dashboards[uid] = dashboard
        return uid

    def register_json(self, text: str) -> str:
        """Install a dashboard from its shared JSON file (Listing 1)."""
        return self.register(Dashboard.loads(text))

    def dashboards(self) -> list[str]:
        return sorted(self._dashboards)

    def get(self, uid: str) -> Dashboard:
        try:
            return self._dashboards[uid]
        except KeyError:
            raise DashboardError(f"no dashboard {uid!r} registered") from None

    # ------------------------------------------------------------------
    def execute_panel(
        self,
        panel: Panel,
        t0: float | None = None,
        t1: float | None = None,
        tag: str | None = None,
    ) -> Series:
        """Run a panel's targets; returns label → (times, values)."""
        series: Series = {}
        for target in panel.targets:
            where = []
            effective_tag = target.tag or tag
            if effective_tag is not None and effective_tag != "":
                where.append(f'tag="{effective_tag}"')
            if t0 is not None:
                where.append(f"time >= {t0}")
            if t1 is not None:
                where.append(f"time <= {t1}")
            clause = (" WHERE " + " AND ".join(where)) if where else ""
            q = f'SELECT "{target.params}" FROM "{target.measurement}"{clause}'
            rs = execute(self.influx, self.database, q)
            times, values = [], []
            for t, row in rs.rows:
                if row[0] is not None:
                    times.append(t)
                    values.append(row[0])
            label = target.alias or f"{target.measurement}{target.params}"[-40:]
            series[label] = (times, values)
        return series

    def render_panel_text(self, uid: str, panel_id: int, **kw) -> str:
        dash = self.get(uid)
        panel = dash.panel(panel_id)
        return render_series_text(panel.title, self.execute_panel(panel, **kw))

    def render_panel_svg(self, uid: str, panel_id: int, **kw) -> str:
        dash = self.get(uid)
        panel = dash.panel(panel_id)
        return render_series_svg(panel.title, self.execute_panel(panel, **kw))

    def render_dashboard_text(self, uid: str, **kw) -> str:
        dash = self.get(uid)
        blocks = [f"== {dash.title} =="]
        for panel in dash.panels:
            blocks.append(render_series_text(panel.title, self.execute_panel(panel, **kw)))
        return "\n\n".join(blocks)
