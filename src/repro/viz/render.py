"""Panel renderers: time series → unicode sparklines and SVG charts.

These are the display side of the Grafana substitute: a panel's executed
targets (label → (times, values)) become either a quick terminal sparkline
or a standalone SVG line chart.
"""

from __future__ import annotations

import math

from .svg import PALETTE, SvgCanvas

__all__ = ["sparkline", "render_series_text", "render_series_svg"]

_BLOCKS = " ▁▂▃▄▅▆▇█"

Series = dict[str, tuple[list[float], list[float]]]


def sparkline(values: list[float], width: int = 40) -> str:
    """Unicode sparkline of a series, resampled to ``width`` columns."""
    if not values:
        return ""
    if width <= 0:
        raise ValueError("width must be positive")
    # Resample by bucket means.
    n = len(values)
    buckets = []
    for i in range(min(width, n)):
        lo = i * n // min(width, n)
        hi = max(lo + 1, (i + 1) * n // min(width, n))
        buckets.append(sum(values[lo:hi]) / (hi - lo))
    vmin, vmax = min(buckets), max(buckets)
    span = vmax - vmin
    out = []
    for v in buckets:
        idx = 8 if span == 0 else int((v - vmin) / span * 8)
        out.append(_BLOCKS[min(8, max(0, idx))])
    return "".join(out)


def render_series_text(title: str, series: Series, width: int = 40) -> str:
    """A labeled block of sparklines, one per series."""
    lines = [title]
    label_w = max((len(l) for l in series), default=0)
    for label, (_, values) in sorted(series.items()):
        last = values[-1] if values else float("nan")
        lines.append(f"  {label:<{label_w}} {sparkline(values, width)} {last:.4g}")
    return "\n".join(lines)


def render_series_svg(
    title: str,
    series: Series,
    width: int = 640,
    height: int = 240,
    y_label: str = "",
) -> str:
    """An SVG line chart with axes and a legend."""
    c = SvgCanvas(width, height)
    ml, mr, mt, mb = 58, 12, 28, 30
    pw, ph = width - ml - mr, height - mt - mb
    c.text(10, 18, title, size=13)

    all_t = [t for ts, _ in series.values() for t in ts]
    all_v = [v for _, vs in series.values() for v in vs if not math.isnan(v)]
    if not all_t or not all_v:
        c.text(width / 2, height / 2, "no data", anchor="middle")
        return c.to_string()
    t0, t1 = min(all_t), max(all_t)
    v0, v1 = min(all_v), max(all_v)
    if t1 == t0:
        t1 = t0 + 1.0
    if v1 == v0:
        v1 = v0 + 1.0

    def sx(t: float) -> float:
        return ml + (t - t0) / (t1 - t0) * pw

    def sy(v: float) -> float:
        return mt + (1.0 - (v - v0) / (v1 - v0)) * ph

    # Axes and gridlines.
    c.line(ml, mt, ml, mt + ph, color="#555")
    c.line(ml, mt + ph, ml + pw, mt + ph, color="#555")
    for i in range(5):
        v = v0 + (v1 - v0) * i / 4
        y = sy(v)
        c.line(ml, y, ml + pw, y, color="#333", dash="2,3")
        c.text(ml - 6, y + 4, f"{v:.3g}", anchor="end", size=10)
    for i in range(5):
        t = t0 + (t1 - t0) * i / 4
        c.text(sx(t), mt + ph + 14, f"{t:.3g}s", anchor="middle", size=10)
    if y_label:
        c.text(12, mt - 8, y_label, size=10)

    for i, (label, (ts, vs)) in enumerate(sorted(series.items())):
        color = PALETTE[i % len(PALETTE)]
        pts = [(sx(t), sy(v)) for t, v in zip(ts, vs) if not math.isnan(v)]
        if len(pts) >= 2:
            c.polyline(pts, color=color)
        elif pts:
            c.circle(*pts[0], 2.5, color)
        c.text(ml + 8 + 110 * i, mt - 8, label[:14], color=color, size=10)
    return c.to_string()
