"""Minimal SVG canvas — the pixel substrate for dashboard and CARM plots.

Grafana renders charts in the browser; this reproduction renders them as
standalone SVG strings so dashboards and live-CARM panels remain inspectable
artifacts without any plotting dependency.
"""

from __future__ import annotations

from html import escape

__all__ = ["SvgCanvas", "PALETTE"]

#: Categorical series colors (Grafana-classic flavoured).
PALETTE = (
    "#7EB26D", "#EAB839", "#6ED0E0", "#EF843C", "#E24D42",
    "#1F78C1", "#BA43A9", "#705DA0", "#508642", "#CCA300",
)


class SvgCanvas:
    """Accumulates SVG elements and serializes to a document string."""

    def __init__(self, width: int, height: int, background: str = "#1f1f20") -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._elems: list[str] = [
            f'<rect x="0" y="0" width="{width}" height="{height}" fill="{background}"/>'
        ]

    def line(self, x1: float, y1: float, x2: float, y2: float,
             color: str = "#888", width: float = 1.0, dash: str | None = None) -> None:
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self._elems.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{color}" stroke-width="{width}"{d}/>'
        )

    def polyline(self, points: list[tuple[float, float]], color: str,
                 width: float = 1.5) -> None:
        if len(points) < 2:
            raise ValueError("polyline needs >= 2 points")
        pts = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._elems.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"/>'
        )

    def circle(self, x: float, y: float, r: float, color: str,
               opacity: float = 1.0) -> None:
        self._elems.append(
            f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{r:.2f}" fill="{color}" '
            f'fill-opacity="{opacity:.2f}"/>'
        )

    def rect(self, x: float, y: float, w: float, h: float, color: str,
             fill: bool = False, opacity: float = 1.0) -> None:
        style = (
            f'fill="{color}" fill-opacity="{opacity:.2f}"'
            if fill
            else f'fill="none" stroke="{color}"'
        )
        self._elems.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" {style}/>'
        )

    def text(self, x: float, y: float, s: str, color: str = "#ddd",
             size: int = 11, anchor: str = "start") -> None:
        self._elems.append(
            f'<text x="{x:.2f}" y="{y:.2f}" fill="{color}" font-size="{size}" '
            f'font-family="monospace" text-anchor="{anchor}">{escape(s)}</text>'
        )

    def to_string(self) -> str:
        body = "\n".join(self._elems)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f"{body}\n</svg>\n"
        )
