"""Continuous queries: incrementally materialized dashboard targets.

Real InfluxDB lets operators register ``CONTINUOUS QUERY`` statements that
downsample on a schedule so dashboards read precomputed rows instead of
rescanning raw points.  :class:`ContinuousQueryRegistrar` plays that role
for :class:`~repro.viz.grafana.GrafanaServer`: a registered target (its
``agg``/``agg_arg``/``group_by_s`` describe e.g. ``PERCENTILE("lat", 99)
... GROUP BY time(60s)``) is re-executed only over the buckets that closed
since the last refresh, and the results accumulate in a materialized
series the server can chart without touching the engine.

Cost model: each refresh issues one InfluxQL statement scoped to the new
buckets.  When the target is a ``PERCENTILE`` over a rollup-tier-aligned
``GROUP BY time`` window, the engine answers each bucket from its tier
t-digests — O(tiers) work per bucket, independent of how many raw points
landed in it — so steady-state materialization cost tracks wall-clock
time, not ingest volume.

Late data: writes landing behind the watermark would silently miss the
materialized rows, so each refresh re-executes the trailing
``replay_buckets`` already-closed buckets and replaces their rows; data
arriving later than that is visible only via :meth:`backfill`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.db.influxql import execute

from .dashboard import DashboardError, Target
from .grafana import GrafanaServer

__all__ = ["ContinuousQuery", "ContinuousQueryRegistrar"]


@dataclass
class ContinuousQuery:
    """One registered materialization (name + target + progress state)."""

    name: str
    target: Target
    start_t: float
    replay_buckets: int
    #: Exclusive upper bound of materialized time: every bucket whose key
    #: is < watermark has been executed at least once.
    watermark: float = 0.0
    #: bucket key -> value (None = bucket executed, field absent/NaN-free
    #: rows empty); insertion is keyed so replayed buckets replace in place.
    rows: dict[float, float | None] = field(default_factory=dict)
    refreshes: int = 0
    buckets_materialized: int = 0

    def __post_init__(self) -> None:
        if not self.target.agg:
            raise DashboardError(f"continuous query {self.name!r} needs an agg")
        if self.target.group_by_s <= 0:
            raise DashboardError(
                f"continuous query {self.name!r} needs GROUP BY time "
                "(group_by_s > 0)"
            )
        if self.replay_buckets < 0:
            raise DashboardError("replay_buckets must be >= 0")
        self.watermark = self.start_t


class ContinuousQueryRegistrar:
    """Registry + refresh loop for materialized dashboard targets."""

    def __init__(self, server: GrafanaServer) -> None:
        self.server = server
        self._queries: dict[str, ContinuousQuery] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        target: Target,
        start_t: float = 0.0,
        replay_buckets: int = 1,
    ) -> ContinuousQuery:
        """Install (or replace) a continuous query; materialization starts
        empty and advances on :meth:`refresh`."""
        if target.group_by_s <= 0:
            raise DashboardError(
                f"continuous query {name!r} needs GROUP BY time "
                "(group_by_s > 0)"
            )
        cq = ContinuousQuery(
            name=name,
            target=target,
            start_t=(start_t // target.group_by_s) * target.group_by_s,
            replay_buckets=replay_buckets,
        )
        self._queries[name] = cq
        return cq

    def unregister(self, name: str) -> None:
        self._queries.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._queries)

    def get(self, name: str) -> ContinuousQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise DashboardError(f"no continuous query {name!r}") from None

    # ------------------------------------------------------------------
    def _execute_window(self, cq: ContinuousQuery, lo: float, hi: float) -> int:
        """Materialize buckets with lo <= key < hi; returns buckets written.

        ``time <= hi - 1ulp`` is approximated by querying up to the last
        closed bucket's end minus nothing — the engine keys buckets at
        ``(t // g) * g``, so restricting to keys < hi after execution is
        exact regardless of the range's right edge.
        """
        if hi <= lo:
            return 0
        statement = self.server.target_statement(cq.target, t0=lo, t1=hi)
        rs = execute(self.server.influx, self.server.database, statement)
        written = 0
        for t, row in rs.rows:
            if lo <= t < hi:
                cq.rows[t] = row[0]
                written += 1
        # Buckets with no rows at all stay absent (a gap, not a zero) —
        # matching what a direct panel query over the same range returns.
        return written

    def refresh(self, now: float, name: str | None = None) -> dict[str, int]:
        """Advance materialization to every bucket fully closed at ``now``.

        Returns {cq name: buckets written this refresh}.  Only closed
        buckets are executed — a half-open bucket would materialize a
        value that still changes under ingest.
        """
        out: dict[str, int] = {}
        queries = [self.get(name)] if name is not None else list(self._queries.values())
        for cq in queries:
            g = cq.target.group_by_s
            horizon = (now // g) * g  # first still-open bucket's key
            lo = max(cq.start_t, cq.watermark - cq.replay_buckets * g)
            written = self._execute_window(cq, lo, horizon)
            cq.watermark = max(cq.watermark, horizon)
            cq.refreshes += 1
            cq.buckets_materialized += written
            out[cq.name] = written
        return out

    def backfill(self, name: str) -> int:
        """Re-execute a query's whole materialized range (late-data repair
        beyond the replay window); returns buckets written."""
        cq = self.get(name)
        return self._execute_window(cq, cq.start_t, cq.watermark)

    # ------------------------------------------------------------------
    def series(self, name: str) -> tuple[list[float], list[float]]:
        """The materialized (times, values) — what a panel charts."""
        cq = self.get(name)
        times, values = [], []
        for t in sorted(cq.rows):
            v = cq.rows[t]
            if v is not None:
                times.append(t)
                values.append(v)
        return times, values

    def stats(self) -> dict[str, dict[str, Any]]:
        return {
            name: {
                "watermark": cq.watermark,
                "buckets": len(cq.rows),
                "refreshes": cq.refreshes,
                "buckets_materialized": cq.buckets_materialized,
                "statement": self.server.target_statement(cq.target),
            }
            for name, cq in sorted(self._queries.items())
        }
