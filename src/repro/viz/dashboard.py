"""Grafana dashboard JSON model (Listing 1).

"In P-MoVE, each dashboard is only a simple JSON file... A dashboard can be
modified by the users and saved for the next sessions.  The corresponding
JSON file can be shared by multiple users."  The model here serializes to
exactly the Listing 1 shape — ``id``/``panels``/``targets`` with
``datasource {type, uid}``, ``measurement``, ``params``, and a ``time``
range — and parses it back, so dashboards really are shareable JSON
artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["Target", "Panel", "Dashboard", "DashboardError"]


class DashboardError(ValueError):
    """Malformed dashboard documents."""


@dataclass(frozen=True)
class Target:
    """One query target of a panel (Listing 1's targets entry).

    ``tag`` optionally pins the target to one observation's series (the
    WHERE tag=... scoping of Listing 3); process/observation-level views
    (Fig 2 c/d) use it to draw one line per execution.  ``agg`` and
    ``group_by_s`` opt a target into a downsampled view (``AGG("field")
    ... GROUP BY time(Ns)``) served from the engine's rollup tiers; both
    default off and are omitted from the JSON, so legacy documents stay
    byte-identical.  ``agg_arg`` carries a parameterized aggregate's
    argument — today the N of ``PERCENTILE("field", N)``, served from the
    rollup tiers' t-digests.
    """

    measurement: str
    params: str  # instance field, e.g. "_cpu0"
    datasource_uid: str = "UUkm1881"
    datasource_type: str = "influxdb"
    tag: str = ""
    alias: str = ""  # legend label override
    agg: str = ""  # "" = raw select; else MEAN/MAX/MIN/SUM/COUNT/...
    group_by_s: float = 0.0  # 0 = no GROUP BY time()
    agg_arg: float | None = None  # PERCENTILE(field, N)'s N

    def __post_init__(self) -> None:
        if not self.measurement:
            raise DashboardError("target needs a measurement")
        if self.group_by_s < 0:
            raise DashboardError("group_by_s must be >= 0")
        if self.agg_arg is not None and not self.agg:
            raise DashboardError("agg_arg needs an agg")
        if self.agg.upper() == "PERCENTILE":
            if self.agg_arg is None:
                raise DashboardError("PERCENTILE needs agg_arg (the percentile)")
            if not 0.0 <= self.agg_arg <= 100.0:
                raise DashboardError("PERCENTILE agg_arg must be in [0, 100]")

    def to_json(self) -> dict[str, Any]:
        doc = {
            "datasource": {"type": self.datasource_type, "uid": self.datasource_uid},
            "measurement": self.measurement,
            "params": self.params,
        }
        if self.tag:
            doc["tag"] = self.tag
        if self.alias:
            doc["alias"] = self.alias
        if self.agg:
            doc["agg"] = self.agg
        if self.group_by_s:
            doc["groupBySeconds"] = self.group_by_s
        if self.agg_arg is not None:
            doc["aggArg"] = self.agg_arg
        return doc

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "Target":
        try:
            ds = doc.get("datasource", {})
            return cls(
                measurement=doc["measurement"],
                params=doc.get("params", "_value"),
                datasource_uid=ds.get("uid", "UUkm1881"),
                datasource_type=ds.get("type", "influxdb"),
                tag=doc.get("tag", ""),
                alias=doc.get("alias", ""),
                agg=doc.get("agg", ""),
                group_by_s=float(doc.get("groupBySeconds", 0.0)),
                agg_arg=(float(doc["aggArg"]) if "aggArg" in doc else None),
            )
        except KeyError as e:
            raise DashboardError(f"target missing {e}") from None


@dataclass
class Panel:
    """One panel: a titled group of targets."""

    id: int
    title: str
    targets: list[Target]
    panel_type: str = "timeseries"

    def __post_init__(self) -> None:
        if not self.targets:
            raise DashboardError(f"panel {self.id} has no targets")

    def to_json(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "title": self.title,
            "type": self.panel_type,
            "targets": [t.to_json() for t in self.targets],
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "Panel":
        return cls(
            id=doc.get("id", 1),
            title=doc.get("title", ""),
            targets=[Target.from_json(t) for t in doc.get("targets", [])],
            panel_type=doc.get("type", "timeseries"),
        )


@dataclass
class Dashboard:
    """A complete dashboard document."""

    id: int
    title: str
    panels: list[Panel] = field(default_factory=list)
    time_from: str = "now-5m"
    time_to: str = "now"
    uid: str = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "uid": self.uid or f"dash{self.id}",
            "title": self.title,
            "panels": [p.to_json() for p in self.panels],
            "time": {"from": self.time_from, "to": self.time_to},
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "Dashboard":
        if "panels" not in doc:
            raise DashboardError("dashboard document has no panels")
        return cls(
            id=doc.get("id", 1),
            uid=doc.get("uid", ""),
            title=doc.get("title", ""),
            panels=[Panel.from_json(p) for p in doc["panels"]],
            time_from=doc.get("time", {}).get("from", "now-5m"),
            time_to=doc.get("time", {}).get("to", "now"),
        )

    # ------------------------------------------------------------------
    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=1)

    @classmethod
    def loads(cls, text: str) -> "Dashboard":
        return cls.from_json(json.loads(text))

    def save(self, path: str | Path) -> Path:
        """Persist the shareable JSON file (Listing 1)."""
        p = Path(path)
        p.write_text(self.dumps())
        return p

    @classmethod
    def load(cls, path: str | Path) -> "Dashboard":
        return cls.loads(Path(path).read_text())

    def panel(self, panel_id: int) -> Panel:
        for p in self.panels:
            if p.id == panel_id:
                return p
        raise DashboardError(f"no panel {panel_id} in dashboard {self.id}")
