"""likwid-bench kernels and their ground-truth accounting (§V-A, Figs 4–5).

likwid-bench "executes a pre-determined, fixed number of instruction streams
and can report ground truth for events that happened afterwards" — which is
exactly why the paper uses it to validate PCP's counter accuracy.  Each
kernel here is a :class:`~repro.machine.kernel.KernelDescriptor` builder
with *exact* FLOP / load / store counts, plus a renderer and parser for the
likwid-bench output format the paper parses.

Kernels (all double precision, per element of length-N vectors):

========== =========================== ======= ======= ====== ==========
kernel     operation                   flops   loads   stores bytes
========== =========================== ======= ======= ====== ==========
sum        s += a[i]                   1       1       0      8
stream     a[i] = s*b[i]               1       1       1      16
triad      a[i] = b[i] + s*c[i]        2 (fma) 2       1      24
peakflops  register FMA chain          32      1       0      8
ddot       s += a[i]*b[i]              2 (fma) 2       0      16
daxpy      y[i] = a*x[i] + y[i]        2 (fma) 2       1      24
========== =========================== ======= ======= ====== ==========
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.machine.kernel import KernelDescriptor
from repro.machine.simulator import KernelRun
from repro.machine.spec import ISA, MachineSpec

__all__ = ["LIKWID_KERNELS", "build_kernel", "kernel_ground_truth",
           "render_likwid_output", "parse_likwid_output"]


@dataclass(frozen=True)
class _KernelShape:
    flops_per_elem: float
    fma: bool
    loads_per_elem: float
    stores_per_elem: float
    n_arrays: int


LIKWID_KERNELS: dict[str, _KernelShape] = {
    "sum": _KernelShape(1.0, False, 1.0, 0.0, 1),
    "stream": _KernelShape(1.0, False, 1.0, 1.0, 2),
    "triad": _KernelShape(2.0, True, 2.0, 1.0, 3),
    "peakflops": _KernelShape(32.0, True, 1.0, 0.0, 1),
    "ddot": _KernelShape(2.0, True, 2.0, 0.0, 2),
    "daxpy": _KernelShape(2.0, True, 2.0, 1.0, 2),
}


def build_kernel(
    name: str,
    n_elements: int,
    isa: ISA = ISA.AVX512,
    iterations: int = 1,
) -> KernelDescriptor:
    """Exact-count descriptor for one likwid-bench kernel invocation.

    ``n_elements`` is the per-array vector length; memory instructions are
    counted at ``isa`` width (one AVX-512 load covers 8 doubles), matching
    how likwid-bench's assembly kernels move data.
    """
    try:
        shape = LIKWID_KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown likwid kernel {name!r}; known: {sorted(LIKWID_KERNELS)}"
        ) from None
    if n_elements <= 0 or iterations <= 0:
        raise ValueError("n_elements and iterations must be positive")
    total = float(n_elements * iterations)
    lanes = isa.dp_lanes
    return KernelDescriptor(
        name=name,
        flops_dp={isa: shape.flops_per_elem * total},
        fma_fraction=1.0 if shape.fma else 0.0,
        loads=shape.loads_per_elem * total / lanes,
        stores=shape.stores_per_elem * total / lanes,
        mem_isa=isa,
        working_set_bytes=shape.n_arrays * 8 * n_elements,
        overhead_instr_ratio=0.15,
    )


def kernel_ground_truth(desc: KernelDescriptor) -> dict[str, float]:
    """The likwid-bench reference numbers for one descriptor: exact FLOPs
    and data volume, the quantities Fig 4's error study compares against."""
    return {
        "flops": desc.total_flops,
        "loads": desc.loads,
        "stores": desc.stores,
        "data_volume_bytes": desc.bytes_total,
    }


def render_likwid_output(desc: KernelDescriptor, run: KernelRun, spec: MachineSpec) -> str:
    """likwid-bench result block for a completed run (what P-MoVE parses)."""
    t = run.runtime_s
    cycles = t * spec.base_freq_ghz * 1e9
    mflops = desc.total_flops / t / 1e6
    mbytes = desc.bytes_total / t / 1e6
    return (
        "--------------------------------------------------------------------------------\n"
        f"Cycles:\t\t\t{cycles:.0f}\n"
        f"CPU Clock:\t\t{spec.base_freq_ghz * 1e9:.0f}\n"
        f"Time:\t\t\t{t:.6e} sec\n"
        f"Iterations:\t\t{1}\n"
        f"Size (Byte):\t\t{desc.working_set_bytes}\n"
        f"MFlops/s:\t\t{mflops:.2f}\n"
        f"MByte/s:\t\t{mbytes:.2f}\n"
        f"Data volume (Byte):\t{int(desc.bytes_total)}\n"
        f"FLOPs:\t\t\t{int(desc.total_flops)}\n"
        "--------------------------------------------------------------------------------\n"
    )


def parse_likwid_output(text: str) -> dict[str, float]:
    """Parse a likwid-bench result block into its reported numbers."""
    patterns = {
        "time_s": r"Time:\s*([\d.eE+-]+)\s*sec",
        "cycles": r"Cycles:\s*([\d.]+)",
        "mflops": r"MFlops/s:\s*([\d.]+)",
        "data_volume_bytes": r"Data volume \(Byte\):\s*(\d+)",
        "flops": r"FLOPs:\s*(\d+)",
        "size_bytes": r"Size \(Byte\):\s*(\d+)",
    }
    out: dict[str, float] = {}
    for key, pat in patterns.items():
        if m := re.search(pat, text):
            out[key] = float(m.group(1))
    if "time_s" not in out or "flops" not in out:
        raise ValueError("not a likwid-bench result block")
    return out
