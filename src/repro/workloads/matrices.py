"""Synthetic stand-ins for the SuiteSparse matrices of Table IV.

The paper's SpMV study uses five matrices "from different scientific
domains, characteristics, dimensions, and number of non-zero elements".
SuiteSparse downloads are unavailable offline, so each matrix gets a
generator reproducing its *structure class* — the property that determines
how much RCM reordering helps and how the SpMV kernels behave:

- ``adaptive`` (DIMACS10): adaptively refined 2D mesh, ~4 nnz/row;
- ``audikw_1`` (GHS_psdef): FE stiffness matrix, dense node blocks, ~82/row;
- ``dielFilterV3real`` (Dziekonski): FE electromagnetics, ~81/row;
- ``hugetrace-00020`` (DIMACS10): near-1D trace graph, ~3/row;
- ``human_gene1`` (Belcastro): small, dense-ish gene network, ~1100/row.

All generators return symmetric-pattern CSR matrices whose rows are
randomly permuted (real SuiteSparse orderings are far from banded), so RCM
has locality to recover.  ``scale`` shrinks row counts for quick runs while
preserving structure; nnz/row is kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["TABLE4", "MatrixInfo", "generate", "mesh_like", "stiffness_like",
           "trace_like", "gene_like"]


def _symmetrize_and_permute(
    rows: np.ndarray, cols: np.ndarray, n: int, rng: np.random.Generator
) -> sp.csr_matrix:
    """Symmetrize a pattern, add the diagonal, and scramble the ordering."""
    perm = rng.permutation(n)
    edge_vals = rng.uniform(0.1, 1.0, size=rows.size)
    diag_vals = rng.uniform(1.0, 2.0, size=n)
    r = perm[np.concatenate([rows, cols, np.arange(n)])]
    c = perm[np.concatenate([cols, rows, np.arange(n)])]
    # Mirror edges carry the same value -> numerically symmetric, like the
    # real (SPD / structurally symmetric) Table IV matrices.
    vals = np.concatenate([edge_vals, edge_vals, diag_vals])
    a = sp.coo_matrix((vals, (r, c)), shape=(n, n)).tocsr()
    a.sum_duplicates()
    return a


def mesh_like(n: int, seed: int = 0) -> sp.csr_matrix:
    """Adaptive-mesh-like: 2D grid adjacency with local refinement edges."""
    if n < 9:
        raise ValueError("mesh needs n >= 9")
    rng = np.random.default_rng(seed)
    side = int(np.sqrt(n))
    n = side * side
    idx = np.arange(n)
    right = idx[idx % side != side - 1]
    down = idx[idx < n - side]
    rows = np.concatenate([right, down])
    cols = np.concatenate([right + 1, down + side])
    # Refinement: extra short-range diagonal edges on a random 20 % subset.
    extra = rng.choice(n - side - 1, size=n // 5, replace=False)
    rows = np.concatenate([rows, extra])
    cols = np.concatenate([cols, extra + side + 1])
    return _symmetrize_and_permute(rows, cols, n, rng)


def stiffness_like(n: int, block: int = 3, halfband_blocks: int = 13, seed: int = 0) -> sp.csr_matrix:
    """FE-stiffness-like: dense ``block``-sized node blocks coupled to a
    banded neighbourhood — gives the ~80 nnz/row of audikw/dielFilter."""
    if n < block * 4:
        raise ValueError("stiffness matrix too small for its block size")
    rng = np.random.default_rng(seed)
    nb = n // block
    # Block graph: each block couples to ~halfband_blocks forward neighbours.
    brows, bcols = [], []
    for off in range(1, halfband_blocks + 1):
        src = np.arange(nb - off)
        keep = rng.random(src.size) < 0.85
        brows.append(src[keep])
        bcols.append(src[keep] + off)
    br = np.concatenate(brows)
    bc = np.concatenate(bcols)
    # Expand block edges to dense block*block couplings.
    o = np.arange(block)
    oi, oj = np.meshgrid(o, o, indexing="ij")
    rows = (br[:, None] * block + oi.ravel()[None, :]).ravel()
    cols = (bc[:, None] * block + oj.ravel()[None, :]).ravel()
    # Dense diagonal blocks.
    d = np.arange(nb)
    drows = (d[:, None] * block + oi.ravel()[None, :]).ravel()
    dcols = (d[:, None] * block + oj.ravel()[None, :]).ravel()
    rows = np.concatenate([rows, drows])
    cols = np.concatenate([cols, dcols])
    return _symmetrize_and_permute(rows, cols, nb * block, rng)


def trace_like(n: int, seed: int = 0) -> sp.csr_matrix:
    """hugetrace-like: an almost-1D chain with sparse skips (~3 nnz/row)."""
    if n < 4:
        raise ValueError("trace graph needs n >= 4")
    rng = np.random.default_rng(seed)
    chain = np.arange(n - 1)
    skips = rng.choice(n - 3, size=n // 2, replace=True)
    rows = np.concatenate([chain, skips])
    cols = np.concatenate([chain + 1, skips + rng.integers(2, 4, size=skips.size)])
    return _symmetrize_and_permute(rows, cols, n, rng)


def gene_like(n: int, nnz_per_row: int = 1100, seed: int = 0) -> sp.csr_matrix:
    """human_gene1-like: small, dense rows, community-ish random structure —
    the case RCM barely helps."""
    if n < 8:
        raise ValueError("gene network needs n >= 8")
    rng = np.random.default_rng(seed)
    k = min(nnz_per_row // 2, n - 1)
    rows = np.repeat(np.arange(n), k)
    # Mix of community-local (near) and global (far) partners.
    near = (rows + rng.integers(1, max(2, n // 20), size=rows.size)) % n
    far = rng.integers(0, n, size=rows.size)
    cols = np.where(rng.random(rows.size) < 0.6, near, far)
    keep = rows != cols
    return _symmetrize_and_permute(rows[keep], cols[keep], n, rng)


@dataclass(frozen=True)
class MatrixInfo:
    """Table IV row: the real matrix's identity and size."""

    name: str
    group: str
    rows: int
    nnz: int


#: Table IV of the paper, verbatim.
TABLE4 = {
    "adaptive": MatrixInfo("adaptive", "DIMACS10", 6_815_744, 27_200_000),
    "audikw_1": MatrixInfo("audikw_1", "GHS_psdef", 943_695, 77_700_000),
    "dielFilterV3real": MatrixInfo("dielFilterV3real", "Dziekonski", 1_102_824, 89_300_000),
    "hugetrace-00020": MatrixInfo("hugetrace-00020", "DIMACS10", 16_002_413, 48_000_000),
    "human_gene1": MatrixInfo("human_gene1", "Belcastro", 22_283, 24_700_000),
}


def generate(name: str, scale: float = 1.0, seed: int = 0) -> sp.csr_matrix:
    """Generate the named Table IV stand-in at ``scale`` of its real rows.

    The structure class (hence the RCM story) is preserved at any scale;
    use small scales for tests and the analytic Table IV sizes for
    descriptor accounting.
    """
    if name not in TABLE4:
        raise KeyError(f"unknown Table IV matrix {name!r}; known: {sorted(TABLE4)}")
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    info = TABLE4[name]
    n = max(64, int(info.rows * scale))
    if name == "adaptive":
        return mesh_like(n, seed=seed)
    if name == "audikw_1":
        return stiffness_like(n, block=3, halfband_blocks=13, seed=seed)
    if name == "dielFilterV3real":
        return stiffness_like(n, block=4, halfband_blocks=10, seed=seed)
    if name == "hugetrace-00020":
        return trace_like(n, seed=seed)
    # human_gene1: cap nnz/row for tiny scaled instances.
    nnz_per_row = min(1100, max(8, n // 4))
    return gene_like(n, nnz_per_row=nnz_per_row, seed=seed)
