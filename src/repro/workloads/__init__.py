"""Workloads: SpMV (MKL-like and merge-based), the likwid-bench kernel set,
STREAM and HPCG benchmarks, Table IV matrix generators, reorderings (RCM et
al.), reuse-distance locality analysis, and thread-pinning strategies."""

from .hpcg import build_stencil, hpcg_descriptor, parse_hpcg_output, run_hpcg
from .likwid_bench import (
    LIKWID_KERNELS,
    build_kernel,
    kernel_ground_truth,
    parse_likwid_output,
    render_likwid_output,
)
from .locality import expected_stack_distances, line_reuse_gaps, x_gather_locality
from .matrices import TABLE4, MatrixInfo, generate
from .merge_spmv import MergeStats, merge_path_search, merge_spmv
from .pinning import STRATEGIES, pin_threads, pinning_script
from .reorder import ORDERINGS, apply_ordering, bandwidth, degree_order, random_order, rcm, reorder
from .spmv import ALGORITHMS, spmv_csr, spmv_descriptor
from .stream import STREAM_KERNELS, parse_stream_output, run_stream, stream_descriptor

__all__ = [
    "ALGORITHMS",
    "LIKWID_KERNELS",
    "ORDERINGS",
    "STRATEGIES",
    "STREAM_KERNELS",
    "TABLE4",
    "MatrixInfo",
    "MergeStats",
    "apply_ordering",
    "bandwidth",
    "build_kernel",
    "build_stencil",
    "degree_order",
    "expected_stack_distances",
    "generate",
    "hpcg_descriptor",
    "kernel_ground_truth",
    "line_reuse_gaps",
    "merge_path_search",
    "merge_spmv",
    "parse_hpcg_output",
    "parse_likwid_output",
    "parse_stream_output",
    "pin_threads",
    "pinning_script",
    "random_order",
    "rcm",
    "render_likwid_output",
    "reorder",
    "run_hpcg",
    "run_stream",
    "spmv_csr",
    "spmv_descriptor",
    "stream_descriptor",
    "x_gather_locality",
]
