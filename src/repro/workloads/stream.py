"""STREAM benchmark [25] — one of the three BenchmarkInterface workloads.

STREAM's four kernels (Copy, Scale, Add, Triad) measure sustainable memory
bandwidth.  :func:`run_stream` executes them on a simulated machine and
returns per-kernel best-of-``ntimes`` bandwidths, plus the standard STREAM
output text (which P-MoVE parses into BenchmarkResult entries, §III-C).
"""

from __future__ import annotations

import re

from repro.machine.kernel import KernelDescriptor
from repro.machine.simulator import SimulatedMachine
from repro.machine.spec import ISA

__all__ = ["STREAM_KERNELS", "stream_descriptor", "run_stream", "parse_stream_output"]

#: kernel -> (flops/elem, loads/elem, stores/elem, arrays touched)
STREAM_KERNELS = {
    "Copy": (0.0, 1.0, 1.0, 2),
    "Scale": (1.0, 1.0, 1.0, 2),
    "Add": (1.0, 2.0, 1.0, 3),
    "Triad": (2.0, 2.0, 1.0, 3),
}


def stream_descriptor(kernel: str, n: int, isa: ISA = ISA.AVX2) -> KernelDescriptor:
    """Descriptor for one STREAM kernel over arrays of ``n`` doubles."""
    try:
        flops, loads, stores, arrays = STREAM_KERNELS[kernel]
    except KeyError:
        raise KeyError(f"unknown STREAM kernel {kernel!r}") from None
    if n <= 0:
        raise ValueError("array length must be positive")
    lanes = isa.dp_lanes
    return KernelDescriptor(
        name=f"stream_{kernel.lower()}",
        flops_dp={isa: flops * n} if flops else {},
        fma_fraction=1.0 if kernel == "Triad" else 0.0,
        loads=loads * n / lanes,
        stores=stores * n / lanes,
        mem_isa=isa,
        working_set_bytes=arrays * 8 * n,
        overhead_instr_ratio=0.1,
    )


def run_stream(
    machine: SimulatedMachine,
    n: int = 20_000_000,
    ntimes: int = 10,
    cpu_ids: list[int] | None = None,
    isa: ISA = ISA.AVX2,
) -> tuple[dict[str, float], str]:
    """Run STREAM; returns ({kernel: best MB/s}, standard output text)."""
    if ntimes < 2:
        raise ValueError("STREAM requires ntimes >= 2")
    best: dict[str, float] = {}
    for kernel, (_, loads, stores, _) in STREAM_KERNELS.items():
        desc = stream_descriptor(kernel, n, isa=isa)
        bytes_moved = (loads + stores) * 8 * n
        rates = []
        for _ in range(ntimes):
            run = machine.run_kernel(desc, cpu_ids)
            rates.append(bytes_moved / run.runtime_s / 1e6)
        best[kernel] = max(rates)
    lines = [
        "-------------------------------------------------------------",
        "STREAM version $Revision: 5.10 $",
        "-------------------------------------------------------------",
        f"Array size = {n} (elements)",
        "Function    Best Rate MB/s  Avg time     Min time     Max time",
    ]
    for kernel, rate in best.items():
        t = (STREAM_KERNELS[kernel][1] + STREAM_KERNELS[kernel][2]) * 8 * n / (rate * 1e6)
        lines.append(f"{kernel}:{rate:16.1f}  {t:.6f}     {t:.6f}     {t:.6f}")
    return best, "\n".join(lines) + "\n"


def parse_stream_output(text: str) -> dict[str, float]:
    """Parse STREAM output into {kernel: best MB/s}."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        if m := re.match(r"(Copy|Scale|Add|Triad):\s*([\d.]+)", line):
            out[m.group(1)] = float(m.group(2))
    if not out:
        raise ValueError("not STREAM output")
    return out
