"""Reuse-distance-based locality analysis for SpMV's x-vector gathers.

SpMV streams the matrix (values, column indices) once but re-reads the dense
``x`` vector through the caches; how often those gathers hit L1/L2/L3 is
exactly what reordering changes ("the positive influence of reordering on
improved data locality", §V-D).  This module estimates, per cache level,
the fraction of x-gather traffic served there:

1. accesses are taken at *cache-line* granularity (``col // 8`` doubles per
   64-byte line), so spatial locality from banded orderings is captured;
2. for every access, the gap to the previous access of the same line is
   computed vectorized (lexsort over (line, position));
3. the gap is converted to an expected stack distance
   ``U * (1 - (1 - 1/U)^gap)`` (distinct lines expected among ``gap`` draws
   from ``U`` hot lines), and binned against each level's capacity.

The estimator is deliberately analytic — O(nnz log nnz), no cache simulator
— but monotone in the ways that matter: tighter bandwidth → smaller gaps →
higher cache residency.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.machine.spec import MachineSpec

__all__ = ["line_reuse_gaps", "expected_stack_distances", "x_gather_locality"]

_LINE_DOUBLES = 8  # 64-byte line holds 8 doubles


def line_reuse_gaps(cols: np.ndarray) -> np.ndarray:
    """Gap (in accesses) since the same cache line was last touched;
    ``-1`` marks cold first accesses."""
    if cols.ndim != 1:
        raise ValueError("cols must be a 1-D access stream")
    lines = cols // _LINE_DOUBLES
    pos = np.arange(lines.size, dtype=np.int64)
    order = np.lexsort((pos, lines))
    sl, spos = lines[order], pos[order]
    gaps_sorted = np.full(lines.size, -1, dtype=np.int64)
    if lines.size > 1:
        same = sl[1:] == sl[:-1]
        gaps_sorted[1:][same] = (spos[1:] - spos[:-1])[same]
    out = np.empty_like(gaps_sorted)
    out[order] = gaps_sorted
    return out


def expected_stack_distances(gaps: np.ndarray, n_unique_lines: int) -> np.ndarray:
    """Expected distinct lines touched within each gap (cold = +inf)."""
    if n_unique_lines <= 0:
        raise ValueError("need a positive unique-line count")
    out = np.full(gaps.shape, np.inf)
    warm = gaps >= 0
    u = float(n_unique_lines)
    g = gaps[warm].astype(np.float64)
    out[warm] = u * (1.0 - np.exp(g * np.log1p(-1.0 / u))) if u > 1 else 1.0
    return out


def x_gather_locality(
    a: sp.csr_matrix,
    spec: MachineSpec,
    n_threads: int = 1,
    x_cache_share: float = 0.5,
    distance_scale: float = 1.0,
) -> dict[str, float]:
    """Fraction of x-gather *traffic* served per memory level.

    ``x_cache_share`` is the portion of each cache x effectively owns (the
    rest streams matrix data).  ``distance_scale`` inflates stack distances
    when ``a`` is a scaled-down structural stand-in for a larger matrix
    (a 1/k-rows instance has ~1/k-length reuse gaps, so pass k).  Returns
    fractions over {L1, L2, L3, DRAM} summing to 1.
    """
    if distance_scale <= 0:
        raise ValueError("distance_scale must be positive")
    a = sp.csr_matrix(a)
    if a.nnz == 0:
        raise ValueError("empty matrix has no access stream")
    if not 0 < x_cache_share <= 1:
        raise ValueError("x_cache_share must be in (0, 1]")
    cols = a.indices.astype(np.int64)
    gaps = line_reuse_gaps(cols)
    n_unique = int(np.unique(cols // _LINE_DOUBLES).size)
    dists = expected_stack_distances(gaps, n_unique) * distance_scale

    # Per-thread effective capacities in lines.
    fractions: dict[str, float] = {}
    remaining = np.ones(dists.shape, dtype=bool)
    total = dists.size
    for level in [f"L{l}" for l in spec.cache_levels]:
        cache = spec.cache(int(level[1]))
        share = cache.size_bytes * x_cache_share
        if cache.shared_by > spec.smt:  # shared cache split across threads
            cores_sharing = max(1, min(n_threads, cache.shared_by // spec.smt))
            share /= cores_sharing
        capacity_lines = max(1.0, share / 64.0)
        hit = remaining & (dists <= capacity_lines)
        fractions[level] = hit.sum() / total
        remaining &= ~hit
    fractions["DRAM"] = remaining.sum() / total
    # Normalize away float dust.
    s = sum(fractions.values())
    return {k: v / s for k, v in fractions.items()}
