"""Merge-based CSR SpMV (Merrill & Garland [31]) — real implementation.

The merge formulation treats SpMV as a 2-D merge of the row-pointer array
with the nonzero index sequence: the combined "merge path" of length
``nrows + nnz`` is split into equal chunks, one per thread, so load balance
is perfect regardless of row-length skew.  Each thread walks its diagonal
window, accumulating partial row sums; rows cut by a chunk boundary produce
*carry-out* partials that a sequential fix-up pass adds back.

This is the actual algorithm (binary-searched diagonal split, per-thread
carry-out, fix-up), validated against the reference CSR kernel in the
tests; it runs element-by-element in scalar Python by design — the paper's
observation that Merge SpMV "only exercised the scalar units" is a property
of the algorithm's gather-heavy inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["merge_path_search", "merge_spmv", "MergeStats"]


def merge_path_search(diagonal: int, row_end_offsets: np.ndarray, nnz: int) -> tuple[int, int]:
    """Find the merge-path coordinate (i, j) on ``diagonal``.

    ``i`` counts consumed row-ends, ``j`` counts consumed nonzeros, with
    ``i + j == diagonal``.  Binary search over the standard merge decision
    ``row_end_offsets[i] <= j``.
    """
    n_rows = row_end_offsets.size
    if not 0 <= diagonal <= n_rows + nnz:
        raise ValueError("diagonal outside the merge grid")
    lo = max(0, diagonal - nnz)
    hi = min(diagonal, n_rows)
    while lo < hi:
        mid = (lo + hi) // 2
        if row_end_offsets[mid] <= diagonal - mid - 1:
            lo = mid + 1
        else:
            hi = mid
    return lo, diagonal - lo


@dataclass
class MergeStats:
    """Work-partition diagnostics: items processed per thread."""

    items_per_thread: list[int]
    carries: int

    @property
    def balance(self) -> float:
        """max/mean work ratio — 1.0 is perfect balance."""
        if not self.items_per_thread:
            return 1.0
        mean = sum(self.items_per_thread) / len(self.items_per_thread)
        return max(self.items_per_thread) / mean if mean else 1.0


def merge_spmv(
    a: sp.csr_matrix, x: np.ndarray, n_threads: int = 4
) -> tuple[np.ndarray, MergeStats]:
    """Compute ``y = A @ x`` by merge-path decomposition.

    Returns (y, partition stats).  Matches the reference kernel bit-for-bit
    up to float summation order.
    """
    a = sp.csr_matrix(a)
    n_rows = a.shape[0]
    if x.shape[0] != a.shape[1]:
        raise ValueError("x has the wrong length")
    if n_threads < 1:
        raise ValueError("need at least one thread")
    values, col_idx = a.data, a.indices
    row_end = a.indptr[1:]  # row-end offsets (the merge list A)
    nnz = int(a.nnz)
    y = np.zeros(n_rows, dtype=np.float64)

    total = n_rows + nnz
    per = -(-total // n_threads)  # ceil
    carry_rows: list[int] = []
    carry_vals: list[float] = []
    items: list[int] = []

    for t in range(n_threads):
        d0 = min(t * per, total)
        d1 = min(d0 + per, total)
        i, j = merge_path_search(d0, row_end, nnz)
        i_end, j_end = merge_path_search(d1, row_end, nnz)
        items.append((i_end - i) + (j_end - j))

        acc = 0.0
        # Whole rows that end inside this thread's window.
        while i < i_end:
            while j < j_end and j < row_end[i]:
                acc += values[j] * x[col_idx[j]]  # scalar gather
                j += 1
            if j < row_end[i]:
                break  # window exhausted mid-row
            y[i] += acc
            acc = 0.0
            i += 1
        # Trailing nonzeros belong to row i, which ends in a later window.
        while j < j_end:
            acc += values[j] * x[col_idx[j]]
            j += 1
        if acc != 0.0 and i < n_rows:
            carry_rows.append(i)
            carry_vals.append(acc)

    # Sequential fix-up of boundary-cut rows.
    for r, v in zip(carry_rows, carry_vals):
        if r < n_rows:
            y[r] += v
    return y, MergeStats(items_per_thread=items, carries=len(carry_rows))
