"""SpMV kernels: the reference CSR implementation, the MKL-like vectorized
path, and descriptor builders feeding the execution simulator (§V-D).

Two algorithm models, matching the paper's pair:

- **mkl**: row-wise CSR exploiting AVX-512 — vectorized value/index streams,
  gather loads for x, FMA accumulation.  ("the ability of MKL SpMV to take
  advantage of the Intel CPU's AVX512 capabilities")
- **merge**: merge-based CSR (see :mod:`repro.workloads.merge_spmv`) —
  scalar inner loop, more retired instructions and memory instructions per
  nonzero.  ("Merge SpMV only exercised the scalar units")

Descriptors combine exact operation counts with the reuse-distance locality
of the x-gather stream, so RCM-reordered matrices genuinely run faster on
the simulated machine — the 22 % effect of Fig 7.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.machine.kernel import KernelDescriptor
from repro.machine.spec import ISA, MachineSpec

from .locality import x_gather_locality

__all__ = ["spmv_csr", "spmv_descriptor", "ALGORITHMS"]

ALGORITHMS = ("mkl", "merge")


def spmv_csr(a: sp.csr_matrix, x: np.ndarray) -> np.ndarray:
    """Reference CSR SpMV, written against the raw CSR arrays.

    Vectorized the way an "MKL-like" kernel is: one fused multiply over the
    value/gather streams, then segmented row reduction.
    """
    a = sp.csr_matrix(a)
    if x.shape[0] != a.shape[1]:
        raise ValueError("x has the wrong length")
    products = a.data * x[a.indices]
    # Segmented sum over rows; reduceat misbehaves on empty rows, so use
    # cumulative sums bracketed at row pointers.
    csum = np.concatenate([[0.0], np.cumsum(products)])
    return csum[a.indptr[1:]] - csum[a.indptr[:-1]]


def _best_isa(spec: MachineSpec) -> ISA:
    for isa in (ISA.AVX512, ISA.AVX2, ISA.SSE):
        if isa in spec.isas:
            return isa
    return ISA.SCALAR


def spmv_descriptor(
    a: sp.csr_matrix,
    spec: MachineSpec,
    algorithm: str = "mkl",
    n_threads: int = 1,
    nnz_scale: float = 1.0,
    name: str | None = None,
) -> KernelDescriptor:
    """Operation-count descriptor for one SpMV execution.

    ``nnz_scale`` lets a small structural stand-in represent a full Table IV
    matrix: locality is analyzed on ``a`` (structure is scale-invariant),
    while FLOP/byte counts are multiplied up to the real size.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown SpMV algorithm {algorithm!r}; known: {ALGORITHMS}")
    if nnz_scale <= 0:
        raise ValueError("nnz_scale must be positive")
    a = sp.csr_matrix(a)
    nnz = float(a.nnz) * nnz_scale
    rows = float(a.shape[0]) * nnz_scale

    x_loc = x_gather_locality(a, spec, n_threads=n_threads, distance_scale=nnz_scale)

    if algorithm == "mkl":
        isa = _best_isa(spec)
        lanes = isa.dp_lanes
        vec_bytes = isa.vector_bytes
        # Streams in vector units: values (8 B/nnz), column indices
        # (4 B/nnz), x gathers (one vector-gather per lane group), y update.
        loads = (
            nnz * 8 / vec_bytes  # values
            + nnz * 4 / vec_bytes  # column indices
            + nnz / lanes  # x gathers
            + rows * 8 / vec_bytes  # y read (beta accumulate)
        )
        stores = rows * 8 / vec_bytes
        flops = {isa: 2.0 * nnz}
        overhead = 0.25
        mem_isa = isa
        mem_eff = 0.92  # vector gathers come close to streaming bandwidth
    else:  # merge
        # Scalar loop: per nonzero it loads the value, the column index and
        # the gathered x element individually, plus merge bookkeeping reads
        # of the row-pointer array; the index is 4 B so it counts as half a
        # scalar (8 B) slot to keep the byte accounting exact.
        loads = nnz * 1.0 + nnz * 0.5 + nnz * 1.0 + rows * 2.0
        stores = rows * 1.0
        flops = {ISA.SCALAR: 2.0 * nnz}
        overhead = 0.9  # merge-path control flow and carry handling
        mem_isa = ISA.SCALAR
        mem_eff = 0.62  # latency-bound scalar gathers under-use bandwidth

    # Traffic split: matrix streams have no reuse (DRAM for Table IV sizes,
    # cache for tiny ones); x-gather traffic follows the reuse analysis.
    stream_bytes = nnz * 12 + rows * 16  # values + colidx + y r/w
    x_bytes = nnz * 8
    total_bytes = stream_bytes + x_bytes
    ws = int(nnz * 12 + rows * 24)
    stream_level = spec.memory_level_for(ws, n_threads)
    locality: dict[str, float] = {}
    for lvl, frac in x_loc.items():
        locality[lvl] = locality.get(lvl, 0.0) + frac * x_bytes / total_bytes
    locality[stream_level] = locality.get(stream_level, 0.0) + stream_bytes / total_bytes
    s = sum(locality.values())
    locality = {k: v / s for k, v in locality.items()}

    return KernelDescriptor(
        name=name or f"spmv_{algorithm}",
        flops_dp=flops,
        fma_fraction=1.0,
        loads=loads,
        stores=stores,
        mem_isa=mem_isa,
        working_set_bytes=ws,
        locality=locality,
        overhead_instr_ratio=overhead,
        mem_efficiency=mem_eff,
    )
