"""HPCG [26] — High Performance Conjugate Gradient BenchmarkInterface
workload.

A real (small-scale) HPCG: 27-point stencil operator on a 3-D grid, plain
CG iterations with exact FLOP accounting per phase (SpMV, WAXPBY, dot
products), executed both numerically (for the residual check) and on the
simulated machine (for the GFLOP/s rating).  Output follows the HPCG
rating-line format P-MoVE parses into BenchmarkResult entries.
"""

from __future__ import annotations

import re

import numpy as np
import scipy.sparse as sp

from repro.machine.kernel import KernelDescriptor
from repro.machine.simulator import SimulatedMachine
from repro.machine.spec import ISA

__all__ = ["build_stencil", "hpcg_descriptor", "run_hpcg", "parse_hpcg_output"]


def build_stencil(nx: int, ny: int, nz: int) -> sp.csr_matrix:
    """27-point Laplacian-like stencil on an nx × ny × nz grid."""
    if min(nx, ny, nz) < 2:
        raise ValueError("grid must be at least 2^3")
    n = nx * ny * nz
    ids = np.arange(n).reshape(nx, ny, nz)
    rows, cols, vals = [], [], []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                src = ids[
                    max(0, -dx) : nx - max(0, dx),
                    max(0, -dy) : ny - max(0, dy),
                    max(0, -dz) : nz - max(0, dz),
                ].ravel()
                dst = ids[
                    max(0, dx) : nx + min(0, dx) or nx,
                    max(0, dy) : ny + min(0, dy) or ny,
                    max(0, dz) : nz + min(0, dz) or nz,
                ].ravel()
                rows.append(src)
                cols.append(dst)
                vals.append(np.full(src.size, 26.0 if dx == dy == dz == 0 else -1.0))
    a = sp.coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    ).tocsr()
    a.sum_duplicates()
    return a


def hpcg_descriptor(a: sp.csr_matrix, n_iterations: int, spec_isas) -> KernelDescriptor:
    """Operation counts of a full CG run on the stencil operator."""
    if n_iterations < 1:
        raise ValueError("need at least one CG iteration")
    n = float(a.shape[0])
    nnz = float(a.nnz)
    isa = ISA.AVX2 if ISA.AVX2 in spec_isas else ISA.SCALAR
    lanes = isa.dp_lanes
    # Per iteration: SpMV (2 nnz) + 2 dots (4 n) + 3 waxpby (6 n).
    flops = n_iterations * (2 * nnz + 10 * n)
    loads = n_iterations * (nnz * 1.5 + 8 * n) / lanes
    stores = n_iterations * 4 * n / lanes
    return KernelDescriptor(
        name="hpcg",
        flops_dp={isa: flops},
        fma_fraction=0.5,
        loads=loads,
        stores=stores,
        mem_isa=isa,
        working_set_bytes=int(nnz * 12 + n * 6 * 8),
        overhead_instr_ratio=0.3,
        mem_efficiency=0.85,
    )


def _cg(a: sp.csr_matrix, b: np.ndarray, n_iter: int) -> tuple[np.ndarray, float]:
    """Plain conjugate gradient; returns (x, final relative residual)."""
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rs = float(r @ r)
    b_norm = float(np.sqrt(b @ b)) or 1.0
    for _ in range(n_iter):
        ap = a @ p
        denom = float(p @ ap)
        if denom == 0.0:
            break
        alpha = rs / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) / b_norm < 1e-12:
            rs = rs_new
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, float(np.sqrt(rs) / b_norm)


def run_hpcg(
    machine: SimulatedMachine,
    nx: int = 16,
    ny: int = 16,
    nz: int = 16,
    n_iterations: int = 50,
    cpu_ids: list[int] | None = None,
) -> tuple[dict[str, float], str]:
    """Run HPCG: numerically (residual) and on the machine (GFLOP/s)."""
    a = build_stencil(nx, ny, nz)
    rng = np.random.default_rng(7)
    b = rng.normal(size=a.shape[0])
    _, residual = _cg(a, b, n_iterations)
    desc = hpcg_descriptor(a, n_iterations, machine.spec.isas)
    run = machine.run_kernel(desc, cpu_ids)
    gflops = desc.total_flops / run.runtime_s / 1e9
    results = {
        "gflops": gflops,
        "residual": residual,
        "runtime_s": run.runtime_s,
        "n": float(a.shape[0]),
    }
    text = (
        "HPCG-Benchmark version=3.1\n"
        f"Global Problem Dimensions: nx={nx} ny={ny} nz={nz}\n"
        f"Iteration Count Information: total={n_iterations}\n"
        f"Scaled Residual [{residual:.6e}]\n"
        f"Final Summary: HPCG result is VALID with a GFLOP/s rating of={gflops:.4f}\n"
    )
    return results, text


def parse_hpcg_output(text: str) -> dict[str, float]:
    """Parse the HPCG rating line + residual."""
    out: dict[str, float] = {}
    if m := re.search(r"GFLOP/s rating of=([\d.]+)", text):
        out["gflops"] = float(m.group(1))
    if m := re.search(r"Scaled Residual \[([\d.eE+-]+)\]", text):
        out["residual"] = float(m.group(1))
    if "gflops" not in out:
        raise ValueError("not HPCG output")
    return out
