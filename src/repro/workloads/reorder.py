"""Sparse-matrix reorderings: RCM (own implementation), degree, random.

The paper's Fig 2 level-view compares SpMV under orderings *none, rcm,
degree, random*, and Figs 7–8 quantify the RCM benefit (~22 % faster).
RCM here is implemented from scratch (Cuthill–McKee with a pseudo-peripheral
start, reversed) and validated against SciPy's implementation in the tests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["ORDERINGS", "rcm", "degree_order", "random_order", "apply_ordering",
           "reorder", "bandwidth"]

ORDERINGS = ("none", "rcm", "degree", "random")


def _sym_pattern(a: sp.csr_matrix) -> sp.csr_matrix:
    """Structurally symmetric pattern (RCM operates on the graph)."""
    pattern = a + a.T
    pattern = pattern.tocsr()
    pattern.sort_indices()
    return pattern


def _bfs_levels(indptr: np.ndarray, indices: np.ndarray, start: int, n: int):
    """BFS returning (order, level-of-node, eccentricity)."""
    level = np.full(n, -1, dtype=np.int64)
    level[start] = 0
    frontier = [start]
    order = [start]
    depth = 0
    while frontier:
        nxt = []
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                if level[v] < 0:
                    level[v] = level[u] + 1
                    nxt.append(int(v))
                    order.append(int(v))
        if nxt:
            depth += 1
        frontier = nxt
    return order, level, depth


def _pseudo_peripheral(indptr: np.ndarray, indices: np.ndarray, start: int, n: int) -> int:
    """George–Liu style: walk to a node of maximal eccentricity."""
    node = start
    _, level, depth = _bfs_levels(indptr, indices, node, n)
    for _ in range(8):  # converges in a couple of sweeps
        last_level = np.flatnonzero(level == depth)
        if last_level.size == 0:
            break
        degrees = indptr[last_level + 1] - indptr[last_level]
        candidate = int(last_level[np.argmin(degrees)])
        _, lvl2, depth2 = _bfs_levels(indptr, indices, candidate, n)
        if depth2 <= depth:
            break
        node, level, depth = candidate, lvl2, depth2
    return node


def rcm(a: sp.csr_matrix) -> np.ndarray:
    """Reverse Cuthill–McKee permutation: ``perm[k]`` = old index of the
    node placed at new position ``k``."""
    a = _sym_pattern(sp.csr_matrix(a))
    n = a.shape[0]
    indptr, indices = a.indptr, a.indices
    degrees = indptr[1:] - indptr[:-1]
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    for comp_start in np.argsort(degrees, kind="stable"):
        if visited[comp_start]:
            continue
        start = _pseudo_peripheral(indptr, indices, int(comp_start), n)
        # Cuthill–McKee: BFS, neighbours in increasing-degree order.
        visited[start] = True
        queue = [start]
        qi = 0
        while qi < len(queue):
            u = queue[qi]
            qi += 1
            order.append(u)
            neigh = indices[indptr[u] : indptr[u + 1]]
            neigh = neigh[~visited[neigh]]
            if neigh.size:
                neigh = neigh[np.argsort(degrees[neigh], kind="stable")]
                visited[neigh] = True
                queue.extend(int(v) for v in neigh)
    return np.array(order[::-1], dtype=np.int64)  # the "reverse" in RCM


def degree_order(a: sp.csr_matrix) -> np.ndarray:
    """Nodes sorted by ascending degree."""
    a = _sym_pattern(sp.csr_matrix(a))
    degrees = a.indptr[1:] - a.indptr[:-1]
    return np.argsort(degrees, kind="stable").astype(np.int64)


def random_order(a: sp.csr_matrix, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).permutation(a.shape[0]).astype(np.int64)


def apply_ordering(a: sp.csr_matrix, perm: np.ndarray) -> sp.csr_matrix:
    """Symmetric permutation ``A[perm, :][:, perm]``."""
    a = sp.csr_matrix(a)
    n = a.shape[0]
    if sorted(perm.tolist()) != list(range(n)):
        raise ValueError("perm is not a permutation of the matrix indices")
    inv = np.empty_like(perm)
    inv[perm] = np.arange(n)
    coo = a.tocoo()
    out = sp.coo_matrix(
        (coo.data, (inv[coo.row], inv[coo.col])), shape=a.shape
    ).tocsr()
    out.sort_indices()
    return out


def reorder(a: sp.csr_matrix, ordering: str, seed: int = 0) -> sp.csr_matrix:
    """Apply one of the paper's orderings by name."""
    if ordering == "none":
        return sp.csr_matrix(a)
    if ordering == "rcm":
        return apply_ordering(a, rcm(a))
    if ordering == "degree":
        return apply_ordering(a, degree_order(a))
    if ordering == "random":
        return apply_ordering(a, random_order(a, seed=seed))
    raise ValueError(f"unknown ordering {ordering!r}; known: {ORDERINGS}")


def bandwidth(a: sp.csr_matrix) -> int:
    """Maximum |i - j| over stored entries — what RCM minimizes."""
    coo = sp.coo_matrix(a)
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.row - coo.col).max())
