"""Cache-Aware Roofline Model: KB-configured microbenchmarks, model
construction and persistence, the live-CARM panel, and roofline rendering
(§IV-B, Figs 8–9)."""

from .live import LivePoint, assign_phases, live_carm_points, live_carm_points_from_pmu
from .microbench import CarmMeasurements, CarmMicrobenchSuite, representative_thread_counts
from .model import CarmModel, load_from_kb, save_to_kb
from .plot import render_carm_svg

__all__ = [
    "CarmMeasurements",
    "CarmMicrobenchSuite",
    "CarmModel",
    "LivePoint",
    "assign_phases",
    "live_carm_points",
    "live_carm_points_from_pmu",
    "load_from_kb",
    "render_carm_svg",
    "representative_thread_counts",
    "save_to_kb",
]
