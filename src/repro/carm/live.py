"""The live-CARM panel (§IV-B2, Figs 8–9).

"This functionality is achieved by automatically configuring PMU events
based on the underlying architecture of a system, in order to accurately
calculate the live Arithmetic Intensity (AI) and live-GFLOPS of the
system."

Given an ObservationInterface and the time series it links to, each sampling
window becomes one application dot:

- **GFLOPS** — "mapping and adding all of the available FLOP events", i.e.
  the Abstraction Layer's ``FLOPS_DP`` formula over the window's counts;
- **bytes** — load/store event counts times an access width "inferred from
  the ratios of different FP instructions (scalar, SSE, AVX2, AVX512)";
- **AI** — FLOPs / bytes.

Points carry timestamps so execution phases can be boxed on the plot, as
the colored squares of Fig 8 do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.influx import InfluxDB
from repro.pmu.abstraction import AbstractionLayer, UnsupportedEventError, pmu_utils
from repro.pmu.counters import PMU

__all__ = ["LivePoint", "live_carm_points", "live_carm_points_from_pmu", "assign_phases"]

_ISA_WIDTH_EVENTS = {
    # FP_ARITH-style event suffix -> access width in bytes.
    "SCALAR_DOUBLE": 8,
    "128B_PACKED_DOUBLE": 16,
    "256B_PACKED_DOUBLE": 32,
    "512B_PACKED_DOUBLE": 64,
}


@dataclass(frozen=True)
class LivePoint:
    """One live-CARM application dot."""

    t: float
    window_s: float
    flops: float
    bytes_moved: float
    phase: str = ""

    @property
    def gflops(self) -> float:
        return self.flops / self.window_s / 1e9 if self.window_s else 0.0

    @property
    def ai(self) -> float:
        return self.flops / self.bytes_moved if self.bytes_moved else float("inf")


def _series_by_event(influx: InfluxDB, database: str, observation: dict) -> dict[str, list[tuple[float, float]]]:
    """event name -> [(t, summed-across-instances value)] for one observation."""
    out: dict[str, list[tuple[float, float]]] = {}
    for m in observation["metrics"]:
        event = m.get("event")
        if not event:
            continue  # software metric rows are not PMU events
        pts = influx.points(database, m["measurement"], tags={"tag": observation["tag"]})
        series = []
        for p in pts:
            vals = [p.fields[f] for f in m["fields"] if f in p.fields]
            series.append((p.time, float(sum(vals))))
        out[event] = series
    return out


def _infer_width_bytes(window_counts: dict[str, float]) -> float:
    """Access width from the FP-instruction mix (§IV-B2)."""
    weighted = total = 0.0
    for event, count in window_counts.items():
        for suffix, width in _ISA_WIDTH_EVENTS.items():
            if event.endswith(suffix):
                weighted += count * width
                total += count
    return weighted / total if total > 0 else 8.0


def live_carm_points(
    influx: InfluxDB,
    database: str,
    observation: dict,
    pmu_name: str,
    layer: AbstractionLayer = pmu_utils,
) -> list[LivePoint]:
    """Turn one observation's PMU series into live-CARM dots."""
    if observation.get("@type") != "ObservationInterface":
        raise ValueError("live-CARM needs an ObservationInterface entry")
    series = _series_by_event(influx, database, observation)
    if not series:
        raise ValueError("observation has no PMU event series")
    flops_formula = layer.formula(pmu_name, "FLOPS_DP")
    loads_formula = layer.formula(pmu_name, "LOADS")
    stores_formula = layer.formula(pmu_name, "STORES")

    # Align on the timestamps of the first series; values are per-window
    # deltas by the sampler's contract.
    anchor = next(iter(series.values()))
    points: list[LivePoint] = []
    prev_t = observation["time"]["start"]
    for i, (t, _) in enumerate(anchor):
        window_counts: dict[str, float] = {}
        for event, s in series.items():
            if i < len(s) and abs(s[i][0] - t) < 1e-9:
                window_counts[event] = s[i][1]
            else:  # series lost this tick; treat as zero
                window_counts[event] = 0.0

        def resolve(ev: str) -> float:
            return window_counts.get(ev, 0.0)

        flops = flops_formula.evaluate(resolve)
        mem_ops = loads_formula.evaluate(resolve) + stores_formula.evaluate(resolve)
        width = _infer_width_bytes(window_counts)
        window = t - prev_t
        prev_t = t
        if window <= 0:
            continue
        points.append(
            LivePoint(t=t, window_s=window, flops=flops, bytes_moved=mem_ops * width)
        )
    return points


def live_carm_points_from_pmu(
    pmu: PMU,
    pmu_name: str,
    t0: float,
    t1: float,
    freq_hz: float,
    layer: AbstractionLayer = pmu_utils,
) -> list[LivePoint]:
    """Live-CARM dots straight off the programmed PMU, no DB round-trip.

    The dashboard path (:func:`live_carm_points`) replays series the
    sampler already shipped to Influx; this is the in-situ variant — the
    panel observing the machine directly, window by window.  Each window
    issues **one** batched counter read
    (:meth:`~repro.pmu.counters.PMU.read_events_all_cpus`, a single
    timeline pass) for every event the FLOPS/LOADS/STORES formulas need,
    instead of events × cpus scalar reads per dot.
    """
    if freq_hz <= 0:
        raise ValueError("live-CARM sampling frequency must be positive")
    if t1 <= t0:
        raise ValueError("empty live-CARM window")
    flops_formula = layer.formula(pmu_name, "FLOPS_DP")
    loads_formula = layer.formula(pmu_name, "LOADS")
    stores_formula = layer.formula(pmu_name, "STORES")
    events = [e for e in layer.hw_events_needed(
        pmu_name, ["FLOPS_DP", "LOADS", "STORES"]
    ) if e in pmu.session]

    period = 1.0 / freq_hz
    n_windows = max(1, int(round((t1 - t0) * freq_hz)))
    points: list[LivePoint] = []
    prev_t = t0
    for k in range(1, n_windows + 1):
        t = min(t0 + k * period, t1)
        window = t - prev_t
        if window <= 0:
            continue
        per_event = pmu.read_events_all_cpus(events, prev_t, t)
        window_counts = {e: sum(vals.values()) for e, vals in per_event.items()}

        def resolve(ev: str) -> float:
            return window_counts.get(ev, 0.0)

        flops = flops_formula.evaluate(resolve)
        mem_ops = loads_formula.evaluate(resolve) + stores_formula.evaluate(resolve)
        width = _infer_width_bytes(window_counts)
        points.append(
            LivePoint(t=t, window_s=window, flops=flops, bytes_moved=mem_ops * width)
        )
        prev_t = t
    return points


def assign_phases(
    points: list[LivePoint], phases: list[tuple[str, float, float]]
) -> list[LivePoint]:
    """Label points by execution phase [(name, t0, t1)] — Fig 8's boxes."""
    out = []
    for p in points:
        label = ""
        for name, t0, t1 in phases:
            if t0 <= p.t <= t1:
                label = name
                break
        out.append(LivePoint(p.t, p.window_s, p.flops, p.bytes_moved, phase=label))
    return out
