"""CARM microbenchmarks (§IV-B1).

P-MoVE ships "custom micro-benchmarks in x86 assembly, designed to
experimentally assess the realistically attainable maximum performance of a
given system, i.e., the sustainable bandwidth for different levels of memory
hierarchy and the peak throughput of computational units", timed with the
TSC.  Here each microbenchmark is a kernel descriptor auto-configured from
the **KB** (cache sizes, available ISAs — never the spec object), executed
on the simulated machine, and timed with the simulated TSC.

To bound benchmarking cost, the paper "generates a subset of the most
representative thread counts"; :func:`representative_thread_counts` picks
{1, 2, one socket, all cores, all threads}-style points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.kb import KnowledgeBase
from repro.machine.kernel import KernelDescriptor
from repro.machine.simulator import SimulatedMachine
from repro.machine.spec import ISA

__all__ = ["CarmMeasurements", "representative_thread_counts", "CarmMicrobenchSuite"]


@dataclass
class CarmMeasurements:
    """Measured roofs for one (system, thread count) configuration."""

    hostname: str
    n_threads: int
    bandwidth_gbs: dict[str, float] = field(default_factory=dict)  # level -> GB/s
    peak_gflops: dict[str, float] = field(default_factory=dict)  # isa -> GFLOP/s

    def to_dict(self) -> dict:
        return {
            "hostname": self.hostname,
            "n_threads": self.n_threads,
            "bandwidth_gbs": dict(self.bandwidth_gbs),
            "peak_gflops": dict(self.peak_gflops),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CarmMeasurements":
        return cls(
            hostname=d["hostname"],
            n_threads=d["n_threads"],
            bandwidth_gbs=dict(d["bandwidth_gbs"]),
            peak_gflops=dict(d["peak_gflops"]),
        )


def representative_thread_counts(n_cores: int, n_sockets: int, smt: int) -> list[int]:
    """The reduced thread-count sweep (§IV-B1)."""
    cores_per_socket = n_cores // max(1, n_sockets)
    cand = {1, 2, max(1, cores_per_socket // 2), cores_per_socket, n_cores,
            n_cores * smt}
    return sorted(c for c in cand if c >= 1)


class CarmMicrobenchSuite:
    """Auto-configured bandwidth + FP-peak microbenchmarks."""

    def __init__(self, machine: SimulatedMachine, kb: KnowledgeBase) -> None:
        if kb.hostname != machine.spec.hostname:
            raise ValueError("KB and machine describe different hosts")
        self.machine = machine
        self.kb = kb
        # Configuration comes from the KB, as the paper requires.
        self.cache_sizes = self._cache_sizes_from_kb()
        self.isas = [ISA(i) for i in kb.probe["cpu"]["isas"]]

    def _cache_sizes_from_kb(self) -> dict[str, int]:
        sizes: dict[str, int] = {}
        for c in self.kb.probe["topology"]["caches"]:
            lvl = f"L{c['level']}"
            if c.get("kind") in (None, "data", "unified"):
                sizes[lvl] = c["size_bytes"]
        if not sizes:
            raise ValueError("KB has no cache topology for CARM configuration")
        return sizes

    # ------------------------------------------------------------------
    def _bandwidth_kernel(self, level: str, n_threads: int) -> KernelDescriptor:
        """Streaming load/store kernel whose working set sits in ``level``."""
        isa = max(self.isas, key=lambda i: i.dp_lanes)  # widest vectors
        lanes = isa.dp_lanes
        if level == "DRAM":
            ws = 64 * 1024 * 1024 * max(1, n_threads)
        else:
            # Half the cache per sharing thread keeps the set resident.
            ws = int(self.cache_sizes[level] * 0.45) * max(1, n_threads)
        n_elems = max(1024, int(2e7))
        return KernelDescriptor(
            name=f"carm_bw_{level.lower()}",
            flops_dp={isa: float(n_elems)},
            loads=2 * n_elems / lanes / 3,
            stores=n_elems / lanes / 3,
            mem_isa=isa,
            working_set_bytes=ws,
            locality={level: 1.0},
            overhead_instr_ratio=0.05,
        )

    def _flops_kernel(self, isa: ISA) -> KernelDescriptor:
        """Register-resident FMA chain: pure compute."""
        n = int(4e8)
        return KernelDescriptor(
            name=f"carm_fp_{isa.value}",
            flops_dp={isa: float(n)},
            fma_fraction=1.0,
            loads=n / isa.dp_lanes / 64,
            stores=0,
            mem_isa=isa,
            working_set_bytes=4096,
            locality={"L1": 1.0},
            overhead_instr_ratio=0.02,
        )

    # ------------------------------------------------------------------
    def _timed_run(self, desc: KernelDescriptor, cpu_ids: list[int]) -> float:
        """Run a kernel and time it with the TSC (§IV-B1's methodology)."""
        tsc = self.machine.tsc
        c0 = tsc.rdtsc()
        self.machine.run_kernel(desc, cpu_ids, runtime_noise_std=0.004)
        c1 = tsc.rdtsc()
        return tsc.measure(c0, c1)

    def run(self, n_threads: int, levels: list[str] | None = None) -> CarmMeasurements:
        """Measure all roofs at one thread count."""
        spec = self.machine.spec
        if not 1 <= n_threads <= spec.n_threads:
            raise ValueError(f"n_threads out of range for {spec.hostname}")
        cpu_ids = list(range(min(n_threads, spec.n_cores)))
        if n_threads > spec.n_cores:  # SMT siblings
            cpu_ids += [spec.n_cores + i for i in range(n_threads - spec.n_cores)]
        meas = CarmMeasurements(hostname=spec.hostname, n_threads=n_threads)
        for level in levels or list(self.cache_sizes) + ["DRAM"]:
            desc = self._bandwidth_kernel(level, n_threads)
            t = self._timed_run(desc, cpu_ids)
            meas.bandwidth_gbs[level] = desc.bytes_total / t / 1e9
        for isa in self.isas:
            if isa == ISA.SCALAR and len(self.isas) > 1:
                pass  # scalar peak still measured; keep all
            desc = self._flops_kernel(isa)
            t = self._timed_run(desc, cpu_ids)
            meas.peak_gflops[isa.value] = desc.total_flops / t / 1e9
        return meas

    def sweep(self, thread_counts: list[int] | None = None) -> list[CarmMeasurements]:
        """Run the representative sweep (or an explicit list)."""
        spec = self.machine.spec
        counts = thread_counts or representative_thread_counts(
            spec.n_cores, spec.n_sockets, spec.smt
        )
        return [self.run(t) for t in counts]
