"""The Cache-Aware Roofline Model (CARM [17]) built from microbenchmark
measurements, persisted in and reconstructed from the KB (§IV-B1).

CARM characterizes attainable performance as
``min(peak_flops, AI * B_level)`` per memory level, with AI measured against
*total* core–memory traffic (all levels), which is what distinguishes it
from the classic DRAM-only roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kb import KnowledgeBase
from repro.core.observation import make_benchmark, make_benchmark_result

from .microbench import CarmMeasurements

__all__ = ["CarmModel", "save_to_kb", "load_from_kb"]

_LEVEL_ORDER = ("L1", "L2", "L3", "DRAM")


@dataclass
class CarmModel:
    """Roofs of one (system, thread count, ISA) configuration."""

    hostname: str
    n_threads: int
    bandwidth_gbs: dict[str, float]
    peak_gflops: dict[str, float]

    def __post_init__(self) -> None:
        if not self.bandwidth_gbs or not self.peak_gflops:
            raise ValueError("CARM needs at least one bandwidth and one peak roof")

    @classmethod
    def from_measurements(cls, m: CarmMeasurements) -> "CarmModel":
        return cls(
            hostname=m.hostname,
            n_threads=m.n_threads,
            bandwidth_gbs=dict(m.bandwidth_gbs),
            peak_gflops=dict(m.peak_gflops),
        )

    # ------------------------------------------------------------------
    @property
    def levels(self) -> list[str]:
        return [l for l in _LEVEL_ORDER if l in self.bandwidth_gbs]

    def peak(self, isa: str | None = None) -> float:
        """Peak FLOP roof for one ISA (default: the highest roof)."""
        if isa is None:
            return max(self.peak_gflops.values())
        try:
            return self.peak_gflops[isa]
        except KeyError:
            raise KeyError(
                f"no peak measured for ISA {isa!r}; have {sorted(self.peak_gflops)}"
            ) from None

    def attainable(self, ai: float, level: str = "DRAM", isa: str | None = None) -> float:
        """CARM-attainable GFLOP/s at arithmetic intensity ``ai``."""
        if ai <= 0:
            raise ValueError("arithmetic intensity must be positive")
        if level not in self.bandwidth_gbs:
            raise KeyError(f"no bandwidth roof for {level!r}")
        return min(self.peak(isa), ai * self.bandwidth_gbs[level])

    def ridge_point(self, level: str = "DRAM", isa: str | None = None) -> float:
        """AI where the ``level`` bandwidth roof meets the FP roof."""
        return self.peak(isa) / self.bandwidth_gbs[level]

    def bounding_level(self, ai: float, gflops: float) -> str:
        """The memory level whose roof bounds this point — i.e. the level
        the data appears to be served from, scanning outermost (DRAM)
        inward.  A point above the DRAM roof but under the L3 roof reads
        as "L3-resident"; this is the data-locality readout of Figs 8-9
        ("the performance surpassing the L2 roof" => served from L1).
        Points at the horizontal FP roof read as "peak" (Fig 9's
        PeakFlops); points above every roof as "above_roofs"."""
        if gflops >= 0.98 * self.peak():
            return "peak"
        for level in reversed(self.levels):
            if gflops <= self.attainable(ai, level) * 1.02:
                return level
        return "above_roofs"

    def to_dict(self) -> dict:
        return {
            "hostname": self.hostname,
            "n_threads": self.n_threads,
            "bandwidth_gbs": dict(self.bandwidth_gbs),
            "peak_gflops": dict(self.peak_gflops),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CarmModel":
        return cls(
            hostname=d["hostname"],
            n_threads=d["n_threads"],
            bandwidth_gbs=dict(d["bandwidth_gbs"]),
            peak_gflops=dict(d["peak_gflops"]),
        )


def save_to_kb(kb: KnowledgeBase, meas: CarmMeasurements, compiler: str = "gcc") -> dict:
    """Store microbenchmark results as a BenchmarkInterface entry so the
    CARM plot can be rebuilt "without the need to re-run all the
    microbenchmarks" (§IV-B1)."""
    results = [
        make_benchmark_result(f"bandwidth_{lvl}", bw, "GB/s")
        for lvl, bw in sorted(meas.bandwidth_gbs.items())
    ] + [
        make_benchmark_result(f"peak_{isa}", gf, "GFLOP/s")
        for isa, gf in sorted(meas.peak_gflops.items())
    ]
    entry = make_benchmark(
        host_seg=kb.hostname,
        index=len(kb.entries_of_type("BenchmarkInterface")),
        name="CARM",
        compiler=compiler,
        command=f"carm_bench -t {meas.n_threads}",
        results=results,
        parameters={"n_threads": meas.n_threads},
    )
    return kb.append_entry(entry)


def load_from_kb(kb: KnowledgeBase, n_threads: int) -> CarmModel:
    """Reconstruct the CARM for one thread count from KB entries."""
    for entry in kb.entries_of_type("BenchmarkInterface"):
        if entry.get("name") == "CARM" and entry["parameters"].get("n_threads") == n_threads:
            bw: dict[str, float] = {}
            peak: dict[str, float] = {}
            for r in entry["results"]:
                metric = r["metric"]
                if metric.startswith("bandwidth_"):
                    bw[metric.removeprefix("bandwidth_")] = r["value"]
                elif metric.startswith("peak_"):
                    peak[metric.removeprefix("peak_")] = r["value"]
            return CarmModel(
                hostname=kb.hostname, n_threads=n_threads,
                bandwidth_gbs=bw, peak_gflops=peak,
            )
    raise KeyError(f"no CARM entry for {n_threads} threads in the KB")
