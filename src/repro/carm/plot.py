"""Roofline plot rendering: the live-CARM panel as an SVG (Figs 8–9).

Log-log axes, one bandwidth roof per memory level, one horizontal FP roof
per ISA, application dots colored by execution phase, and a bounding box
per phase (the colored squares of Fig 8).
"""

from __future__ import annotations

import math

from repro.viz.svg import PALETTE, SvgCanvas

from .live import LivePoint
from .model import CarmModel

__all__ = ["render_carm_svg"]


def render_carm_svg(
    model: CarmModel,
    points: list[LivePoint] | None = None,
    width: int = 720,
    height: int = 420,
    title: str | None = None,
    phase_boxes: bool = True,
) -> str:
    """Render a CARM plot with optional live application dots."""
    points = points or []
    c = SvgCanvas(width, height)
    ml, mr, mt, mb = 64, 16, 34, 42
    pw, ph = width - ml - mr, height - mt - mb
    c.text(12, 20, title or f"CARM — {model.hostname} ({model.n_threads} threads)", size=13)

    peak = model.peak()
    # Axis ranges: decade-aligned, covering roofs and dots.
    ais = [p.ai for p in points if math.isfinite(p.ai) and p.ai > 0]
    gfs = [p.gflops for p in points if p.gflops > 0]
    x_lo = min([0.01] + [min(ais)] if ais else [0.01]) / 2
    x_hi = max([model.ridge_point(model.levels[-1]) * 8] + ais) * 2
    y_hi = peak * 2
    y_lo = min([x_lo * min(model.bandwidth_gbs.values())] + gfs) / 2

    lx0, lx1 = math.log10(x_lo), math.log10(x_hi)
    ly0, ly1 = math.log10(y_lo), math.log10(y_hi)

    def sx(ai: float) -> float:
        return ml + (math.log10(ai) - lx0) / (lx1 - lx0) * pw

    def sy(gf: float) -> float:
        return mt + (1 - (math.log10(gf) - ly0) / (ly1 - ly0)) * ph

    # Gridlines at decades.
    for d in range(int(math.floor(lx0)), int(math.ceil(lx1)) + 1):
        x = sx(10.0**d)
        if ml <= x <= ml + pw:
            c.line(x, mt, x, mt + ph, color="#333", dash="2,3")
            c.text(x, mt + ph + 16, f"1e{d}", anchor="middle", size=10)
    for d in range(int(math.floor(ly0)), int(math.ceil(ly1)) + 1):
        y = sy(10.0**d)
        if mt <= y <= mt + ph:
            c.line(ml, y, ml + pw, y, color="#333", dash="2,3")
            c.text(ml - 6, y + 4, f"1e{d}", anchor="end", size=10)
    c.text(ml + pw / 2, height - 8, "Arithmetic Intensity (FLOP/byte)", anchor="middle", size=11)
    c.text(14, mt - 10, "GFLOP/s", size=11)

    # Bandwidth roofs (diagonals clipped at the ISA peak).
    for i, level in enumerate(model.levels):
        bw = model.bandwidth_gbs[level]
        color = PALETTE[i % len(PALETTE)]
        ridge = peak / bw
        a0 = max(x_lo, y_lo / bw)
        pts = []
        for ai in (a0, min(ridge, x_hi)):
            pts.append((sx(ai), sy(min(peak, ai * bw))))
        if ridge < x_hi:
            pts.append((sx(x_hi), sy(peak)))
        c.polyline(pts, color=color, width=1.8)
        label_ai = min(ridge, x_hi) / 3
        c.text(sx(label_ai) + 4, sy(min(peak, label_ai * bw)) - 5, f"{level} {bw:.0f} GB/s",
               color=color, size=10)

    # FP peak roofs per ISA.
    for j, (isa, gf) in enumerate(sorted(model.peak_gflops.items(), key=lambda kv: kv[1])):
        y = sy(gf)
        c.line(ml, y, ml + pw, y, color="#ccc", width=1.2, dash="6,3")
        c.text(ml + pw - 4, y - 4, f"{isa} {gf:.0f} GF/s", anchor="end", size=10)

    # Application dots, colored by phase; optional phase bounding boxes.
    phases = sorted({p.phase for p in points})
    phase_color = {ph: PALETTE[(k + 4) % len(PALETTE)] for k, ph in enumerate(phases)}
    for p in points:
        if p.gflops <= 0 or not math.isfinite(p.ai) or p.ai <= 0:
            continue
        c.circle(sx(p.ai), sy(p.gflops), 3.0, phase_color[p.phase], opacity=0.8)
    if phase_boxes:
        for k, ph_name in enumerate(phases):
            if not ph_name:
                continue
            sel = [p for p in points if p.phase == ph_name and p.gflops > 0 and p.ai > 0
                   and math.isfinite(p.ai)]
            if not sel:
                continue
            xs = [sx(p.ai) for p in sel]
            ys = [sy(p.gflops) for p in sel]
            c.rect(min(xs) - 6, min(ys) - 6, max(xs) - min(xs) + 12, max(ys) - min(ys) + 12,
                   color=phase_color[ph_name])
            c.text(min(xs), min(ys) - 10, ph_name, color=phase_color[ph_name], size=10)
    return c.to_string()
