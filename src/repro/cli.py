"""``pmove`` — command-line front end for the P-MoVE reproduction.

Usage (also available as ``python -m repro.cli``)::

    pmove probe skx                  # probe a preset, print the summary
    pmove kb csl --depth 2           # build + render the Knowledge Base
    pmove monitor icl --duration 10  # Scenario A with a rendered dashboard
    pmove sketch icl --duration 8    # per-measurement tier sketch footprint
    pmove chaos icl --outage 5 10    # Scenario A surviving a scripted DB outage
    pmove chaos csl --node-crash 1 40  # node crash: requeue + fleet recovery
    pmove chaos icl --durable --log-truncate 8  # commit-log ingest under a log crash
    pmove chaos dlq                  # dead-letter lifecycle: park, inspect, requeue
    pmove superdb anti-entropy --wan-outage 0 2  # heal a partitioned report
    pmove observe csl --kernel triad # Scenario B + auto-generated queries
    pmove carm csl --threads 28      # CARM roofs (optionally --svg out.svg)
    pmove bench icl stream           # BenchmarkInterface runners
    pmove cluster --nodes 4          # cluster demo job with comm telemetry
    pmove shard --shards 4 --kill-shard 1  # sharded storage + degraded serving
    pmove fuzz all --budget 50 --seed 3 --minimize  # coverage-guided fuzzing
    pmove fuzz all --replay tests/fuzz/corpus       # replay minimized seeds
    pmove presets                    # list the Table II platforms

Every subcommand runs against the simulated substrate, entirely offline.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.machine import PRESETS, SimulatedMachine, get_preset

__all__ = ["main", "build_parser"]

_KERNELS = ("sum", "stream", "triad", "peakflops", "ddot", "daxpy")
_DEFAULT_EVENTS = [
    "SCALAR_DOUBLE_INSTRUCTIONS",
    "AVX512_DOUBLE_INSTRUCTIONS",
    "TOTAL_MEMORY_INSTRUCTIONS",
    "RAPL_POWER_PACKAGE",
]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="pmove",
        description="P-MoVE: performance monitoring and visualization with encoded knowledge",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("presets", help="list the available target platforms")

    s = sub.add_parser("probe", help="probe a target and print the parsed system JSON")
    s.add_argument("preset", choices=sorted(PRESETS))
    s.add_argument("--raw", action="store_true", help="dump the raw tool outputs instead")

    s = sub.add_parser("kb", help="build the Knowledge Base and render the twin tree")
    s.add_argument("preset", choices=sorted(PRESETS))
    s.add_argument("--depth", type=int, default=2, help="tree depth to render")

    s = sub.add_parser("monitor", help="Scenario A: software telemetry + dashboard")
    s.add_argument("preset", choices=sorted(PRESETS))
    s.add_argument("--duration", type=float, default=10.0)
    s.add_argument("--freq", type=float, default=1.0)
    s.add_argument("--buffered", action="store_true",
                   help="ship through the resilient queue/retry/breaker layer")
    s.add_argument("--durable", action="store_true",
                   help="ship through the checkpointed commit log (consumer groups)")
    s.add_argument("--capacity", type=int, default=64, help="report queue capacity")
    s.add_argument("--policy", default="drop_oldest",
                   choices=("drop_oldest", "drop_newest", "spill"))

    s = sub.add_parser(
        "sketch",
        help="run Scenario A briefly, then print the per-measurement tier "
             "sketch state (t-digest buckets/centroids, HLL fields, memory)",
    )
    s.add_argument("preset", choices=sorted(PRESETS))
    s.add_argument("--duration", type=float, default=8.0)
    s.add_argument("--freq", type=float, default=2.0)

    s = sub.add_parser(
        "chaos",
        help="Scenario A under scripted service faults: prove the shipper survives "
             "(target 'dlq' runs the dead-letter-queue lifecycle story)",
    )
    s.add_argument("preset", choices=sorted(PRESETS) + ["dlq"])
    s.add_argument("--duration", type=float, default=20.0)
    s.add_argument("--freq", type=float, default=2.0)
    s.add_argument("--capacity", type=int, default=64)
    s.add_argument("--policy", default="drop_oldest",
                   choices=("drop_oldest", "drop_newest", "spill"))
    s.add_argument("--outage", nargs=2, type=float, metavar=("T0", "T1"),
                   help="DB outage window (virtual seconds)")
    s.add_argument("--partition", nargs=2, type=float, metavar=("T0", "T1"),
                   help="network partition window")
    s.add_argument("--latency-spike", nargs=3, type=float, metavar=("T0", "T1", "FACTOR"),
                   help="insert latency multiplied by FACTOR during the window")
    s.add_argument("--flaky", nargs=3, type=float, metavar=("T0", "T1", "P"),
                   help="each insert in the window fails with probability P")
    s.add_argument("--unbuffered", action="store_true",
                   help="run the paper's unbuffered pipeline instead (shows the damage)")
    s.add_argument("--nodes", type=int, default=4,
                   help="cluster size for node-fault chaos")
    s.add_argument("--node-crash", nargs=2, type=float, metavar=("T0", "T1"),
                   help="crash one node for the window: job fails, is requeued, "
                        "recovers (switches to the cluster chaos story)")
    s.add_argument("--node-hang", nargs=3, type=float, metavar=("T0", "T1", "FACTOR"),
                   help="one node straggles by FACTOR during the window "
                        "(switches to the cluster chaos story)")
    s.add_argument("--durable", action="store_true",
                   help="ingest through the checkpointed commit log instead of "
                        "the in-memory shipper queue")
    s.add_argument("--log-truncate", type=float, metavar="T",
                   help="durable: crash the log at T, wiping its unflushed tail "
                        "(the producer detects and resends)")
    s.add_argument("--consumer-crash", nargs=3, metavar=("GROUP", "T0", "T1"),
                   help="durable: crash consumer GROUP-0 for the window; its "
                        "partitions rebalance to survivors and replay from the "
                        "committed checkpoint on rejoin")
    s.add_argument("--poison", type=int, default=0, metavar="N",
                   help="durable: inject N unparseable records (they park in "
                        "the dead-letter queue instead of wedging consumers)")
    s.add_argument("--max-apply-attempts", type=int, default=8,
                   help="durable: per-record retry budget before parking")
    s.add_argument("--requeue", action="store_true",
                   help="durable: after the run, requeue the DLQ and drain again")

    s = sub.add_parser(
        "superdb",
        help="SUPERDB federation: report over a faulty WAN, inspect sync "
             "state, repair with anti-entropy",
    )
    s.add_argument("action", choices=("report", "sync-status", "anti-entropy"))
    s.add_argument("--preset", choices=sorted(PRESETS), default="icl")
    s.add_argument("--mode", choices=("agg", "ts"), default="agg")
    s.add_argument("--wan-outage", nargs=2, type=float, metavar=("T0", "T1"),
                   help="WAN partition window on the federation link")
    s.add_argument("--retry-budget", type=float, default=5.0,
                   help="virtual seconds the link retries each push")

    s = sub.add_parser("observe", help="Scenario B: profile a kernel execution")
    s.add_argument("preset", choices=sorted(PRESETS))
    s.add_argument("--kernel", choices=_KERNELS, default="triad")
    s.add_argument("--elements", type=int, default=4_000_000)
    s.add_argument("--iterations", type=int, default=500)
    s.add_argument("--threads", type=int, default=None)
    s.add_argument("--freq", type=float, default=8.0)
    s.add_argument("--pinning", default="balanced",
                   choices=("balanced", "compact", "numa_balanced", "numa_compact"))
    s.add_argument("--events", nargs="+", default=_DEFAULT_EVENTS,
                   help="generic (vendor-neutral) event names")

    s = sub.add_parser("carm", help="construct the Cache-Aware Roofline Model")
    s.add_argument("preset", choices=sorted(PRESETS))
    s.add_argument("--threads", type=int, default=None)
    s.add_argument("--svg", default=None, help="write the roofline plot here")

    s = sub.add_parser("bench", help="run a BenchmarkInterface benchmark")
    s.add_argument("preset", choices=sorted(PRESETS))
    s.add_argument("name", choices=("carm", "stream", "hpcg"))

    s = sub.add_parser("cluster", help="cluster-level demo: schedule a monitored job")
    s.add_argument("--preset", choices=sorted(PRESETS), default="csl")
    s.add_argument("--nodes", type=int, default=4)
    s.add_argument("--job-nodes", type=int, default=2)
    s.add_argument("--iterations", type=int, default=300)

    s = sub.add_parser(
        "serve",
        help="multi-tenant serving frontend: admission control, bounded "
             "fair executor, per-tenant SLO accounting",
    )
    s.add_argument("preset", choices=sorted(PRESETS))
    s.add_argument("--duration", type=float, default=8.0,
                   help="telemetry fill window before serving starts")
    s.add_argument("--load-duration", type=float, default=10.0,
                   help="virtual seconds of dashboard load to serve")
    s.add_argument("--tenants", type=int, default=4)
    s.add_argument("--workers", type=int, default=8, help="executor slots")
    s.add_argument("--panels", type=int, default=6,
                   help="dashboard width (panels in the shared refresh set)")
    s.add_argument("--live-period", type=float, default=1.0,
                   help="seconds between live refreshes per tenant")
    s.add_argument("--backfill-period", type=float, default=4.0,
                   help="seconds between backfill scans per tenant")
    s.add_argument("--aggressor", action="store_true",
                   help="turn the last tenant into a cache-busting flooder "
                        "(admission keeps the rest unharmed)")
    s.add_argument("--seed", type=int, default=0)

    s = sub.add_parser(
        "shard",
        help="sharded storage demo: ingest into N shards, print per-shard "
             "stats, optionally kill a shard or rebalance",
    )
    s.add_argument("--shards", type=int, default=4, help="shard count")
    s.add_argument("--series", type=int, default=32, help="synthetic series to ingest")
    s.add_argument("--points", type=int, default=200, help="points per series")
    s.add_argument("--kill-shard", metavar="NAME",
                   help="crash this shard (name or index) and show degraded serving")
    s.add_argument("--add-shard", action="store_true",
                   help="attach one more shard and rebalance after ingest")

    s = sub.add_parser(
        "fuzz",
        help="coverage-guided scenario fuzzing: evolve whole-twin scenarios "
             "against the invariant oracles",
    )
    s.add_argument("preset", choices=sorted(PRESETS) + ["all"],
                   help="restrict scenarios to one platform, or 'all'")
    s.add_argument("--budget", type=int, default=50,
                   help="scenarios to execute (default 50)")
    s.add_argument("--seed", type=int, default=0, help="campaign seed")
    s.add_argument("--minimize", action="store_true",
                   help="ddmin-shrink each failure family to a minimal seed")
    s.add_argument("--baseline", action="store_true",
                   help="mutation-free control arm (fresh grammar draws only)")
    s.add_argument("--coverage-out", metavar="PATH",
                   help="write the coverage-map JSON artifact to PATH")
    s.add_argument("--corpus", metavar="DIR",
                   help="write minimized failing scenarios into DIR as "
                        "replayable JSON seeds")
    s.add_argument("--replay", metavar="PATH",
                   help="replay one scenario JSON seed (or every *.json in "
                        "a directory) instead of running a campaign")
    return p


# ----------------------------------------------------------------------
def _cmd_presets(args) -> int:
    for name in sorted(PRESETS):
        spec = get_preset(name)
        print(f"{name:<5} {spec.cpu_model:<45} {spec.memory_bytes // 2**30} GB "
              f"{spec.mem_type}@{spec.mem_freq_mhz}")
    return 0


def _cmd_probe(args) -> int:
    from repro.probing import collect_raw_probe, probe

    spec = get_preset(args.preset)
    doc = collect_raw_probe(spec) if args.raw else probe(spec)
    print(json.dumps(doc, indent=1, default=str))
    return 0


def _cmd_kb(args) -> int:
    from repro.core import KnowledgeBase
    from repro.probing import probe

    kb = KnowledgeBase.from_probe(probe(get_preset(args.preset)))
    print(f"Knowledge Base for {kb.hostname}: {len(kb)} twins")
    print(kb.render_tree(max_depth=args.depth))
    return 0


def _cmd_monitor(args) -> int:
    from repro.core import PMoVE
    from repro.pcp import ShipperConfig

    daemon = PMoVE()
    daemon.attach_target(SimulatedMachine(get_preset(args.preset)))
    mode = "durable" if args.durable else ("buffered" if args.buffered else "unbuffered")
    config = ShipperConfig(capacity=args.capacity, policy=args.policy)
    stats, uid = daemon.scenario_a(args.preset, duration_s=args.duration,
                                   freq_hz=args.freq, mode=mode,
                                   shipper_config=config)
    print(f"sampled {stats.inserted_points} points "
          f"({stats.loss_pct:.1f}% lost, {stats.zero_points} zeros)")
    if args.buffered:
        print(f"buffered: max queue depth {stats.max_queue_depth}, "
              f"{stats.retried_reports} retried, {stats.recovered_reports} recovered")
    if args.durable:
        print(f"durable: {stats.produced_records} records through the log, "
              f"max group lag {stats.max_group_lag}, "
              f"backlog {stats.backlog_records}, parked {stats.parked_records}")
    print(daemon.grafana.render_dashboard_text(uid))
    return 0


def _cmd_sketch(args) -> int:
    """Sketch observability: the write-through tier digests and HLLs that
    serve PERCENTILE / COUNT DISTINCT without rescanning raw points."""
    from repro.core import PMoVE

    daemon = PMoVE()
    daemon.attach_target(SimulatedMachine(get_preset(args.preset)))
    daemon.scenario_a(args.preset, duration_s=args.duration, freq_hz=args.freq)

    st = daemon.influx.stats(daemon.database)
    print(f"sketch state on {args.preset} after {args.duration:g}s sampling "
          f"({st['points_written']} points, {st['series_count']} series):")
    hdr = (f"{'measurement':<40} {'series':>6} {'est':>6} {'digests':>8} "
           f"{'centroids':>10} {'hll':>4} {'kB':>8}")
    print(hdr)
    print("-" * len(hdr))
    total_bytes = 0
    for name, m in st["measurements"].items():
        sk = m["sketch"]
        nbytes = sk["digest_memory_bytes"] + sk["hll_memory_bytes"]
        total_bytes += nbytes
        print(f"{name:<40} {m['series']:>6} {sk['active_series_estimate']:>6.0f} "
              f"{sk['digest_buckets']:>8} {sk['digest_centroids']:>10} "
              f"{sk['hll_fields']:>4} {nbytes / 1024.0:>8.1f}")
    print(f"total sketch memory: {total_bytes / 1024.0:.1f} kB across "
          f"{len(st['measurements'])} measurements "
          f"({1 << daemon.influx.sketch.hll_p} HLL registers, "
          f"compression {daemon.influx.sketch.compression})")
    return 0


def _print_dlq(pipe, header: str) -> None:
    dlq = pipe.log.dlq
    print(f"{header}: {dlq.parked_total} parked total, "
          f"{dlq.requeued_total} requeued, now {dlq.summary() or '{}'}")
    for d in pipe.log.dlq.to_dicts():
        print(f"  [{d['group']}] {d['topic']}/p{d['partition']} seq={d['seq']} "
              f"{d['reason']} after {d['attempts']} attempt(s): {d['error'][:60]}")


def _cmd_durable_chaos(args, faults) -> int:
    """Durable-ingest chaos: the commit-log pipeline under service faults
    plus log-level faults (truncation, consumer crash, poison records)."""
    from repro.core import PMoVE
    from repro.faults import ConsumerCrash, LogFaultSet, LogTruncation

    log_faults = LogFaultSet()
    if args.log_truncate is not None:
        log_faults.inject(LogTruncation(at=args.log_truncate))
    if args.consumer_crash:
        group, t0, t1 = args.consumer_crash
        log_faults.inject(ConsumerCrash(group=group, consumer=f"{group}-0",
                                        t0=float(t0), t1=float(t1)))

    daemon = PMoVE(service_faults=faults)
    daemon.attach_target(SimulatedMachine(get_preset(args.preset)))
    pipe = daemon.enable_durable_ingest(
        log_faults=log_faults, max_apply_attempts=args.max_apply_attempts
    )
    for i in range(args.poison):
        pipe.log.inject_poison("kernel_percpu_cpu_idle", time=float(i),
                               tag=f"poison-{i}")
    stats, _ = daemon.scenario_a(args.preset, duration_s=args.duration,
                                 freq_hz=args.freq, mode="durable")

    print(f"durable chaos run on {args.preset}: "
          f"{len(faults.faults)} service fault(s), "
          f"{len(log_faults.faults)} log fault(s), {args.poison} poison record(s)")
    for f in list(faults.faults) + list(log_faults.faults):
        print(f"  {f!r}")
    print(f"expected {stats.expected_points} points, inserted {stats.inserted_points} "
          f"({stats.loss_pct:.1f}% lost)")
    log_stats = pipe.log.stats()
    print(f"log: {log_stats['appended_records']} appended, "
          f"{log_stats['truncated_records']} truncated, "
          f"{stats.resent_records} resent by producer, "
          f"{log_stats['rebalances']} rebalance(s), "
          f"{log_stats['checkpoint_commits']} checkpoint commits")
    health = pipe.health()
    for group, g in sorted(health["groups"].items()):
        print(f"  {group}: applied {g['applied_records']}, "
              f"dup-skipped {g['duplicate_records']}, parked {g['parked_records']}, "
              f"lag {g['lag']}")
    _print_dlq(pipe, "DLQ")
    if args.requeue and pipe.log.dlq.summary():
        n = pipe.log.requeue()
        end = pipe.drain(pipe.log.now + 120.0)
        print(f"requeued {n} record(s), drained to t={end:.3f}s")
        _print_dlq(pipe, "DLQ after requeue")
    return 0


def _cmd_dlq(args) -> int:
    """Dead-letter lifecycle story: a DB outage outlasts the per-record
    retry budget so records park; we inspect the queue, heal the fault,
    requeue, and watch everything (except the poison) land."""
    from repro.core import PMoVE
    from repro.faults import DbOutage, ServiceFaultSet

    preset = "icl"
    faults = ServiceFaultSet()
    if args.outage:
        outage = faults.inject(DbOutage(t0=args.outage[0], t1=args.outage[1]))
    else:
        outage = faults.inject(DbOutage(t0=args.duration / 4, t1=args.duration * 4))

    daemon = PMoVE(service_faults=faults)
    daemon.attach_target(SimulatedMachine(get_preset(preset)))
    pipe = daemon.enable_durable_ingest(
        max_apply_attempts=min(args.max_apply_attempts, 3)
    )
    pipe.log.inject_poison("kernel_percpu_cpu_idle", time=1.0)
    stats, _ = daemon.scenario_a(preset, duration_s=args.duration,
                                 freq_hz=args.freq, mode="durable")
    print(f"durable run on {preset} with {outage!r}:")
    print(f"expected {stats.expected_points} points, inserted {stats.inserted_points}, "
          f"parked {stats.parked_records} record(s)")
    _print_dlq(pipe, "DLQ")

    faults.clear()  # the endpoint comes back
    n = pipe.log.requeue()
    end = pipe.drain(pipe.log.now + 120.0)
    print(f"fault cleared; requeued {n} record(s), drained to t={end:.3f}s")
    _print_dlq(pipe, "DLQ after requeue")
    counters = pipe.flat_counters()
    print(f"db-writer applied {counters['db-writer.applied_points']:.0f} points "
          f"total; poison stays parked (parse errors never heal)")
    return 0


def _cmd_node_chaos(args) -> int:
    """Cluster chaos story: a node fault kills/paces a job; the scheduler
    requeues and the fleet recovers."""
    from repro.cluster import ClusterMonitor, JobSpec, SimulatedCluster
    from repro.faults import NodeCrash, NodeHang
    from repro.workloads import build_kernel

    cluster = SimulatedCluster(PRESETS[args.preset], n_nodes=args.nodes)
    monitor = ClusterMonitor(cluster)
    victim = cluster.node_names[0]
    if args.node_crash:
        cluster.inject_node_fault(victim, NodeCrash(t0=args.node_crash[0],
                                                    t1=args.node_crash[1]))
    if args.node_hang:
        t0, t1, factor = args.node_hang
        cluster.inject_node_fault(victim, NodeHang(t0=t0, t1=t1, factor=factor))
    print(f"node chaos on {args.preset} x{args.nodes}, victim {victim}:")
    for f in cluster.node_faults.faults_for(victim):
        print(f"  {f!r}")

    spec = get_preset(args.preset)
    job = JobSpec(
        name="chaos_job", n_nodes=min(2, args.nodes),
        ranks_per_node=spec.n_cores,
        rank_kernel=build_kernel("triad", 400_000, iterations=1),
        iterations=200,
        halo_bytes_per_neighbor=1e6, halo_neighbors=2, allreduce_bytes=8e3,
    )
    try:
        doc, execution, _ = monitor.run_job(job, freq_hz=2.0)
    except RuntimeError as e:
        print(f"job gave up: {e}")
        return 1
    print(f"job {doc['job_id']} completed on {execution.nodes} "
          f"after {doc['requeues']} requeue(s): {execution.runtime_s:.3f}s")
    for att in doc["failed_attempts"]:
        print(f"  attempt on {att['nodes']} killed by {att['failed_node']} "
              f"at t={att['t_failed']:.3f}s")
    health = monitor.fleet_health()
    print(f"fleet degraded={health['degraded']}, down={health['nodes_down']}")
    for name, h in health["nodes"].items():
        stale = ("-" if h["staleness_s"] is None else f"{h['staleness_s']:.2f}s")
        print(f"  {name}: {h['state']:<7} staleness={stale} "
              f"failed_jobs={h['jobs_failed_here']}")
    print("utilization (downtime excluded from denominator):")
    for name, u in monitor.scheduler.utilization().items():
        print(f"  {name}: {u:.3f}")
    return 0


def _cmd_chaos(args) -> int:
    from repro.core import PMoVE
    from repro.faults import (
        DbOutage,
        FlakyWrites,
        InsertLatencySpike,
        NetworkPartition,
        ServiceFaultSet,
    )
    from repro.pcp import ShipperConfig

    if args.preset == "dlq":
        return _cmd_dlq(args)
    if args.node_crash or args.node_hang:
        return _cmd_node_chaos(args)

    faults = ServiceFaultSet()
    if args.outage:
        faults.inject(DbOutage(t0=args.outage[0], t1=args.outage[1]))
    if args.partition:
        faults.inject(NetworkPartition(t0=args.partition[0], t1=args.partition[1]))
    if args.latency_spike:
        t0, t1, factor = args.latency_spike
        faults.inject(InsertLatencySpike(t0=t0, t1=t1, factor=factor))
    if args.flaky:
        t0, t1, p = args.flaky
        faults.inject(FlakyWrites(t0=t0, t1=t1, p_fail=p))
    if not faults.faults:
        faults.inject(DbOutage(t0=args.duration / 4, t1=args.duration / 2))

    if args.durable:
        return _cmd_durable_chaos(args, faults)

    daemon = PMoVE(service_faults=faults)
    daemon.attach_target(SimulatedMachine(get_preset(args.preset)))
    mode = "unbuffered" if args.unbuffered else "buffered"
    config = ShipperConfig(capacity=args.capacity, policy=args.policy)
    stats, _ = daemon.scenario_a(args.preset, duration_s=args.duration,
                                 freq_hz=args.freq, mode=mode,
                                 shipper_config=config)

    print(f"chaos run ({mode}) on {args.preset}: "
          f"{len(faults.faults)} fault(s) installed")
    for f in faults.faults:
        print(f"  {f!r}")
    print(f"expected {stats.expected_points} points, inserted {stats.inserted_points} "
          f"({stats.loss_pct:.1f}% lost)")
    if mode == "buffered":
        print(f"retried {stats.retried_reports}, recovered {stats.recovered_reports}, "
              f"dropped by policy {stats.dropped_by_policy}, "
              f"spilled {stats.spilled_reports}")
        print(f"breaker open {stats.breaker_open_s:.2f}s, "
              f"max queue depth {stats.max_queue_depth}, "
              f"max staleness {stats.max_staleness_s:.2f}s")
        sampler = daemon.target(args.preset).sampler
        if sampler.last_shipper is not None:
            for t, state in sampler.last_shipper.breaker.transitions:
                print(f"  breaker -> {state:<9} at t={t:.3f}s")
    health = daemon.health()
    print(f"writes: {health['writes']['accepted']} accepted, "
          f"{health['writes']['rejected']} rejected")
    return 0


def _cmd_superdb(args) -> int:
    from repro.core import PMoVE, SuperDB
    from repro.faults import NetworkPartition, ServiceFaultSet
    from repro.pcp import RetryPolicy
    from repro.workloads import build_kernel

    wan = ServiceFaultSet()
    if args.wan_outage:
        wan.inject(NetworkPartition(t0=args.wan_outage[0], t1=args.wan_outage[1]))
    sdb = SuperDB(faults=wan, retry=RetryPolicy(budget_s=args.retry_budget))

    daemon = PMoVE()
    daemon.attach_target(SimulatedMachine(get_preset(args.preset)))
    desc = build_kernel("triad", 2_000_000, iterations=200)
    daemon.scenario_b(args.preset, desc, ["RAPL_POWER_PACKAGE"], freq_hz=4)

    summary = daemon.push_to_superdb(sdb, args.preset, mode=args.mode)
    print(f"report ({args.mode}): {summary['observations']} observation(s), "
          f"{summary['points']} points, {summary['pending']} pending "
          f"(link t={summary['t']:.3f}s, "
          f"{sdb.link.failed_attempts}/{sdb.link.attempts} attempts failed)")

    if args.action == "anti-entropy":
        kb = daemon.target(args.preset).kb
        for i in (1, 2):
            rep = sdb.anti_entropy(kb, daemon.influx, daemon.database,
                                   mode=args.mode)
            print(f"anti-entropy pass {i}: checked {rep['checked']}, "
                  f"repaired {rep['repaired']}, pending {rep['pending']}")
    state = sdb.sync_status(args.preset)
    if state is None:
        print("sync state: none recorded")
    else:
        print(f"sync state: complete={state['complete']} "
              f"synced={len(state['synced'])} pending={len(state['pending'])} "
              f"last_sync_t={state['last_sync_t']:.3f}s")
    return 0


def _cmd_observe(args) -> int:
    from repro.core import PMoVE
    from repro.workloads import build_kernel

    daemon = PMoVE()
    machine = SimulatedMachine(get_preset(args.preset))
    daemon.attach_target(machine)
    desc = build_kernel(args.kernel, args.elements, iterations=args.iterations)
    obs, run = daemon.scenario_b(
        args.preset, desc, args.events, freq_hz=args.freq,
        n_threads=args.threads, pinning=args.pinning,
    )
    print(f"{args.kernel} ran {run.runtime_s:.4f}s on cpus {obs['affinity']}")
    if obs["report"]["skipped_events"]:
        print(f"skipped (unsupported here): {obs['report']['skipped_events']}")
    print("\nauto-generated queries:")
    for q in obs["queries"]:
        print(f"  {q[:110]}{'...' if len(q) > 110 else ''}")
    print("\nrecalled series totals:")
    for measurement, rs in daemon.recall_observation(args.preset, obs).items():
        total = sum(v for _, row in rs.rows for v in row if v)
        print(f"  {measurement:<62} {total:.4g}")
    return 0


def _cmd_carm(args) -> int:
    from repro.carm import load_from_kb, render_carm_svg
    from repro.core import PMoVE, run_benchmark

    daemon = PMoVE()
    machine = SimulatedMachine(get_preset(args.preset))
    kb = daemon.attach_target(machine)
    threads = args.threads or machine.spec.n_cores
    run_benchmark(kb, machine, "carm", thread_counts=[threads])
    model = load_from_kb(kb, threads)
    print(f"CARM for {model.hostname} @ {threads} threads")
    for level in model.levels:
        print(f"  {level:<5} {model.bandwidth_gbs[level]:9.1f} GB/s")
    for isa, gf in sorted(model.peak_gflops.items(), key=lambda kv: kv[1]):
        print(f"  {isa:<7} {gf:9.1f} GFLOP/s")
    if args.svg:
        with open(args.svg, "w") as fh:
            fh.write(render_carm_svg(model))
        print(f"roofline written to {args.svg}")
    return 0


def _cmd_bench(args) -> int:
    from repro.core import PMoVE, run_benchmark

    daemon = PMoVE()
    machine = SimulatedMachine(get_preset(args.preset))
    kb = daemon.attach_target(machine)
    entries = run_benchmark(kb, machine, args.name)
    for entry in entries:
        print(f"{entry['name']} ({entry['compiler']}): {entry['command']}")
        for r in entry["results"]:
            print(f"  {r['metric']:<24} {r['value']:12.2f} {r['units']}")
    return 0


def _cmd_cluster(args) -> int:
    from repro.cluster import ClusterMonitor, JobSpec, SimulatedCluster
    from repro.workloads import build_kernel

    preset = PRESETS[args.preset]
    cluster = SimulatedCluster(preset, n_nodes=args.nodes)
    monitor = ClusterMonitor(cluster)
    spec = get_preset(args.preset)
    job = JobSpec(
        name="cli_job", n_nodes=min(args.job_nodes, args.nodes),
        ranks_per_node=spec.n_cores,
        rank_kernel=build_kernel("triad", 400_000, iterations=1),
        iterations=args.iterations,
        halo_bytes_per_neighbor=1e6, halo_neighbors=2, allreduce_bytes=8e3,
    )
    doc, execution, _ = monitor.run_job(job, freq_hz=4.0)
    print(f"job {doc['job_id']} on {execution.nodes}: "
          f"{execution.runtime_s:.3f}s ({100 * execution.comm_fraction:.1f}% comm)")
    for node, byts in monitor.comm_telemetry(execution).items():
        print(f"  {node}: {byts / 1e9:.2f} GB shipped")
    return 0


def _cmd_serve(args) -> int:
    """Multi-tenant serving story: N tenants refresh the Scenario-A
    dashboard concurrently; admission + the bounded fair executor keep
    per-tenant SLOs honest, optionally while one tenant floods."""
    from repro.core import PMoVE
    from repro.serve import TenantConfig, mixed_load, replay

    daemon = PMoVE()
    daemon.attach_target(SimulatedMachine(get_preset(args.preset)))
    _, uid = daemon.scenario_a(args.preset, duration_s=args.duration, freq_hz=2.0)
    panels = daemon.grafana.get(uid).panels[: max(1, args.panels)]

    names = [f"tenant-{i}" for i in range(args.tenants)]
    aggressor = names[-1] if args.aggressor and args.tenants > 1 else None
    configs = [
        TenantConfig(name, rate_per_s=10.0, burst=15.0,
                     point_budget_per_s=5_000.0, point_burst=20_000.0,
                     max_queue_depth=32, cache_entries=64)
        for name in names
    ]
    frontend = daemon.enable_serving(configs, n_workers=args.workers)

    specs = mixed_load(
        names, panels,
        duration_s=args.load_duration,
        span_s=args.duration,
        window_s=min(60.0, args.duration / 2),
        live_period_s=args.live_period,
        backfill_period_s=args.backfill_period,
        seed=args.seed,
        aggressor=aggressor,
    )
    replay(frontend, specs)
    makespan = frontend.drain()
    health = frontend.health()

    print(f"served {len(specs)} requests for {args.tenants} tenant(s) on "
          f"{args.preset} through {args.workers} worker slot(s); "
          f"virtual makespan {makespan:.3f}s"
          + (f" (aggressor: {aggressor})" if aggressor else ""))
    ex = health["executor"]
    print(f"executor: {ex['executed']} executed, {ex['coalesced']} coalesced "
          f"(single-flight), {ex['timeouts']} past-deadline cancels")
    header = (f"  {'tenant':<10} {'sub':>5} {'adm':>5} {'rej':>5} {'done':>5} "
              f"{'coal':>5} {'t/o':>4} {'p50ms':>8} {'p95ms':>8} {'p99ms':>8}")
    print(header + "  (live-class latency)")
    for name in names:
        s = health["tenants"].get(name)
        if s is None:
            continue
        live = s["latency"].get("live", s["latency"]["all"])
        print(f"  {name:<10} {s['submitted']:>5} {s['admitted']:>5} "
              f"{s['rejected_total']:>5} {s['completed']:>5} "
              f"{s['coalesced']:>5} {s['timeouts']:>4} "
              f"{live['p50_ms']:>8.2f} {live['p95_ms']:>8.2f} {live['p99_ms']:>8.2f}")
    reasons: dict[str, int] = {}
    for s in health["tenants"].values():
        for reason, n in s["rejected"].items():
            reasons[reason] = reasons.get(reason, 0) + n
    if reasons:
        pretty = ", ".join(f"{k}={v}" for k, v in sorted(reasons.items()))
        print(f"rejections (429-style, explicit): {pretty}")
    parts = health["cache_partitions"]
    used = sum(1 for p in parts.values() if p["entries"])
    print(f"cache partitions: {used}/{len(parts)} tenants warm, "
          f"entries " +
          ", ".join(f"{n}={parts[n]['entries']}/{parts[n]['capacity']}"
                    for n in names))
    return 0


def _cmd_shard(args) -> int:
    from repro.db import InfluxError, Point, ShardedInfluxDB
    from repro.faults import NodeCrash

    db = ShardedInfluxDB(args.shards)
    db.create_database("pmove")
    pts = []
    for s in range(args.series):
        tags = {"obs": f"obs-{s:04d}"}
        for i in range(args.points):
            t = i * 1.0
            pts.append(Point("kernel_percpu_cpu_idle", tags,
                             {"v": (s * 37 + i) % 100 / 100.0}, t))
    db.write_many("pmove", pts)

    def show(title: str) -> None:
        stats = db.stats("pmove")
        states = db.shard_states()
        print(title)
        print(f"  {'shard':<10} {'state':<9} {'series':>6} {'points':>8} {'dropped':>8}")
        for name, s in stats["shards"].items():
            # Stored points, not the cumulative points_written counter —
            # migration moves rows without touching ingest counters, so the
            # counter misreports freshly rebalanced shards.
            stored = sum(m["points"] for m in s["measurements"].values())
            print(f"  {name:<10} {states[name]:<9} {s['series_count']:>6} "
                  f"{stored:>8} {stats['dropped_points'][name]:>8}")
        cols, _, vals = db.aggregate_columns("pmove", "kernel_percpu_cpu_idle", "COUNT")
        print(f"  scatter COUNT(v) = {vals[cols.index('v')]} "
              f"(partial={db.last_partial})")

    show(f"ingested {len(pts)} points across {len(db.shards)} shard(s):")

    if args.add_shard:
        summary = db.add_shard()
        print(f"added {summary['shards'][-1]}: moved {summary['moved_series']} "
              f"series / {summary['moved_points']} points "
              f"({summary['moved_series'] / max(1, args.series):.0%} of series)")
        show("after rebalance:")

    if args.kill_shard is not None:
        victim = args.kill_shard
        if victim.isdigit():
            victim = f"shard-{victim}"
        try:
            db.inject_shard_fault(victim, NodeCrash(t0=0.0, t1=float("inf")))
        except InfluxError as e:
            print(f"error: {e}", file=sys.stderr)
            return 1
        db.at(1.0)
        # Writes routed to the dead shard drop (and are counted) instead
        # of erroring; queries touching its series degrade to partial.
        db.write_many("pmove", pts[: args.points])
        show(f"after killing {victim}:")
        print(f"  partial queries so far: {db.partial_queries}")
    return 0


def _cmd_fuzz(args) -> int:
    import os

    from repro.fuzz import PRESET_POOL, Scenario, execute, run_campaign

    if args.replay:
        paths = (
            sorted(
                os.path.join(args.replay, n)
                for n in os.listdir(args.replay)
                if n.endswith(".json")
            )
            if os.path.isdir(args.replay)
            else [args.replay]
        )
        if not paths:
            print(f"error: no seeds under {args.replay}", file=sys.stderr)
            return 1
        failed = 0
        for path in paths:
            with open(path) as fh:
                sc = Scenario.from_json(fh.read())
            run = execute(sc)
            verdict = "FAIL" if run.failed else "ok"
            print(f"{verdict:<4} {os.path.basename(path)} "
                  f"coverage={len(run.coverage)}")
            for v in run.violations:
                print(f"     violation: {v}")
            failed += bool(run.failed)
        print(f"replayed {len(paths)} seed(s), {failed} failing")
        return 1 if failed else 0

    presets = PRESET_POOL if args.preset == "all" else (args.preset,)

    def progress(i, run, novel):
        if novel:
            print(f"  run {i:>4}: +{len(novel)} coverage "
                  f"({', '.join(novel[:4])}{'…' if len(novel) > 4 else ''})")

    result = run_campaign(
        args.budget,
        args.seed,
        presets=presets,
        mutate_corpus=not args.baseline,
        do_minimize=args.minimize,
        keep_run_docs=False,
        on_run=progress,
    )
    arm = "baseline (mutation-free)" if args.baseline else "guided"
    print(f"\n{arm} campaign: budget={result.budget} seed={result.seed}")
    print(f"  distinct coverage: {result.distinct_coverage}")
    print(f"  corpus size:       {len(result.corpus)}")
    print(f"  failures:          {len(result.failures)}")
    print(f"  rerun checks:      {result.rerun_checks} "
          f"({len(result.rerun_mismatches)} mismatched)")
    print(f"  fingerprint:       {result.fingerprint()[:16]}")

    if args.coverage_out:
        with open(args.coverage_out, "w") as fh:
            fh.write(result.coverage.to_json())
        print(f"coverage map -> {args.coverage_out}")

    if args.corpus:
        os.makedirs(args.corpus, exist_ok=True)
        written = 0
        for fail in result.failures:
            doc = fail.get("minimized")
            if doc is None:
                continue
            sc = Scenario.from_dict(doc)
            name = f"seed-{sc.seed}-run-{fail['i']}.json"
            with open(os.path.join(args.corpus, name), "w") as fh:
                fh.write(sc.to_json())
            written += 1
        print(f"{written} minimized seed(s) -> {args.corpus}")

    for fail in result.failures:
        print(f"FAIL run {fail['i']}:")
        for v in fail["violations"]:
            print(f"  {v}")
    return 1 if result.failures else 0


_COMMANDS = {
    "presets": _cmd_presets,
    "probe": _cmd_probe,
    "kb": _cmd_kb,
    "monitor": _cmd_monitor,
    "sketch": _cmd_sketch,
    "chaos": _cmd_chaos,
    "superdb": _cmd_superdb,
    "observe": _cmd_observe,
    "carm": _cmd_carm,
    "bench": _cmd_bench,
    "cluster": _cmd_cluster,
    "serve": _cmd_serve,
    "shard": _cmd_shard,
    "fuzz": _cmd_fuzz,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
