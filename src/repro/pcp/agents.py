"""PCP metric agents (PMDAs) and their resource-cost models.

The paper's Fig 6 measures four agents on the target system:

- ``pmcd`` — manages other agents and reports their readings;
- ``pmdaperfevent`` — samples PMUs via the Linux perf interface;
- ``pmdalinux`` — software-sourced system state (memory, CPU times);
- ``pmdaproc`` — per-process metrics, with a much larger instance domain
  (hence its larger, but still constant, memory footprint).

Each agent here produces metric values from the simulated machine *and*
accounts its own CPU time per fetch, constant RSS, and bytes shipped —
exactly the quantities Fig 6 plots.  Counter-type values are reported as
window deltas (the sampler records the window), which is what P-MoVE's
dashboards chart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.activity import SW_METRICS, SoftwareState
from repro.pmu.counters import PMU

from .pmns import instance_field, perfevent_metric

__all__ = ["AgentCosts", "Agent", "PmdaLinux", "PmdaPerfevent", "PmdaProc", "PmdaNvidia"]


@dataclass
class AgentCosts:
    """Accumulated resource usage of one agent (Fig 6 quantities)."""

    cpu_seconds: float = 0.0
    fetches: int = 0
    values_served: int = 0
    rss_kb: float = 0.0

    def charge(self, n_values: int, cpu_per_fetch: float, cpu_per_value: float) -> None:
        self.fetches += 1
        self.values_served += n_values
        self.cpu_seconds += cpu_per_fetch + cpu_per_value * n_values


class Agent:
    """Base PMDA: metric ownership, fetch, and cost accounting."""

    #: Fixed CPU cost per fetch round-trip (IPC with pmcd) and per value.
    cpu_per_fetch = 40e-6
    cpu_per_value = 6e-6
    rss_kb = 6_000.0

    def __init__(self, name: str) -> None:
        self.name = name
        self.costs = AgentCosts(rss_kb=self.rss_kb)

    def metrics(self) -> list[str]:
        raise NotImplementedError

    def owns(self, metric: str) -> bool:
        raise NotImplementedError

    def fetch(self, metric: str, t0: float, t1: float) -> dict[str, float]:
        """Return {influx field name: value} for one metric over a window."""
        values = self._fetch(metric, t0, t1)
        self.costs.charge(len(values), self.cpu_per_fetch, self.cpu_per_value)
        return values

    def fetch_batch(
        self, metrics: list[str], t0: float, t1: float
    ) -> dict[str, dict[str, float]]:
        """Fetch several owned metrics over one shared window.

        The base implementation just loops :meth:`fetch`; agents whose
        backing store has a batched read path (perfevent → the timeline's
        ``integrate_batch``) override it.  Cost accounting is per metric
        either way, so Fig 6 numbers do not depend on the fetch shape."""
        return {m: self.fetch(m, t0, t1) for m in metrics}

    def _fetch(self, metric: str, t0: float, t1: float) -> dict[str, float]:
        raise NotImplementedError


class PmdaLinux(Agent):
    """Software system-state metrics from /proc (SWTelemetry)."""

    rss_kb = 9_200.0
    cpu_per_value = 4e-6  # /proc reads are cheap

    def __init__(self, state: SoftwareState) -> None:
        super().__init__("pmdalinux")
        self.state = state

    def metrics(self) -> list[str]:
        return sorted(SW_METRICS)

    def owns(self, metric: str) -> bool:
        return metric in SW_METRICS

    def _fetch(self, metric: str, t0: float, t1: float) -> dict[str, float]:
        semantics = SW_METRICS[metric][1]
        out: dict[str, float] = {}
        for inst in self.state.instances(metric):
            if semantics == "counter":
                v = self.state.value(metric, inst, t1) - self.state.value(metric, inst, t0)
            else:
                v = self.state.value(metric, inst, t1)
            out[instance_field(inst)] = v
        return out


class PmdaPerfevent(Agent):
    """PMU sampling via the perf interface (HWTelemetry).

    Must be configured (counter programming) before fetching; PCP's
    perfevent does the same through its event configuration file — which is
    what P-MoVE's Abstraction Layer writes (§IV-A).
    """

    rss_kb = 5_800.0
    cpu_per_value = 9e-6  # perf syscalls cost more than /proc reads

    def __init__(self, pmu: PMU) -> None:
        super().__init__("pmdaperfevent")
        self.pmu = pmu
        self._configured: list[str] = []

    def configure(self, events: list[str], cpus: list[int] | None = None) -> None:
        self.pmu.program(events, cpus=cpus)
        self._configured = list(events)

    @property
    def configured_events(self) -> list[str]:
        return list(self._configured)

    def metrics(self) -> list[str]:
        return [perfevent_metric(e) for e in self._configured]

    def owns(self, metric: str) -> bool:
        return metric.startswith("perfevent.")

    def _event_for(self, metric: str) -> str:
        for e in self._configured:
            if perfevent_metric(e) == metric:
                return e
        raise KeyError(f"perfevent metric {metric!r} not configured")

    def _fetch(self, metric: str, t0: float, t1: float) -> dict[str, float]:
        event = self._event_for(metric)
        vals = self.pmu.read_all_cpus(event, t0, t1)
        return {instance_field(f"cpu{c}"): v for c, v in vals.items()}

    def fetch_batch(
        self, metrics: list[str], t0: float, t1: float
    ) -> dict[str, dict[str, float]]:
        """One batched PMU read for the whole metric set × cpu set.

        A sampler tick lands here: instead of events × cpus scalar
        ``integrate`` calls, the tick issues a single
        :meth:`~repro.pmu.counters.PMU.read_events_all_cpus` (one timeline
        pass).  Values and per-metric cost accounting are identical to the
        scalar path."""
        events = [self._event_for(m) for m in metrics]
        vals = self.pmu.read_events_all_cpus(events, t0, t1)
        out: dict[str, dict[str, float]] = {}
        for metric, event in zip(metrics, events):
            fields = {instance_field(f"cpu{c}"): v for c, v in vals[event].items()}
            self.costs.charge(len(fields), self.cpu_per_fetch, self.cpu_per_value)
            out[metric] = fields
        return out


class PmdaProc(Agent):
    """Per-process metrics.  The instance domain is every process on the
    system, which is why this agent's (constant) memory footprint dwarfs
    the others in Fig 6.  P-MoVE itself uses 0 per-process metrics (§V-B);
    the agent exists because a default PCP install runs it."""

    rss_kb = 35_000.0
    cpu_per_value = 3e-6

    _METRICS = ("proc.psinfo.utime", "proc.psinfo.stime", "proc.psinfo.rss")

    def __init__(self, state: SoftwareState, n_processes: int = 220) -> None:
        super().__init__("pmdaproc")
        self.state = state
        self.n_processes = n_processes

    def metrics(self) -> list[str]:
        return list(self._METRICS)

    def owns(self, metric: str) -> bool:
        return metric.startswith("proc.")

    def _fetch(self, metric: str, t0: float, t1: float) -> dict[str, float]:
        # A stable synthetic process table: pid -> deterministic share of
        # system activity.  Process 1..n split the machine's busy time.
        nproc = self.n_processes
        busy_ms = sum(
            self.state.value("kernel.percpu.cpu.user", f"cpu{c}", t1)
            - self.state.value("kernel.percpu.cpu.user", f"cpu{c}", t0)
            for c in range(min(4, self.state.spec.n_threads))
        )
        out: dict[str, float] = {}
        for pid in range(1, nproc + 1):
            if metric == "proc.psinfo.rss":
                v = 2_000.0 + (pid % 17) * 800.0
            elif metric == "proc.psinfo.utime":
                v = busy_ms * (1.0 / nproc)
            else:  # stime
                v = busy_ms * (0.1 / nproc)
            out[instance_field(f"{pid:06d} proc{pid}")] = v
        return out


class PmdaNvidia(Agent):
    """NVML metrics via pcp-pmda-nvidia (§III-D SWTelemetry)."""

    rss_kb = 7_500.0

    def __init__(self, sampler) -> None:  # repro.gpu.NvmlSampler
        super().__init__("pmdanvidia")
        self.sampler = sampler

    def metrics(self) -> list[str]:
        return self.sampler.metrics()

    def owns(self, metric: str) -> bool:
        return metric.startswith("nvidia.")

    def _fetch(self, metric: str, t0: float, t1: float) -> dict[str, float]:
        return {instance_field(f"gpu{self.sampler.gpu.spec.index}"): self.sampler.value(metric, t1)}
