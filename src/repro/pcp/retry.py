"""Reusable retry/breaker core of the resilient transport paths.

PR 2's shipper grew a decorrelated-jitter backoff and a circuit breaker for
the local host link; the SUPERDB federation link needs the identical
machinery against WAN faults.  Both now share this module: a
:class:`RetryPolicy` that prices successive sleeps, and the
:class:`CircuitBreaker` closed/open/half-open state machine over virtual
time.  Everything is driven by the caller's virtual clock and an explicit
RNG, so chaos runs replay bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy", "CircuitBreaker"]


@dataclass
class RetryPolicy:
    """Exponential backoff with decorrelated jitter.

    A failed attempt sleeps ``min(cap, uniform(base, 3 * previous_sleep))``
    — the AWS-style decorrelated jitter that spreads retry storms without a
    coordination channel.
    """

    base_s: float = 0.05
    cap_s: float = 2.0
    #: Per-item attempt cap; None = bounded only by the caller's budget.
    max_attempts: int | None = None
    #: Total virtual time the caller may keep retrying one item.
    budget_s: float = 60.0

    def __post_init__(self) -> None:
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise ValueError("need 0 < base_s <= cap_s")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 (or None)")
        if self.budget_s < 0:
            raise ValueError("retry budget must be >= 0")

    def next_sleep(self, prev_sleep: float, rng: np.random.Generator) -> float:
        hi = max(self.base_s, 3.0 * prev_sleep)
        return min(self.cap_s, float(rng.uniform(self.base_s, hi)))

    def exhausted(self, attempts: int) -> bool:
        return self.max_attempts is not None and attempts >= self.max_attempts


class CircuitBreaker:
    """Closed → open → half-open state machine over virtual time."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, threshold: int, open_s: float) -> None:
        self.threshold = threshold
        self.open_s = open_s
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self._open_accum_s = 0.0
        #: (virtual time, new state) — the observable state machine trace.
        self.transitions: list[tuple[float, str]] = []
        #: Half-open admits exactly one unresolved probe at a time; a second
        #: caller is deferred a full open window past the probe's start.
        self._probe_inflight = False
        self._probe_started = 0.0
        #: Total probes admitted while half-open (one per half-open window).
        self.half_open_probes = 0

    def _set(self, t: float, state: str) -> None:
        if state != self.OPEN and self.state == self.OPEN:
            self._open_accum_s += t - self.opened_at
        if state == self.OPEN:
            self.opened_at = t
        self.state = state
        self.transitions.append((t, state))

    # ------------------------------------------------------------------
    def earliest_attempt(self, t: float) -> float:
        """Soonest virtual time ≥ ``t`` an attempt may start."""
        if self.state == self.OPEN:
            return max(t, self.opened_at + self.open_s)
        if self.state == self.HALF_OPEN and self._probe_inflight:
            # One probe per half-open window: anyone else waits a full open
            # window past the probe's start (by then the probe has resolved
            # and moved the state to closed or back to open).
            return max(t, self._probe_started + self.open_s)
        return t

    def on_attempt(self, t: float) -> None:
        """An attempt is starting at ``t`` (open → half-open when due)."""
        if self.state == self.OPEN and t >= self.opened_at + self.open_s:
            self._set(t, self.HALF_OPEN)
        if self.state == self.HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            self._probe_started = t
            self.half_open_probes += 1

    def record_success(self, t: float) -> None:
        self.consecutive_failures = 0
        self._probe_inflight = False
        if self.state != self.CLOSED:
            self._set(t, self.CLOSED)

    def record_failure(self, t: float) -> None:
        self.consecutive_failures += 1
        self._probe_inflight = False
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED and self.consecutive_failures >= self.threshold
        ):
            self._set(t, self.OPEN)

    def open_seconds(self, until: float) -> float:
        """Total virtual time spent open, up to ``until``."""
        extra = max(0.0, until - self.opened_at) if self.state == self.OPEN else 0.0
        return self._open_accum_s + extra
