"""Resilient telemetry shipping: the buffer PCP lacks.

§V-A pins Table III's losses on PCP having "no buffer or queue mechanism to
keep data points until their insertion into the DB".  This module is that
mechanism, built the way production ODA ingest paths (DCDB-style) are:

- a **bounded report queue** decouples fetch from insert.  When full, a
  configurable policy applies: ``drop_oldest`` (ring-buffer semantics),
  ``drop_newest`` (reject the arrival), or ``spill`` (evict the oldest
  report to an in-memory write-ahead log for later replay);
- **retry with exponential backoff and decorrelated jitter** — a failed
  insert stays at the head of the queue and is retried after
  ``min(cap, uniform(base, 3 * previous_sleep))``;
- a **circuit breaker** opens after ``breaker_threshold`` consecutive
  failures, stops hammering the dead endpoint for ``breaker_open_s``, then
  half-opens to let a single probe through; probe success closes it, probe
  failure re-opens it.

Everything runs in virtual time: a single worker services the queue, its
availability tracked as a timestamp (``free_at``), so shipping a minute of
outage-and-recovery costs microseconds of wall time and is bit-for-bit
reproducible under a seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.db.faulty import ServiceUnavailable
from repro.db.influx import InfluxDB, Point
from repro.faults.services import ServiceFaultSet

from .retry import CircuitBreaker, RetryPolicy
from .transport import TransportModel

__all__ = ["ShipperConfig", "CircuitBreaker", "RetryPolicy", "WalEntry", "Shipper"]

_POLICIES = ("drop_oldest", "drop_newest", "spill")


@dataclass
class ShipperConfig:
    """Tuning knobs for the resilient shipping layer."""

    capacity: int = 64
    policy: str = "drop_oldest"
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    breaker_threshold: int = 5
    breaker_open_s: float = 1.0
    #: Per-report attempt cap; None = retry until the drain deadline.
    max_attempts: int | None = None
    #: Virtual seconds past t_end the final drain may keep retrying.
    drain_grace_s: float = 60.0
    #: Let the buffered sampler halve its frequency under backpressure.
    adaptive_degradation: bool = True

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        if self.policy not in _POLICIES:
            raise ValueError(f"unknown queue policy {self.policy!r}; pick from {_POLICIES}")
        if self.backoff_base_s <= 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("need 0 < backoff_base_s <= backoff_cap_s")
        if self.breaker_threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if self.breaker_open_s <= 0:
            raise ValueError("breaker open window must be positive")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 (or None)")
        if self.drain_grace_s < 0:
            raise ValueError("drain grace must be >= 0")


@dataclass
class WalEntry:
    """One spilled report, serialized to line protocol for replay.

    ``seq`` is a shipper-issued sequence number: :meth:`Shipper.replay_wal`
    records which seqs already landed, so a replay interrupted mid-way (or
    invoked twice) can never double-insert an entry.  Entries constructed
    without a seq (< 0) predate the dedup and are always replayed.
    """

    time: float
    tag: str
    lines: str
    n_fields: int
    seq: int = -1


@dataclass
class _Item:
    enqueued_at: float
    report_time: float
    batch: list[Point]
    n_points: int  # report size, what the transport prices
    n_fields: int  # what lands in the DB on success
    is_zero: bool
    tag: str
    attempts: int = 0
    not_before: float = -np.inf
    prev_sleep: float = 0.0


class Shipper:
    """Virtual-time worker draining a bounded report queue into Influx."""

    def __init__(
        self,
        influx: InfluxDB,
        database: str,
        transport: TransportModel,
        config: ShipperConfig | None = None,
        faults: ServiceFaultSet | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.influx = influx
        self.database = database
        self.transport = transport
        self.config = config or ShipperConfig()
        # A FaultyInfluxDB carries its own fault set; use it unless overridden.
        self.faults = faults if faults is not None else getattr(influx, "faults", None)
        self._rng = rng or np.random.default_rng(0)
        self.retry = RetryPolicy(
            base_s=self.config.backoff_base_s,
            cap_s=self.config.backoff_cap_s,
            max_attempts=self.config.max_attempts,
        )
        self.breaker = CircuitBreaker(self.config.breaker_threshold, self.config.breaker_open_s)
        self.queue: deque[_Item] = deque()
        self.wal: list[WalEntry] = []
        self._wal_seq = 0
        self._replayed_seqs: set[int] = set()
        self.free_at = -np.inf
        self.last_event_t = 0.0

        # Counters surfaced into SamplingStats.
        self.enqueued = 0
        self.inserted_reports = 0
        self.inserted_points = 0
        self.zero_reports = 0
        self.zero_points = 0
        self.retried_reports = 0
        self.recovered_reports = 0
        self.dropped_by_policy = 0
        self.spilled_reports = 0
        self.unshipped_reports = 0
        self.max_queue_depth = 0
        self.max_staleness_s = 0.0

    def __len__(self) -> int:
        return len(self.queue)

    # ------------------------------------------------------------------
    def offer(self, t: float, report_time: float, batch: list[Point],
              n_points: int, is_zero: bool, tag: str) -> bool:
        """Enqueue one report at virtual time ``t``; False if rejected."""
        if len(self.queue) >= self.config.capacity:
            if self.config.policy == "drop_newest":
                self.dropped_by_policy += 1
                return False
            evicted = self.queue.popleft()
            if self.config.policy == "spill":
                self._spill(evicted)
            else:  # drop_oldest
                self.dropped_by_policy += 1
        self.queue.append(
            _Item(enqueued_at=t, report_time=report_time, batch=batch,
                  n_points=n_points, n_fields=sum(len(p.fields) for p in batch),
                  is_zero=is_zero, tag=tag)
        )
        self.enqueued += 1
        self.max_queue_depth = max(self.max_queue_depth, len(self.queue))
        return True

    def _spill(self, item: _Item) -> None:
        self._wal_seq += 1
        self.wal.append(
            WalEntry(
                time=item.report_time,
                tag=item.tag,
                lines="\n".join(p.to_line() for p in item.batch),
                n_fields=item.n_fields,
                seq=self._wal_seq,
            )
        )
        self.spilled_reports += 1

    def replay_wal(self) -> int:
        """Backfill spilled reports into the DB; returns fields written.

        Timestamps travel inside the line protocol, so replayed points land
        at their original sample times — late, but not wrong.

        Idempotent under repeated invocation and under crash-during-replay:
        entries land one at a time, head first — the write (atomic at the
        engine: a failed batch inserts nothing) is recorded against the
        entry's seq *before* the entry is popped, so a replay that dies
        between the two and is re-run skips the already-landed entry
        instead of double-inserting it.
        """
        written = 0
        while self.wal:
            entry = self.wal[0]
            if entry.seq < 0 or entry.seq not in self._replayed_seqs:
                self.influx.write_lines(self.database, entry.lines)
                if entry.seq >= 0:
                    self._replayed_seqs.add(entry.seq)
                written += entry.n_fields
            self.wal.pop(0)
        return written

    # ------------------------------------------------------------------
    def _try_insert(self, item: _Item, t: float) -> bool:
        if hasattr(self.influx, "at"):  # FaultyInfluxDB: stamp virtual time
            self.influx.at(t)
            try:
                self.influx.write_many(self.database, item.batch)
            except ServiceUnavailable:
                return False
            return True
        if self.faults is not None and self.faults.write_error(t) is not None:
            return False
        self.influx.write_many(self.database, item.batch)
        return True

    def _backoff(self, item: _Item) -> float:
        sleep = self.retry.next_sleep(item.prev_sleep, self._rng)
        item.prev_sleep = sleep
        return sleep

    def _give_up(self, item: _Item) -> None:
        if self.config.policy == "spill":
            self._spill(item)
        else:
            self.dropped_by_policy += 1

    def advance(self, now: float) -> None:
        """Service the queue: run every attempt that can *start* before
        ``now``.  An attempt that completes past ``now`` just leaves the
        worker busy into the future — exactly one report is ever in flight."""
        while self.queue:
            item = self.queue[0]
            start = max(self.free_at, item.enqueued_at, item.not_before)
            start = self.breaker.earliest_attempt(start)
            if start >= now:
                break
            self.breaker.on_attempt(start)
            duration = self.transport.ship_time(
                item.n_points, self._rng, at=start, faults=self.faults
            )
            t_done = start + duration
            self.free_at = t_done
            self.last_event_t = t_done
            item.attempts += 1
            if self._try_insert(item, t_done):
                self.breaker.record_success(t_done)
                self.queue.popleft()
                self.inserted_reports += 1
                self.inserted_points += item.n_fields
                if item.is_zero:
                    self.zero_reports += 1
                    self.zero_points += item.n_fields
                if item.attempts > 1:
                    self.recovered_reports += 1
                self.max_staleness_s = max(self.max_staleness_s, t_done - item.report_time)
            else:
                self.breaker.record_failure(t_done)
                if item.attempts == 1:
                    self.retried_reports += 1
                if self.retry.exhausted(item.attempts):
                    self.queue.popleft()
                    self._give_up(item)
                else:
                    item.not_before = t_done + self._backoff(item)

    def drain(self, deadline: float) -> float:
        """Keep servicing until the queue empties or ``deadline`` passes;
        leftovers count as unshipped.  Returns the last completion time."""
        self.advance(deadline)
        while self.queue:
            item = self.queue.popleft()
            self.unshipped_reports += 1
            if self.config.policy == "spill":
                # Unshipped != unsaved: the WAL still has them.
                self.unshipped_reports -= 1
                self._spill(item)
        return self.last_event_t
