"""Host–target telemetry transport and DB-insert timing model.

"The sampled metrics are reported over a network, which presents another
bottleneck to database throughput" (§V-A), and PCP has "no buffer or queue
mechanism to keep data points until their insertion into the DB".  This
model computes, per report, the wall time the pipeline is busy (serialize +
network + InfluxDB insert); the sampler uses it to decide which ticks are
lost.  It also models the perfevent snapshot floor: when the sampling period
drops below the agent's refresh interval, whole reports arrive as batched
zeros (§V-A's observed behaviour at 32 Hz).

Defaults are calibrated to the paper's testbed: 100 Mbit host link, a
single-node InfluxDB 1.8 on spinning-adjacent storage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TransportModel"]

_BYTES_PER_POINT = 42  # field name + float + separators in line protocol


@dataclass
class TransportModel:
    """Timing model for one report's journey into the host DB."""

    net_bw_mbit: float = 100.0
    net_latency_s: float = 400e-6
    insert_base_s: float = 0.012
    insert_per_point_s: float = 45e-6
    jitter_rel_std: float = 0.14
    #: Period below which perfevent snapshots start returning zero batches.
    zero_floor_s: float = 0.047
    #: Max per-run rate of sporadic fetch hiccups (uniformly drawn per run).
    hiccup_rate_max: float = 0.04

    def __post_init__(self) -> None:
        if self.net_bw_mbit <= 0:
            raise ValueError("network bandwidth must be positive")
        if self.insert_per_point_s < 0 or self.insert_base_s < 0:
            raise ValueError("negative insert costs")
        if self.net_latency_s < 0:
            raise ValueError("negative network latency")
        if self.jitter_rel_std < 0:
            raise ValueError("negative jitter")
        if self.zero_floor_s <= 0:
            raise ValueError("zero floor must be positive")
        if not 0.0 <= self.hiccup_rate_max <= 1.0:
            raise ValueError("hiccup rate must be in [0, 1]")

    # ------------------------------------------------------------------
    def report_bytes(self, n_points: int) -> int:
        return 120 + _BYTES_PER_POINT * n_points

    def mean_ship_time(self, n_points: int) -> float:
        """Expected busy time for one report of ``n_points`` values."""
        net = self.net_latency_s + self.report_bytes(n_points) * 8 / (self.net_bw_mbit * 1e6)
        insert = self.insert_base_s + self.insert_per_point_s * n_points
        return net + insert

    def ship_time(
        self,
        n_points: int,
        rng: np.random.Generator,
        at: float | None = None,
        faults: "object | None" = None,
    ) -> float:
        """One sampled busy time (lognormal jitter around the mean).

        With ``at``/``faults`` (a :class:`repro.faults.services.ServiceFaultSet`),
        active insert-latency spikes dilate the DB-insert share of the time —
        the network share is unaffected, matching a compaction-stalled DB.
        """
        if n_points < 0:
            raise ValueError("negative point count")
        mean = self.mean_ship_time(n_points)
        if faults is not None and at is not None:
            factor = faults.latency_factor(at)
            if factor != 1.0:
                insert = self.insert_base_s + self.insert_per_point_s * n_points
                mean += insert * (factor - 1.0)
        return mean * float(np.exp(rng.normal(0.0, self.jitter_rel_std)))

    def zero_batch_probability(self, period_s: float) -> float:
        """Probability one delivered report is a zero batch at this period."""
        if period_s <= 0:
            raise ValueError("period must be positive")
        return float(np.clip(1.0 - period_s / self.zero_floor_s, 0.0, 0.6))

    def hiccup_rate(self, rng: np.random.Generator) -> float:
        """Per-run sporadic tick-loss rate (pmcd scheduling hiccups)."""
        return float(rng.uniform(0.0, self.hiccup_rate_max))
