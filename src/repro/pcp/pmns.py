"""PCP metric namespace (PMNS) helpers.

PCP metrics are dotted names (``kernel.percpu.cpu.idle``,
``perfevent.hwcounters.FP_ARITH_SCALAR_DOUBLE.value``).  InfluxDB
measurement names replace the dots with underscores — which is why the
paper's Listing 1 dashboard targets measurements like
``perfevent_hwcounters_FP_ARITH_SCALAR_SINGLE_value``.  This module owns
those naming conventions so every layer (agents, samplers, dashboards,
query generation) agrees on them.
"""

from __future__ import annotations

__all__ = [
    "perfevent_metric",
    "metric_to_measurement",
    "measurement_to_metric",
    "instance_field",
    "sanitize_event",
]


def sanitize_event(event: str) -> str:
    """PMU event name → PMNS-safe token (``FP_ARITH:SCALAR_DOUBLE`` →
    ``FP_ARITH_SCALAR_DOUBLE``)."""
    if not event:
        raise ValueError("empty event name")
    return event.replace(":", "_").replace(".", "_")


def perfevent_metric(event: str) -> str:
    """PMU event name → pmdaperfevent metric name."""
    return f"perfevent.hwcounters.{sanitize_event(event)}.value"


def metric_to_measurement(metric: str) -> str:
    """PCP metric name → InfluxDB measurement name (Listing 1 convention)."""
    if not metric:
        raise ValueError("empty metric name")
    return metric.replace(".", "_")


def measurement_to_metric(measurement: str) -> str:
    """Best-effort inverse of :func:`metric_to_measurement` for perfevent
    and kernel metrics (used when reconstructing queries from dashboards).

    The mapping is not injective in general (event names may contain
    underscores); perfevent measurements are reconstructed structurally.
    """
    if measurement.startswith("perfevent_hwcounters_") and measurement.endswith("_value"):
        inner = measurement[len("perfevent_hwcounters_") : -len("_value")]
        return f"perfevent.hwcounters.{inner}.value"
    return measurement.replace("_", ".")


def instance_field(instance: str) -> str:
    """PCP instance name → Influx field name (``cpu0`` → ``_cpu0``).

    The leading underscore is the paper's convention (Listings 2–3 select
    fields ``"_cpu0"``, ``"_node1"``...).  Singleton metrics use ``_value``.
    """
    return f"_{instance}" if instance else "_value"
