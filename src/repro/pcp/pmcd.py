"""``pmcd`` — the PCP collector daemon on the target.

pmcd "manages other agents and reports their readings" (§V-B): a fetch
request for a set of metrics is routed to the owning agents, the results are
flattened into one report, and pmcd charges its own (small) per-value CPU
cost for marshalling.  The report is what the transport ships to the host.
"""

from __future__ import annotations

from dataclasses import dataclass

from .agents import Agent, AgentCosts

__all__ = ["Report", "Pmcd"]


@dataclass
class Report:
    """One fetch result: every (metric, field) value at one timestamp."""

    time: float
    window: tuple[float, float]
    values: dict[str, dict[str, float]]  # metric -> {field: value}

    @property
    def n_points(self) -> int:
        return sum(len(v) for v in self.values.values())

    def zeroed(self) -> "Report":
        """The same report with every value zeroed — what a stalled
        perfevent snapshot delivers (the 'batched zeros' of §V-A)."""
        return Report(
            time=self.time,
            window=self.window,
            values={m: {f: 0.0 for f in fields} for m, fields in self.values.items()},
        )


class Pmcd:
    """Routes fetches to agents and accounts its own cost."""

    cpu_per_fetch = 60e-6
    cpu_per_value = 2e-6
    rss_kb = 8_400.0

    def __init__(self, agents: list[Agent]) -> None:
        if not agents:
            raise ValueError("pmcd needs at least one agent")
        names = [a.name for a in agents]
        if len(set(names)) != len(names):
            raise ValueError("duplicate agent names")
        self.agents = list(agents)
        self.costs = AgentCosts(rss_kb=self.rss_kb)

    def agent(self, name: str) -> Agent:
        for a in self.agents:
            if a.name == name:
                return a
        raise KeyError(f"no agent named {name!r}")

    def _route(self, metric: str) -> Agent:
        for a in self.agents:
            if a.owns(metric):
                return a
        raise KeyError(f"no agent owns metric {metric!r}")

    def available_metrics(self) -> list[str]:
        out: list[str] = []
        for a in self.agents:
            out.extend(a.metrics())
        return sorted(out)

    def fetch(self, metrics: list[str], t0: float, t1: float) -> Report:
        """Fetch a metric set over a window into one report.

        Metrics are grouped by owning agent and fetched through each
        agent's batched path — one round-trip per agent per tick, so a
        perfevent fetch is a single batched timeline read instead of
        events × cpus scalar reads.  The report lists metrics in request
        order regardless of grouping."""
        if not metrics:
            raise ValueError("empty metric list")
        if t1 < t0:
            raise ValueError("fetch window reversed")
        by_agent: dict[int, tuple[Agent, list[str]]] = {}
        for m in metrics:
            agent = self._route(m)
            by_agent.setdefault(id(agent), (agent, []))[1].append(m)
        fetched: dict[str, dict[str, float]] = {}
        for agent, ms in by_agent.values():
            fetched.update(agent.fetch_batch(ms, t0, t1))
        values = {m: fetched[m] for m in metrics}
        report = Report(time=t1, window=(t0, t1), values=values)
        self.costs.charge(report.n_points, self.cpu_per_fetch, self.cpu_per_value)
        return report

    def resource_usage(self) -> dict[str, AgentCosts]:
        """Per-agent accumulated costs, pmcd included (Fig 6 data)."""
        out = {a.name: a.costs for a in self.agents}
        out["pmcd"] = self.costs
        return out
