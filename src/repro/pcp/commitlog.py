"""Durable streaming ingest: an in-process, virtual-time commit log.

PR 2's :class:`~repro.pcp.shipper.Shipper` made the host link resilient,
but it is still point-to-point: one queue, one consumer (the DB writer),
and everybody else (rollups, anomaly scans, SUPERDB federation) rides the
DB writer's fate.  This module generalizes the shipper's WAL into the
substrate production ODA pipelines sit on — a Kafka-shaped commit log:

- **topics are measurements**; each topic is split into a fixed number of
  **partitions** and a series lands on the partition its PR 6 consistent-
  hash key (:func:`repro.db.sharded.series_key` over a
  :class:`~repro.db.sharded.HashRing`) places it on, so log partitioning
  and shard placement agree;
- partitions are **append-only segment files** of
  :class:`LogRecord`-serialized reports.  Every record carries a log-wide
  monotone **sequence number** — the idempotence token downstream applies
  are gated on;
- a **flushed high-watermark** per partition separates durable records
  from the producer's unacked tail.  Consumers only ever see flushed
  records; a :class:`~repro.faults.log.LogTruncation` (crash-restart of
  the log) loses exactly the unflushed tail, which the
  :class:`LogProducer` retains and resends under the *same* sequence
  numbers — so truncation is loss-free end to end;
- **consumer groups** own disjoint partition assignments (round-robin
  over the sorted partition list), poll at their own pace, and commit
  :class:`Checkpoint` s — ``(next offset, applied seq, optional state
  blob)`` — atomically to the :class:`CheckpointStore` (the in-process
  model of ``__consumer_offsets``).  Membership changes (crash, rejoin)
  rebalance assignments and reset read positions to the committed
  checkpoints, which is what makes replay-from-checkpoint the *only*
  recovery path;
- a **dead-letter queue** parks poison records (parse failures, applies
  that keep failing) per group, deduplicated by sequence number so crash
  redelivery cannot park the same record twice; :meth:`CommitLog.requeue`
  re-appends parked records under *fresh* sequence numbers, preserving
  per-partition seq monotonicity (what the at-most-once gate relies on).

Everything is driven by the caller's virtual clock — appends, flushes,
truncations and rebalances are all stamped — so chaos schedules replay
bit-for-bit.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Any

from repro.db.influx import Point
from repro.db.sharded import HashRing, series_key
from repro.faults.log import LogFaultSet

__all__ = [
    "LogRecord",
    "LogSegment",
    "Checkpoint",
    "CheckpointStore",
    "DeadLetter",
    "DeadLetterQueue",
    "CommitLog",
    "LogProducer",
]


@dataclass(frozen=True)
class LogRecord:
    """One report's points for one (topic, partition), in line protocol.

    ``seq`` is the log-wide idempotence token; ``offset`` is the record's
    position in its partition (re-assigned if the record is re-appended
    after a truncation or a DLQ requeue).  ``report_id``/``report_records``
    tie the record back to the sampler report it was split from, so the
    DB writer can account whole reports for Table III.
    """

    topic: str
    partition: int
    offset: int
    seq: int
    time: float  # sample timestamp of the report
    produced_at: float  # virtual append time
    lines: str  # line-protocol payload
    n_fields: int
    tag: str
    is_zero: bool = False
    report_id: int = -1
    report_records: int = 1
    #: Set on DLQ-requeued records: only this group consumes the copy.
    #: Every other group already settled the original (applied or parked
    #: it); an untargeted re-append would make them apply it twice.
    for_group: str | None = None

    def points(self) -> list[Point]:
        """Deserialize the payload; raises on poison (malformed lines)."""
        return [
            Point.from_line(line)
            for line in self.lines.splitlines()
            if line.strip()
        ]


class LogSegment:
    """One append-only segment file of a partition."""

    __slots__ = ("base_offset", "records")

    def __init__(self, base_offset: int) -> None:
        self.base_offset = base_offset
        self.records: list[LogRecord] = []

    @property
    def end_offset(self) -> int:
        return self.base_offset + len(self.records)

    def __len__(self) -> int:
        return len(self.records)


class _Partition:
    """Segmented record store with a flushed (durable) high-watermark."""

    __slots__ = ("topic", "index", "segment_records", "segments", "flushed")

    def __init__(self, topic: str, index: int, segment_records: int) -> None:
        self.topic = topic
        self.index = index
        self.segment_records = segment_records
        self.segments: list[LogSegment] = [LogSegment(0)]
        #: Offsets below this are durable; consumers never read past it.
        self.flushed = 0

    @property
    def start_offset(self) -> int:
        return self.segments[0].base_offset

    @property
    def next_offset(self) -> int:
        return self.segments[-1].end_offset

    def append(self, rec: LogRecord) -> None:
        seg = self.segments[-1]
        if len(seg) >= self.segment_records:
            seg = LogSegment(seg.end_offset)
            self.segments.append(seg)
        seg.records.append(rec)

    def get(self, offset: int) -> LogRecord:
        bases = [s.base_offset for s in self.segments]
        i = bisect_right(bases, offset) - 1
        seg = self.segments[i]
        return seg.records[offset - seg.base_offset]

    def read(self, start: int, max_records: int) -> list[LogRecord]:
        """Durable records in ``[start, flushed)``, at most ``max_records``."""
        start = max(start, self.start_offset)
        stop = min(self.flushed, start + max_records)
        out: list[LogRecord] = []
        o = start
        while o < stop:
            seg_i = bisect_right([s.base_offset for s in self.segments], o) - 1
            seg = self.segments[seg_i]
            lo = o - seg.base_offset
            hi = min(len(seg), stop - seg.base_offset)
            out.extend(seg.records[lo:hi])
            o = seg.base_offset + hi
        return out

    def flush(self) -> int:
        """Mark everything appended so far durable; returns records flushed."""
        n = self.next_offset - self.flushed
        self.flushed = self.next_offset
        return n

    def truncate_to_flushed(self) -> list[LogRecord]:
        """Crash-restart: drop the unflushed tail, returning what was lost."""
        lost: list[LogRecord] = []
        while self.segments and self.segments[-1].base_offset >= self.flushed:
            seg = self.segments.pop()
            lost[:0] = seg.records
        if not self.segments:
            self.segments.append(LogSegment(self.flushed))
        else:
            seg = self.segments[-1]
            keep = self.flushed - seg.base_offset
            lost[:0] = seg.records[keep:]
            del seg.records[keep:]
        return lost

    def trim(self, upto: int) -> int:
        """Drop whole segments fully below ``upto`` (all-consumed, durable).

        The active tail segment always survives, so ``next_offset`` never
        goes backwards.  Returns records reclaimed.
        """
        reclaimed = 0
        while len(self.segments) > 1 and self.segments[0].end_offset <= upto:
            reclaimed += len(self.segments.pop(0))
        return reclaimed


@dataclass
class Checkpoint:
    """Committed progress of one (group, topic, partition).

    ``offset`` is the next record to read, ``applied_seq`` the highest
    sequence number whose effects are durable in the consumer's sink, and
    ``state`` an opaque blob committed *atomically* with the offset — the
    exactly-once trick the rollup maintainer uses (its accumulator never
    drifts from its offset).
    """

    offset: int = 0
    applied_seq: int = -1
    state: Any = None


class CheckpointStore:
    """The in-process ``__consumer_offsets``: atomic, crash-durable commits."""

    def __init__(self) -> None:
        self._docs: dict[tuple[str, str, int], Checkpoint] = {}
        self.commits = 0

    def load(self, group: str, tp: tuple[str, int]) -> Checkpoint:
        cp = self._docs.get((group, *tp))
        return cp if cp is not None else Checkpoint()

    def commit(
        self,
        group: str,
        tp: tuple[str, int],
        offset: int,
        applied_seq: int,
        state: Any = None,
    ) -> None:
        self._docs[(group, *tp)] = Checkpoint(offset, applied_seq, state)
        self.commits += 1

    def committed_offset(self, group: str, tp: tuple[str, int]) -> int:
        return self.load(group, tp).offset

    def for_group(self, group: str) -> dict[tuple[str, int], Checkpoint]:
        return {
            (topic, p): cp
            for (g, topic, p), cp in self._docs.items()
            if g == group
        }

    def snapshot(self) -> dict[str, dict[str, int]]:
        """JSON-friendly view for health surfaces and CI artifacts."""
        return {
            f"{g}:{topic}/{p}": {"offset": cp.offset, "applied_seq": cp.applied_seq}
            for (g, topic, p), cp in sorted(self._docs.items())
        }


@dataclass
class DeadLetter:
    """One poison record parked for one consumer group."""

    group: str
    record: LogRecord
    reason: str  # "parse-error" | "apply-error"
    error: str
    attempts: int
    parked_at: float

    def to_dict(self) -> dict[str, Any]:
        r = self.record
        return {
            "group": self.group,
            "topic": r.topic,
            "partition": r.partition,
            "offset": r.offset,
            "seq": r.seq,
            "tag": r.tag,
            "reason": self.reason,
            "error": self.error,
            "attempts": self.attempts,
            "parked_at": self.parked_at,
        }


class DeadLetterQueue:
    """Per-group parking lot for records a consumer could not apply."""

    def __init__(self) -> None:
        self.entries: list[DeadLetter] = []
        self.parked_total = 0
        self.requeued_total = 0

    def __len__(self) -> int:
        return len(self.entries)

    def park(
        self,
        group: str,
        record: LogRecord,
        reason: str,
        error: str,
        attempts: int,
        t: float,
    ) -> DeadLetter | None:
        """Park one record; None if this (group, seq) is already parked.

        The dedup matters under crash redelivery: a consumer that parked a
        record, crashed before committing, and replays the batch must not
        grow the DLQ a second time.
        """
        for e in self.entries:
            if e.group == group and e.record.seq == record.seq:
                return None
        letter = DeadLetter(group, record, reason, error, attempts, t)
        self.entries.append(letter)
        self.parked_total += 1
        return letter

    def for_group(self, group: str) -> list[DeadLetter]:
        return [e for e in self.entries if e.group == group]

    def is_parked(self, group: str, seq: int) -> bool:
        """Whether ``group`` currently holds this seq parked.

        Consumers check this on redelivery: once a record is parked, the
        DLQ owns it — a crash-replay of the same batch must *skip* it, or
        the record gets applied both by the replay (after the fault heals)
        and by the eventual requeue under a fresh seq, defeating every
        idempotence gate."""
        return any(
            e.group == group and e.record.seq == seq for e in self.entries
        )

    def take(self, group: str | None = None) -> list[DeadLetter]:
        """Remove and return parked entries (all groups if None)."""
        taken = [e for e in self.entries if group is None or e.group == group]
        self.entries = [e for e in self.entries if e not in taken]
        return taken

    def summary(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.entries:
            out[e.group] = out.get(e.group, 0) + 1
        return out

    def to_dicts(self) -> list[dict[str, Any]]:
        return [e.to_dict() for e in self.entries]


class CommitLog:
    """Topics × partitions × segments, plus group coordination and the DLQ."""

    def __init__(
        self,
        n_partitions: int = 4,
        *,
        segment_records: int = 256,
        vnodes: int = 16,
        faults: LogFaultSet | None = None,
    ) -> None:
        if n_partitions < 1:
            raise ValueError("commit log needs at least one partition per topic")
        if segment_records < 1:
            raise ValueError("segments must hold at least one record")
        self.n_partitions = n_partitions
        self.segment_records = segment_records
        # Same placement construction as the PR 6 shard router: a series'
        # partition is where its consistent-hash key lands on the ring.
        self.ring = HashRing([f"p{i}" for i in range(n_partitions)], vnodes=vnodes)
        self.faults = faults or LogFaultSet()
        self.checkpoints = CheckpointStore()
        self.dlq = DeadLetterQueue()
        self.now = 0.0

        self._topics: dict[str, list[_Partition]] = {}
        self._seq = 0
        self._report_seq = 0
        self._placement: dict[tuple[str, tuple], int] = {}
        self._applied_truncations: set[int] = set()

        # Group coordination.
        self._members: dict[str, list[str]] = {}
        self._generations: dict[str, int] = {}
        self._positions: dict[tuple[str, str, int], int] = {}
        self.rebalances = 0

        # Observability.
        self.appended_records = 0
        self.flushed_records = 0
        self.truncated_records = 0
        self.trimmed_records = 0
        self.requeued_records = 0

    # ------------------------------------------------------------------
    # Virtual time & faults
    # ------------------------------------------------------------------
    def at(self, t: float) -> "CommitLog":
        """Stamp the clock and apply any truncation that has come due."""
        self.now = t
        for f in self.faults.truncations:
            if f.at <= t and id(f) not in self._applied_truncations:
                self._applied_truncations.add(id(f))
                self._truncate(f.topic)
        return self

    def _truncate(self, topic: str | None) -> int:
        lost = 0
        for name, parts in self._topics.items():
            if topic is not None and name != topic:
                continue
            for p in parts:
                lost += len(p.truncate_to_flushed())
        self.truncated_records += lost
        return lost

    # ------------------------------------------------------------------
    # Topics, placement, append
    # ------------------------------------------------------------------
    def _topic(self, name: str) -> list[_Partition]:
        parts = self._topics.get(name)
        if parts is None:
            parts = self._topics[name] = [
                _Partition(name, i, self.segment_records)
                for i in range(self.n_partitions)
            ]
        return parts

    def topics(self) -> list[str]:
        return sorted(self._topics)

    def partition_for(self, topic: str, tags: dict[str, str]) -> int:
        """PR 6 placement: consistent-hash the series key over partitions."""
        tagkey = tuple(sorted(tags.items()))
        k = (topic, tagkey)
        p = self._placement.get(k)
        if p is None:
            p = self._placement[k] = int(
                self.ring.place(series_key(topic, tagkey))[1:]
            )
        return p

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def next_report_id(self) -> int:
        self._report_seq += 1
        return self._report_seq

    def append(
        self,
        topic: str,
        partition: int,
        *,
        seq: int,
        time: float,
        lines: str,
        n_fields: int,
        tag: str,
        is_zero: bool = False,
        report_id: int = -1,
        report_records: int = 1,
    ) -> LogRecord:
        p = self._topic(topic)[partition]
        rec = LogRecord(
            topic=topic,
            partition=partition,
            offset=p.next_offset,
            seq=seq,
            time=time,
            produced_at=self.now,
            lines=lines,
            n_fields=n_fields,
            tag=tag,
            is_zero=is_zero,
            report_id=report_id,
            report_records=report_records,
        )
        p.append(rec)
        self.appended_records += 1
        return rec

    def has_record(self, rec: LogRecord) -> bool:
        """Is this exact (offset, seq) still in the log?  Truncation probe."""
        parts = self._topics.get(rec.topic)
        if parts is None:
            return False
        p = parts[rec.partition]
        if not (p.start_offset <= rec.offset < p.next_offset):
            return False
        return p.get(rec.offset).seq == rec.seq

    def flush(self, topic: str | None = None) -> int:
        """fsync: advance the durable high-watermark; returns records flushed."""
        n = 0
        for name, parts in self._topics.items():
            if topic is not None and name != topic:
                continue
            for p in parts:
                n += p.flush()
        self.flushed_records += n
        return n

    def end_offset(self, topic: str, partition: int) -> int:
        return self._topic(topic)[partition].next_offset

    def flushed_offset(self, topic: str, partition: int) -> int:
        return self._topic(topic)[partition].flushed

    # ------------------------------------------------------------------
    # Consumer groups
    # ------------------------------------------------------------------
    def join(self, group: str, consumer: str) -> None:
        members = self._members.setdefault(group, [])
        if consumer not in members:
            members.append(consumer)
            members.sort()
            self._rebalance(group)

    def leave(self, group: str, consumer: str) -> None:
        members = self._members.get(group, [])
        if consumer in members:
            members.remove(consumer)
            self._rebalance(group)

    def members(self, group: str) -> list[str]:
        return list(self._members.get(group, []))

    def _rebalance(self, group: str) -> None:
        """Membership changed: bump the generation and reset every read
        position to the committed checkpoint — replay-from-checkpoint is
        the only recovery path, so survivors re-read (and re-gate) any
        applied-but-uncommitted tail the departed member left behind."""
        self._generations[group] = self._generations.get(group, 0) + 1
        self.rebalances += 1
        for key in [k for k in self._positions if k[0] == group]:
            del self._positions[key]

    def generation(self, group: str) -> int:
        return self._generations.get(group, 0)

    def all_partitions(self) -> list[tuple[str, int]]:
        return [
            (topic, p.index)
            for topic in sorted(self._topics)
            for p in self._topics[topic]
        ]

    def assignment(self, group: str, consumer: str) -> list[tuple[str, int]]:
        """Round-robin assignment over the sorted partition list.

        Deterministic in (member set, topic set) alone, so every member
        computes the same split without a coordinator round-trip.
        """
        members = self._members.get(group, [])
        if consumer not in members:
            return []
        idx = members.index(consumer)
        return [
            tp
            for i, tp in enumerate(self.all_partitions())
            if i % len(members) == idx
        ]

    def poll(
        self,
        group: str,
        consumer: str,
        tp: tuple[str, int],
        max_records: int,
    ) -> list[LogRecord]:
        """Fetch durable records from the group's position on ``tp``.

        The position starts at the committed checkpoint and advances as
        records are handed out; rebalances reset it to the checkpoint.
        """
        if consumer not in self._members.get(group, []):
            return []
        topic, part = tp
        p = self._topic(topic)[part]
        key = (group, topic, part)
        pos = self._positions.get(key)
        if pos is None:
            pos = self.checkpoints.committed_offset(group, tp)
        records = p.read(pos, max_records)
        if records:
            self._positions[key] = records[-1].offset + 1
        return records

    def commit(
        self,
        group: str,
        tp: tuple[str, int],
        offset: int,
        applied_seq: int,
        state: Any = None,
    ) -> None:
        self.checkpoints.commit(group, tp, offset, applied_seq, state)

    def committed(self, group: str, tp: tuple[str, int]) -> Checkpoint:
        return self.checkpoints.load(group, tp)

    def lag(self, group: str) -> dict[tuple[str, int], int]:
        """Durable-but-uncommitted records per partition for one group."""
        out: dict[tuple[str, int], int] = {}
        for topic, parts in self._topics.items():
            for p in parts:
                committed = self.checkpoints.committed_offset(
                    group, (topic, p.index)
                )
                out[(topic, p.index)] = max(0, p.flushed - committed)
        return out

    def total_lag(self, group: str) -> int:
        return sum(self.lag(group).values())

    # ------------------------------------------------------------------
    # Dead-letter queue
    # ------------------------------------------------------------------
    def park(
        self,
        group: str,
        record: LogRecord,
        reason: str,
        error: str,
        attempts: int,
    ) -> DeadLetter | None:
        return self.dlq.park(group, record, reason, error, attempts, self.now)

    def requeue(self, group: str | None = None) -> int:
        """Re-append parked records under fresh sequence numbers.

        Fresh seqs keep per-partition sequences monotone (the at-most-once
        gate's soundness condition); the re-appended partitions are flushed
        immediately so the records are consumable right away.  Each copy is
        targeted (``for_group``) at the group that parked it — the other
        groups settled the original already, and a fresh seq would defeat
        their idempotence gates.  Returns the number of records requeued.
        """
        taken = self.dlq.take(group)
        touched: set[str] = set()
        for letter in taken:
            r = letter.record
            rec = replace(
                r,
                offset=self._topic(r.topic)[r.partition].next_offset,
                seq=self.next_seq(),
                produced_at=self.now,
                for_group=letter.group,
            )
            self._topic(r.topic)[r.partition].append(rec)
            self.appended_records += 1
            touched.add(r.topic)
        for topic in touched:
            self.flush(topic)
        self.dlq.requeued_total += len(taken)
        self.requeued_records += len(taken)
        return len(taken)

    def inject_poison(
        self,
        topic: str,
        *,
        tags: dict[str, str] | None = None,
        time: float = 0.0,
        lines: str = "!! not line protocol !!",
        tag: str = "poison",
    ) -> LogRecord:
        """Append (and flush) one unparseable record — chaos/CLI helper."""
        partition = self.partition_for(topic, tags or {"tag": tag})
        rec = self.append(
            topic,
            partition,
            seq=self.next_seq(),
            time=time,
            lines=lines,
            n_fields=0,
            tag=tag,
            report_id=self.next_report_id(),
        )
        self.flush(topic)
        return rec

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def trim(self, groups: list[str] | None = None) -> int:
        """Reclaim segments every listed group has committed past.

        ``groups`` defaults to every group that ever joined; partitions
        keep their active tail segment, so the log stays bounded by
        (slowest consumer's lag + one segment) per partition.
        """
        groups = list(self._members) if groups is None else groups
        if not groups:
            return 0
        reclaimed = 0
        for topic, parts in self._topics.items():
            for p in parts:
                floor = min(
                    self.checkpoints.committed_offset(g, (topic, p.index))
                    for g in groups
                )
                reclaimed += p.trim(min(floor, p.flushed))
        self.trimmed_records += reclaimed
        return reclaimed

    def stats(self) -> dict[str, Any]:
        per_topic = {
            topic: {
                "partitions": len(parts),
                "records": sum(p.next_offset - p.start_offset for p in parts),
                "flushed": [p.flushed for p in parts],
                "end": [p.next_offset for p in parts],
            }
            for topic, parts in sorted(self._topics.items())
        }
        return {
            "appended_records": self.appended_records,
            "flushed_records": self.flushed_records,
            "truncated_records": self.truncated_records,
            "trimmed_records": self.trimmed_records,
            "requeued_records": self.requeued_records,
            "rebalances": self.rebalances,
            "checkpoint_commits": self.checkpoints.commits,
            "dlq": self.dlq.summary(),
            "topics": per_topic,
        }


class LogProducer:
    """The PR 2 shipper generalized: appends reports, retains the unacked
    tail, and resends after a truncation under the same sequence numbers.

    One report fans out into one record per (measurement, partition) —
    split deterministically, smallest key first.  Records stay in the
    producer's retention buffer until a flush makes them durable; if a
    :class:`~repro.faults.log.LogTruncation` wipes the unflushed tail
    first, the next produce/flush re-appends them (fresh offsets, original
    seqs), which is why truncation never loses data.
    """

    def __init__(self, log: CommitLog, *, fsync_every_reports: int = 1) -> None:
        if fsync_every_reports < 1:
            raise ValueError("fsync cadence must be >= 1 report")
        self.log = log
        self.fsync_every_reports = fsync_every_reports
        self._unacked: list[LogRecord] = []
        self._reports_since_flush = 0

        self.produced_reports = 0
        self.produced_records = 0
        self.produced_points = 0
        self.resent_records = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._unacked)

    # ------------------------------------------------------------------
    def _reconcile(self) -> None:
        """Re-append any retained record a truncation wiped (same seq)."""
        for i, rec in enumerate(self._unacked):
            if self.log.has_record(rec):
                continue
            p = self.log._topic(rec.topic)[rec.partition]
            fresh = replace(rec, offset=p.next_offset, produced_at=self.log.now)
            p.append(fresh)
            self.log.appended_records += 1
            self._unacked[i] = fresh
            self.resent_records += 1

    def produce(
        self,
        t: float,
        report_time: float,
        batch: list[Point],
        tag: str,
        is_zero: bool = False,
    ) -> list[LogRecord]:
        """Split one report's point batch into records and append them."""
        self.log.at(t)
        self._reconcile()
        groups: dict[tuple[str, int], list[Point]] = {}
        for p in batch:
            key = (p.measurement, self.log.partition_for(p.measurement, p.tags))
            groups.setdefault(key, []).append(p)
        report_id = self.log.next_report_id()
        records: list[LogRecord] = []
        for (topic, partition) in sorted(groups):
            pts = groups[(topic, partition)]
            records.append(
                self.log.append(
                    topic,
                    partition,
                    seq=self.log.next_seq(),
                    time=report_time,
                    lines="\n".join(p.to_line() for p in pts),
                    n_fields=sum(len(p.fields) for p in pts),
                    tag=tag,
                    is_zero=is_zero,
                    report_id=report_id,
                    report_records=len(groups),
                )
            )
        self._unacked.extend(records)
        self.produced_reports += 1
        self.produced_records += len(records)
        self.produced_points += sum(r.n_fields for r in records)
        self._reports_since_flush += 1
        if self._reports_since_flush >= self.fsync_every_reports:
            self.flush(t)
        return records

    def flush(self, t: float) -> int:
        """fsync the log: everything appended becomes durable (acked)."""
        self.log.at(t)
        self._reconcile()
        n = self.log.flush()
        self._unacked.clear()
        self._reports_since_flush = 0
        self.flushes += 1
        return n
