"""Consumer groups over the commit log: poll → gate → apply → checkpoint.

Four consumers ride :class:`~repro.pcp.commitlog.CommitLog`, each its own
group so each fails and recovers independently:

- **db-writer** — applies records into the host InfluxDB through the
  daemon's failure-injectable write path, pinning each point's write
  sequence to the record's log seq (``write_many(..., seqs=…)``), so the
  sink itself answers "was this record already applied?" via
  ``max_seq`` — the gate that makes crash replay at-most-once-visible;
- **rollup** — folds points into per-bucket count/total/min/max
  aggregates whose accumulator is committed *inside* the checkpoint,
  atomically with the offset.  Replay from the checkpoint therefore
  replays onto the matching accumulator: genuinely exactly-once;
- **anomaly** — flags out-of-bounds field values into a shared dict via
  keyed upserts (key = record content, not seq), idempotent under both
  crash redelivery and DLQ requeue;
- **federator** — pushes records into a SUPERDB-side engine with the same
  seq-pinned, sink-gated discipline as the db-writer, over the PR 4 WAN
  fault set when the sink is a ``FaultyInfluxDB``.

Apply failures retry with the PR 2 decorrelated-jitter backoff behind a
circuit breaker; a record that exhausts its attempt budget (or fails to
parse at all) parks in the DLQ and the partition moves on — poison is
isolated, not head-of-line blocking.  :class:`IngestPipeline` owns the
virtual-time pump: it schedules polls, enforces
:class:`~repro.faults.log.ConsumerCrash` windows (leave → rebalance →
rejoin), tracks peak group lag, and trims consumed segments.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.db.faulty import ServiceUnavailable
from repro.db.influx import InfluxError, Point
from repro.faults.log import LogFaultSet
from repro.faults.services import ServiceFaultSet

from .commitlog import Checkpoint, CommitLog, LogProducer, LogRecord
from .retry import CircuitBreaker, RetryPolicy
from .transport import TransportModel

__all__ = [
    "ApplyError",
    "LogConsumer",
    "ReportTracker",
    "DbWriterConsumer",
    "RollupMaintainerConsumer",
    "AnomalyScannerConsumer",
    "FederatorConsumer",
    "IngestPipeline",
]

#: Canonical group names (one group per downstream concern).
GROUP_DB_WRITER = "db-writer"
GROUP_ROLLUP = "rollup"
GROUP_ANOMALY = "anomaly"
GROUP_FEDERATOR = "federator"


class ApplyError(Exception):
    """A consumer's apply failed for this record (retryable)."""


class LogConsumer:
    """One member of a consumer group; subclasses define the apply.

    The per-partition cycle is: load the committed checkpoint, poll a
    batch, then per record — seq gate → parse (poison parks) → sink gate →
    apply with retry/breaker (exhaustion parks) — committing
    ``(next offset, applied seq, state)`` every ``commit_every`` records
    and at batch end.  The gap between an apply and its commit is exactly
    the crash window the gates exist for.
    """

    GROUP = "consumer"

    def __init__(
        self,
        log: CommitLog,
        *,
        group: str | None = None,
        cid: str | None = None,
        poll_interval_s: float = 0.5,
        max_poll_records: int = 64,
        commit_every: int = 8,
        max_apply_attempts: int = 8,
        apply_cost_base_s: float = 0.002,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        seed: int = 0,
    ) -> None:
        if poll_interval_s <= 0:
            raise ValueError("poll interval must be positive")
        if max_poll_records < 1 or commit_every < 1 or max_apply_attempts < 1:
            raise ValueError("poll/commit/attempt budgets must be >= 1")
        self.log = log
        self.group = group or self.GROUP
        self.cid = cid or f"{self.group}-0"
        self.poll_interval_s = poll_interval_s
        self.max_poll_records = max_poll_records
        self.commit_every = commit_every
        self.max_apply_attempts = max_apply_attempts
        self.apply_cost_base_s = apply_cost_base_s
        self.retry = retry or RetryPolicy(base_s=0.05, cap_s=2.0)
        self.breaker = breaker or CircuitBreaker(5, 1.0)
        self._rng = np.random.default_rng(seed)
        self.next_poll_t = 0.0
        self._last_apply_error = ("", 0)
        log.join(self.group, self.cid)

        self.polled_records = 0
        self.applied_records = 0
        self.applied_points = 0
        self.duplicate_records = 0
        self.filtered_records = 0
        self.parked_records = 0
        self.replayed_parked_records = 0
        self.apply_failures = 0
        self.interruptions = 0
        self.max_staleness_s = 0.0

    # -- subclass surface ----------------------------------------------
    def apply(self, rec: LogRecord, pts: list[Point], t: float) -> None:
        """Make the record's effects durable in the sink; raise to retry."""

    def _on_applied(self, rec: LogRecord, pts: list[Point], t: float) -> None:
        """Post-apply bookkeeping (trackers, accumulators, upserts)."""

    def _sink_applied(self, rec: LogRecord, pts: list[Point]) -> bool:
        """Does the sink already hold this record's effects?"""
        return False

    def _load_state(self, tp: tuple[str, int], cp: Checkpoint) -> None:
        """Restore checkpoint-embedded state before processing ``tp``."""

    def _commit_state(self, tp: tuple[str, int]) -> Any:
        """State blob to commit atomically with the offset (or None)."""
        return None

    def apply_cost_s(self, rec: LogRecord, t: float) -> float:
        return self.apply_cost_base_s

    # -- the poll cycle -------------------------------------------------
    def step(self, t: float, alive: Callable[[float], bool]) -> float:
        """Run one poll cycle starting at ``t``; returns the end time."""
        t0 = t
        for tp in self.log.assignment(self.group, self.cid):
            t, interrupted = self._consume_tp(tp, t, alive)
            if interrupted:
                break
        self.next_poll_t = max(t0 + self.poll_interval_s, t)
        return t

    def _consume_tp(
        self, tp: tuple[str, int], t: float, alive: Callable[[float], bool]
    ) -> tuple[float, bool]:
        log = self.log
        cp = log.committed(self.group, tp)
        records = log.poll(self.group, self.cid, tp, self.max_poll_records)
        if not records:
            return t, False
        self._load_state(tp, cp)
        applied_seq = cp.applied_seq
        next_offset = cp.offset
        n_since = 0
        for rec in records:
            if not alive(t):
                self.interruptions += 1
                return t, True
            self.polled_records += 1
            if rec.for_group is not None and rec.for_group != self.group:
                self.filtered_records += 1  # another group's DLQ redelivery
            elif rec.seq <= applied_seq:
                self.duplicate_records += 1
            elif log.dlq.is_parked(self.group, rec.seq):
                # Crash-replay of a record this group already parked: the
                # DLQ owns it now.  Re-attempting here could *succeed*
                # (the fault healed) and the later requeue — under a
                # fresh seq no idempotence gate recognizes — would apply
                # it a second time.
                self.replayed_parked_records += 1
            else:
                done, t, interrupted = self._handle(rec, t, alive)
                if interrupted:
                    return t, True
                applied_seq = max(applied_seq, rec.seq)
            next_offset = rec.offset + 1
            n_since += 1
            if n_since >= self.commit_every:
                log.commit(self.group, tp, next_offset, applied_seq,
                           self._commit_state(tp))
                n_since = 0
        if n_since:
            log.commit(self.group, tp, next_offset, applied_seq,
                       self._commit_state(tp))
        return t, False

    def _handle(
        self, rec: LogRecord, t: float, alive: Callable[[float], bool]
    ) -> tuple[bool, float, bool]:
        """Process one non-gated record → (visible effect?, t, interrupted)."""
        try:
            pts = rec.points()
        except (InfluxError, ValueError) as e:
            self.log.park(self.group, rec, "parse-error", str(e), 0)
            self.parked_records += 1
            return False, t, False
        if self._sink_applied(rec, pts):
            self.duplicate_records += 1
            return False, t, False
        ok, t = self._apply_with_retry(rec, pts, t, alive)
        if ok is None:
            return False, t, True
        if ok:
            self.applied_records += 1
            self.applied_points += rec.n_fields
            self.max_staleness_s = max(self.max_staleness_s, t - rec.time)
            self._on_applied(rec, pts, t)
            return True, t, False
        error, attempts = self._last_apply_error
        self.log.park(self.group, rec, "apply-error", error, attempts)
        self.parked_records += 1
        return False, t, False

    def _apply_with_retry(
        self, rec: LogRecord, pts: list[Point], t: float,
        alive: Callable[[float], bool],
    ) -> tuple[bool | None, float]:
        """Apply with backoff behind the breaker; None = crashed mid-retry."""
        attempts = 0
        prev_sleep = 0.0
        while True:
            start = self.breaker.earliest_attempt(t)
            if not alive(start):
                return None, start
            self.breaker.on_attempt(start)
            t_done = start + self.apply_cost_s(rec, start)
            attempts += 1
            try:
                self.apply(rec, pts, t_done)
            except (ApplyError, ServiceUnavailable) as e:
                self.apply_failures += 1
                self.breaker.record_failure(t_done)
                if attempts >= self.max_apply_attempts:
                    self._last_apply_error = (str(e), attempts)
                    return False, t_done
                prev_sleep = self.retry.next_sleep(prev_sleep, self._rng)
                t = t_done + prev_sleep
                continue
            self.breaker.record_success(t_done)
            return True, t_done


class ReportTracker:
    """Whole-report accounting shared by a db-writer group's members.

    A report fans out into ``report_records`` records that may land on
    partitions owned by different members; the report counts as inserted
    (Table III semantics) once every one of them applied.
    """

    def __init__(self) -> None:
        self._remaining: dict[int, int] = {}
        self.reports = 0
        self.zero_reports = 0

    def record_applied(self, rec: LogRecord) -> None:
        rem = self._remaining.get(rec.report_id, rec.report_records) - 1
        if rem <= 0:
            self._remaining.pop(rec.report_id, None)
            self.reports += 1
            if rec.is_zero:
                self.zero_reports += 1
        else:
            self._remaining[rec.report_id] = rem


class DbWriterConsumer(LogConsumer):
    """Applies records into Influx with seq-pinned writes and sink gating."""

    GROUP = GROUP_DB_WRITER

    def __init__(
        self,
        log: CommitLog,
        sink,
        database: str = "pmove",
        *,
        transport: TransportModel | None = None,
        service_faults: ServiceFaultSet | None = None,
        tracker: ReportTracker | None = None,
        **kw: Any,
    ) -> None:
        super().__init__(log, **kw)
        self.sink = sink
        self.database = database
        self.transport = transport
        # A FaultyInfluxDB carries its own fault set; use it unless overridden.
        self.service_faults = (
            service_faults if service_faults is not None
            else getattr(sink, "faults", None)
        )
        self.tracker = tracker or ReportTracker()
        self.zero_points = 0
        if database not in sink.databases():
            sink.create_database(database)

    def apply_cost_s(self, rec: LogRecord, t: float) -> float:
        if self.transport is None:
            return self.apply_cost_base_s
        return self.transport.ship_time(
            rec.n_fields, self._rng, at=t, faults=self.service_faults
        )

    def _sink_applied(self, rec: LogRecord, pts: list[Point]) -> bool:
        """Per-series gate: a record's points apply atomically and a
        series' records apply in seq order (same partition), so the first
        point's series holding seq ≥ rec.seq means this record landed."""
        max_seq = getattr(self.sink, "max_seq", None)
        if max_seq is None or not pts:
            return False
        return max_seq(self.database, rec.topic, pts[0].tags) >= rec.seq

    def apply(self, rec: LogRecord, pts: list[Point], t: float) -> None:
        if hasattr(self.sink, "at"):
            self.sink.at(t)
        self.sink.write_many(self.database, pts, seqs=[rec.seq] * len(pts))

    def _on_applied(self, rec: LogRecord, pts: list[Point], t: float) -> None:
        self.tracker.record_applied(rec)
        if rec.is_zero:
            self.zero_points += rec.n_fields


class RollupMaintainerConsumer(LogConsumer):
    """Maintains per-(topic, bucket) aggregates, exactly once.

    The accumulator lives *inside* the checkpoint: a commit stores
    ``(offset, applied_seq, accumulator)`` atomically, and a crash replays
    the uncommitted records onto the accumulator matching the committed
    offset — aggregates can neither skip nor double-count a record.  The
    visible state is :meth:`rollups`, read from committed checkpoints
    only.
    """

    GROUP = GROUP_ROLLUP

    def __init__(self, log: CommitLog, *, tier_s: float = 10.0, **kw: Any) -> None:
        if tier_s <= 0:
            raise ValueError("rollup tier must be a positive duration")
        super().__init__(log, **kw)
        self.tier_s = tier_s
        self._acc: dict[float, list[float]] = {}

    def _load_state(self, tp: tuple[str, int], cp: Checkpoint) -> None:
        self._acc = {b: list(v) for b, v in (cp.state or {}).items()}

    def _commit_state(self, tp: tuple[str, int]) -> dict[float, list[float]]:
        return {b: list(v) for b, v in self._acc.items()}

    def _on_applied(self, rec: LogRecord, pts: list[Point], t: float) -> None:
        T = self.tier_s
        for p in pts:
            b = (p.time // T) * T
            for v in p.fields.values():
                cell = self._acc.get(b)
                if cell is None:
                    self._acc[b] = [1.0, v, v, v]
                else:
                    cell[0] += 1.0
                    cell[1] += v
                    if v < cell[2]:
                        cell[2] = v
                    if v > cell[3]:
                        cell[3] = v

    def rollups(self) -> dict[tuple[str, float], tuple[float, float, float, float]]:
        """Merged (count, total, min, max) per (topic, bucket) — committed
        checkpoints only, so this view is crash-consistent by definition."""
        out: dict[tuple[str, float], list[float]] = {}
        for (topic, _p), cp in self.log.checkpoints.for_group(self.group).items():
            for b, (c, tot, mn, mx) in (cp.state or {}).items():
                cell = out.get((topic, b))
                if cell is None:
                    out[(topic, b)] = [c, tot, mn, mx]
                else:
                    cell[0] += c
                    cell[1] += tot
                    cell[2] = min(cell[2], mn)
                    cell[3] = max(cell[3], mx)
        return {k: tuple(v) for k, v in out.items()}


class AnomalyScannerConsumer(LogConsumer):
    """Flags out-of-bounds samples into a shared dict via keyed upserts.

    The alert key is record *content* — (topic, tag, sample time, field) —
    so redelivered and requeued copies overwrite rather than duplicate:
    idempotent without any seq bookkeeping.  The sink dict is owned by the
    caller (the daemon) and survives consumer crashes.
    """

    GROUP = GROUP_ANOMALY

    def __init__(
        self,
        log: CommitLog,
        *,
        sink: dict | None = None,
        bounds: dict[str, tuple[float, float]] | None = None,
        default_bounds: tuple[float, float] = (-np.inf, np.inf),
        **kw: Any,
    ) -> None:
        super().__init__(log, **kw)
        self.alerts = sink if sink is not None else {}
        self.bounds = bounds or {}
        self.default_bounds = default_bounds

    def _on_applied(self, rec: LogRecord, pts: list[Point], t: float) -> None:
        lo, hi = self.bounds.get(rec.topic, self.default_bounds)
        for p in pts:
            for name, v in p.fields.items():
                if not (lo <= v <= hi):
                    key = (rec.topic, rec.tag, p.time, name)
                    self.alerts[key] = {
                        "topic": rec.topic,
                        "tag": rec.tag,
                        "time": p.time,
                        "field": name,
                        "value": v,
                        "host": p.tags.get("host", ""),
                        "flagged_at": t,
                    }


class FederatorConsumer(DbWriterConsumer):
    """Pushes records into a SUPERDB-side engine (WAN faults apply when
    the sink is wrapped in a ``FaultyInfluxDB``); same seq-pinned,
    sink-gated discipline as the db-writer, its own pace and checkpoints."""

    GROUP = GROUP_FEDERATOR

    def __init__(self, log: CommitLog, sink, database: str = "superdb",
                 **kw: Any) -> None:
        super().__init__(log, sink, database, **kw)


class IngestPipeline:
    """Producer + consumer fleet over one CommitLog, pumped in virtual time.

    The pump is an event loop over consumer ``next_poll_t`` timestamps
    (ties broken by consumer id, so runs are deterministic).  Crash
    windows from the log fault set translate into group membership: a
    consumer whose poll lands inside its window leaves the group
    (rebalancing its partitions to survivors) and rejoins at window end.
    """

    def __init__(
        self,
        log: CommitLog | None = None,
        *,
        faults: LogFaultSet | None = None,
        fsync_every_reports: int = 1,
    ) -> None:
        self.log = log if log is not None else CommitLog(faults=faults)
        self.faults = self.log.faults
        self.producer = LogProducer(
            self.log, fsync_every_reports=fsync_every_reports
        )
        self.consumers: list[LogConsumer] = []
        self._present: dict[tuple[str, str], bool] = {}
        self._steps = 0
        self.max_group_lag = 0

    def add(self, consumer: LogConsumer) -> LogConsumer:
        self.consumers.append(consumer)
        self._present[(consumer.group, consumer.cid)] = True
        return consumer

    def group_members(self, group: str) -> list[LogConsumer]:
        return [c for c in self.consumers if c.group == group]

    # ------------------------------------------------------------------
    def produce(
        self,
        t: float,
        report_time: float,
        batch: list[Point],
        tag: str,
        is_zero: bool = False,
    ) -> list:
        return self.producer.produce(t, report_time, batch, tag, is_zero)

    # ------------------------------------------------------------------
    def _step_next(self, until: float) -> bool:
        """Run the earliest pending poll before ``until``; False if none."""
        best: LogConsumer | None = None
        for c in self.consumers:
            if c.next_poll_t < until and (
                best is None
                or (c.next_poll_t, c.cid) < (best.next_poll_t, best.cid)
            ):
                best = c
        if best is None:
            return False
        c, t = best, best.next_poll_t
        key = (c.group, c.cid)
        if self.faults.crashed(c.group, c.cid, t):
            if self._present.get(key, True):
                self.log.leave(c.group, c.cid)
                self._present[key] = False
            c.next_poll_t = self.faults.next_up(c.group, c.cid, t)
            return True
        if not self._present.get(key, True):
            self.log.join(c.group, c.cid)
            self._present[key] = True
        self.log.at(t)
        c.step(t, lambda tt, g=c.group, i=c.cid: not self.faults.crashed(g, i, tt))
        lag = self.log.total_lag(c.group)
        if lag > self.max_group_lag:
            self.max_group_lag = lag
        self._steps += 1
        if self._steps % 64 == 0:
            self.log.trim()
        return True

    def pump(self, until: float) -> None:
        """Run every poll cycle that starts before ``until``."""
        while self._step_next(until):
            pass

    def drain(self, deadline: float) -> float:
        """Pump until every group has consumed its durable backlog (or the
        deadline passes); returns the virtual time reached."""
        while True:
            if len(self.producer) == 0 and all(
                self.log.total_lag(c.group) == 0 for c in self.consumers
            ):
                break
            if not self._step_next(deadline):
                break
        self.log.trim()
        return self.log.now

    def backlog_records(self) -> int:
        """Durable records still unconsumed by at least one group."""
        return sum(
            self.log.total_lag(g) for g in sorted({c.group for c in self.consumers})
        )

    # ------------------------------------------------------------------
    def flat_counters(self) -> dict[str, float]:
        """Scalar counter snapshot — the sampler diffs two of these to
        produce per-run :class:`~repro.pcp.sampler.SamplingStats`."""
        p = self.producer
        out: dict[str, float] = {
            "producer.reports": p.produced_reports,
            "producer.records": p.produced_records,
            "producer.points": p.produced_points,
            "producer.resent": p.resent_records,
        }
        trackers_seen: set[int] = set()
        for c in self.consumers:
            g = c.group
            for attr in (
                "applied_records", "applied_points", "duplicate_records",
                "filtered_records", "parked_records",
                "replayed_parked_records", "apply_failures",
                "zero_points",
            ):
                v = getattr(c, attr, None)
                if v is not None:
                    out[f"{g}.{attr}"] = out.get(f"{g}.{attr}", 0) + v
            tracker = getattr(c, "tracker", None)
            if tracker is not None and id(tracker) not in trackers_seen:
                trackers_seen.add(id(tracker))
                out[f"{g}.reports"] = out.get(f"{g}.reports", 0) + tracker.reports
                out[f"{g}.zero_reports"] = (
                    out.get(f"{g}.zero_reports", 0) + tracker.zero_reports
                )
        return out

    def health(self) -> dict[str, Any]:
        """Operational snapshot: per-group lag/progress, DLQ, log stats."""
        groups: dict[str, Any] = {}
        for c in self.consumers:
            g = groups.setdefault(
                c.group,
                {
                    "lag": self.log.total_lag(c.group),
                    "applied_records": 0,
                    "duplicate_records": 0,
                    "parked_records": 0,
                    "apply_failures": 0,
                    "max_staleness_s": 0.0,
                    "members": [],
                },
            )
            g["applied_records"] += c.applied_records
            g["duplicate_records"] += c.duplicate_records
            g["parked_records"] += c.parked_records
            g["apply_failures"] += c.apply_failures
            g["max_staleness_s"] = max(g["max_staleness_s"], c.max_staleness_s)
            g["members"].append(
                {
                    "id": c.cid,
                    "alive": not self.faults.crashed(c.group, c.cid, self.log.now),
                    "breaker_state": c.breaker.state,
                }
            )
        return {
            "groups": groups,
            "producer": {
                "reports": self.producer.produced_reports,
                "records": self.producer.produced_records,
                "points": self.producer.produced_points,
                "resent_records": self.producer.resent_records,
                "unacked": len(self.producer),
            },
            "max_group_lag": self.max_group_lag,
            "dlq": self.log.dlq.summary(),
            "log": self.log.stats(),
        }
