"""Performance Co-Pilot substrate: metric namespace, agents (PMDAs), the
pmcd collector, the host-target transport model, and the unbuffered
sampling loop whose loss behaviour Table III measures."""

from .agents import Agent, AgentCosts, PmdaLinux, PmdaNvidia, PmdaPerfevent, PmdaProc
from .pmcd import Pmcd, Report
from .pmns import (
    instance_field,
    measurement_to_metric,
    metric_to_measurement,
    perfevent_metric,
    sanitize_event,
)
from .retry import CircuitBreaker, RetryPolicy
from .sampler import Sampler, SamplingStats
from .shipper import Shipper, ShipperConfig, WalEntry
from .transport import TransportModel

__all__ = [
    "Agent",
    "AgentCosts",
    "CircuitBreaker",
    "RetryPolicy",
    "Pmcd",
    "PmdaLinux",
    "PmdaNvidia",
    "PmdaPerfevent",
    "PmdaProc",
    "Report",
    "Sampler",
    "SamplingStats",
    "Shipper",
    "ShipperConfig",
    "TransportModel",
    "WalEntry",
    "instance_field",
    "measurement_to_metric",
    "metric_to_measurement",
    "perfevent_metric",
    "sanitize_event",
]
