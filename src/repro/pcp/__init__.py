"""Performance Co-Pilot substrate: metric namespace, agents (PMDAs), the
pmcd collector, the host-target transport model, and the unbuffered
sampling loop whose loss behaviour Table III measures."""

from .agents import Agent, AgentCosts, PmdaLinux, PmdaNvidia, PmdaPerfevent, PmdaProc
from .commitlog import (
    Checkpoint,
    CheckpointStore,
    CommitLog,
    DeadLetter,
    DeadLetterQueue,
    LogProducer,
    LogRecord,
    LogSegment,
)
from .consumers import (
    AnomalyScannerConsumer,
    ApplyError,
    DbWriterConsumer,
    FederatorConsumer,
    IngestPipeline,
    LogConsumer,
    ReportTracker,
    RollupMaintainerConsumer,
)
from .pmcd import Pmcd, Report
from .pmns import (
    instance_field,
    measurement_to_metric,
    metric_to_measurement,
    perfevent_metric,
    sanitize_event,
)
from .retry import CircuitBreaker, RetryPolicy
from .sampler import Sampler, SamplingStats
from .shipper import Shipper, ShipperConfig, WalEntry
from .transport import TransportModel

__all__ = [
    "Agent",
    "AgentCosts",
    "AnomalyScannerConsumer",
    "ApplyError",
    "Checkpoint",
    "CheckpointStore",
    "CircuitBreaker",
    "CommitLog",
    "DbWriterConsumer",
    "DeadLetter",
    "DeadLetterQueue",
    "FederatorConsumer",
    "IngestPipeline",
    "LogConsumer",
    "LogProducer",
    "LogRecord",
    "LogSegment",
    "ReportTracker",
    "RetryPolicy",
    "RollupMaintainerConsumer",
    "Pmcd",
    "PmdaLinux",
    "PmdaNvidia",
    "PmdaPerfevent",
    "PmdaProc",
    "Report",
    "Sampler",
    "SamplingStats",
    "Shipper",
    "ShipperConfig",
    "TransportModel",
    "WalEntry",
    "instance_field",
    "measurement_to_metric",
    "metric_to_measurement",
    "perfevent_metric",
    "sanitize_event",
]
