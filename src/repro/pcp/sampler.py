"""The sampling loop: ticks, fetches, transport, loss accounting.

This is the machinery behind Table III ("#data points expected and observed
at the host DB w.r.t. sampling freq and #metrics") and the sampled series
behind Figs 4 and 7–9.  The crucial design property, straight from §V-A:
**no buffering** — if the previous report is still in flight when a tick
fires, the tick is lost; and below the perfevent refresh floor, delivered
reports may be batched zeros.

That paper-faithful unbuffered loop stays the default.  ``mode="buffered"``
routes reports through :class:`repro.pcp.shipper.Shipper` instead — the
bounded queue / retry / circuit-breaker layer §V-A wishes PCP had — and
additionally degrades adaptively: under sustained backpressure the sampler
halves its effective frequency (recorded in the stats) rather than letting
the queue policy shed load, and restores it once the queue drains.

Everything runs in virtual time against an already-populated machine
timeline, so sampling a 10-second window takes microseconds of wall time
and is bit-for-bit reproducible.
"""

from __future__ import annotations

import math
import uuid
from dataclasses import dataclass, field

import numpy as np

from repro.db.faulty import ServiceUnavailable
from repro.db.influx import InfluxDB, Point

from .pmcd import Pmcd, Report
from .pmns import metric_to_measurement
from .shipper import Shipper, ShipperConfig
from .transport import TransportModel

__all__ = ["SamplingStats", "Sampler"]

#: Queue-depth fractions (of capacity) that trigger / clear degradation.
_BACKPRESSURE_HIGH = 0.75
_BACKPRESSURE_LOW = 0.25
#: Deepest frequency-halving allowed: freq / 8.
_MAX_STRIDE = 8


@dataclass
class SamplingStats:
    """Outcome of one sampling run — the columns of Table III.

    The trailing defaulted fields only move off their defaults in buffered
    mode; unbuffered runs produce stats identical to the pre-shipper code.
    """

    freq_hz: float
    n_metrics: int
    duration_s: float
    expected_points: int
    inserted_points: int
    zero_points: int
    expected_reports: int
    inserted_reports: int
    lost_reports: int
    zero_reports: int
    tag: str
    mode: str = "unbuffered"
    #: Reports that needed at least one retry after a failed insert.
    retried_reports: int = 0
    #: Retried reports that eventually made it into the DB.
    recovered_reports: int = 0
    #: Reports shed by the queue policy (incl. retry-cap give-ups).
    dropped_by_policy: int = 0
    #: Reports evicted to the write-ahead log (policy="spill").
    spilled_reports: int = 0
    #: Reports still queued when the drain deadline passed.
    unshipped_reports: int = 0
    #: Ticks skipped by adaptive degradation (not sampler losses).
    degraded_ticks: int = 0
    #: Total virtual time the circuit breaker spent open.
    breaker_open_s: float = 0.0
    max_queue_depth: int = 0
    #: Worst insert-time lag behind the sample's timestamp.
    max_staleness_s: float = 0.0
    #: Lowest effective sampling frequency reached under backpressure.
    effective_freq_hz: float | None = None
    # -- durable-mode (commit log) counters ----------------------------
    #: Commit-log records appended by the producer this run.
    produced_records: int = 0
    #: Records the DB-writer group made visible in the host DB.
    applied_records: int = 0
    #: Records skipped by an idempotence gate (crash replay, redelivery).
    duplicate_records: int = 0
    #: Records parked in the dead-letter queue across all groups.
    parked_records: int = 0
    #: Unflushed records a log truncation wiped and the producer re-sent.
    resent_records: int = 0
    #: Peak durable-but-unconsumed backlog of any group during the run.
    max_group_lag: int = 0
    #: Backlog still unconsumed when the drain deadline passed.
    backlog_records: int = 0

    @property
    def loss_pct(self) -> float:
        """%L: points lost in transmission."""
        if self.expected_points == 0:
            return 0.0
        return 100.0 * (self.expected_points - self.inserted_points) / self.expected_points

    @property
    def loss_plus_zero_pct(self) -> float:
        """L+Z%: lost or inserted-as-zero points."""
        if self.expected_points == 0:
            return 0.0
        useful = self.inserted_points - self.zero_points
        return 100.0 * (self.expected_points - useful) / self.expected_points

    @property
    def throughput(self) -> float:
        """Tput: inserted points per second."""
        return self.inserted_points / self.duration_s if self.duration_s else 0.0

    @property
    def actual_throughput(self) -> float:
        """A.Tput: non-zero inserted points per second."""
        if not self.duration_s:
            return 0.0
        return (self.inserted_points - self.zero_points) / self.duration_s


class Sampler:
    """Drives periodic pmcd fetches into the host InfluxDB."""

    def __init__(
        self,
        pmcd: Pmcd,
        influx: InfluxDB,
        transport: TransportModel | None = None,
        database: str = "pmove",
        seed: int = 0,
        host: str = "",
    ) -> None:
        self.pmcd = pmcd
        self.influx = influx
        self.transport = transport or TransportModel()
        self.database = database
        self.host = host  # optional host tag (multi-target/cluster setups)
        if database not in influx.databases():
            influx.create_database(database)
        self._rng = np.random.default_rng(seed)
        #: Shipper of the most recent buffered run (breaker trace, WAL, …).
        self.last_shipper: Shipper | None = None
        #: Stats of the most recent run, whichever mode (health surface).
        self.last_stats: SamplingStats | None = None
        #: Virtual end time of the most recent run that landed any data —
        #: the per-node liveness signal cluster supervision reads.
        self.last_success_t: float | None = None
        #: (tick time, stride) trace of the most recent buffered run.
        self.last_degradation: list[tuple[float, int]] = []

    # ------------------------------------------------------------------
    def _batch(self, report: Report, tag: str) -> list[Point]:
        """Build the Influx point batch for one report.

        The tags dict is built once and shared across the report's points
        (Point is frozen and the engine copies what it stores)."""
        tags = {"tag": tag}
        if self.host:
            tags["host"] = self.host
        t = report.time
        return [
            Point(
                measurement=metric_to_measurement(metric),
                tags=tags,
                fields=fields,
                time=t,
            )
            for metric, fields in report.values.items()
            if fields
        ]

    def _insert(self, report: Report, tag: str) -> int:
        """Write one report into Influx as one batch; returns points inserted.

        The whole report ships through :meth:`InfluxDB.write_many` — one
        database lookup per report instead of one ``write()`` per metric."""
        batch = self._batch(report, tag)
        self.influx.write_many(self.database, batch)
        return sum(len(p.fields) for p in batch)

    # ------------------------------------------------------------------
    def run(
        self,
        metrics: list[str],
        freq_hz: float,
        t_start: float,
        t_end: float,
        tag: str | None = None,
        final_fetch: bool = False,
        mode: str = "unbuffered",
        shipper_config: ShipperConfig | None = None,
        pipeline=None,
    ) -> SamplingStats:
        """Sample ``metrics`` at ``freq_hz`` over ``[t_start, t_end]``.

        Each tick fetches the window since the previous *successful* tick
        (counter deltas), ships it, and inserts it under ``tag``.  In the
        default unbuffered mode, ticks that fire while the pipeline is busy
        are lost; high-frequency runs additionally deliver zero batches
        (§V-A) — stale snapshot reads that insert zeros *without* advancing
        the counter cursor, so the next good fetch recovers the counts
        (this is why Fig 4's summed errors stay small even when Table III
        shows batched zeros).  ``mode="buffered"`` decouples fetch from
        insert through a :class:`Shipper` — no busy-losses; queue, retry
        and breaker behaviour per ``shipper_config``.

        ``final_fetch=True`` adds one closing fetch at ``t_end`` — what PCP
        does when P-MoVE "stops the sampling as the kernel is halted"
        (Scenario B); without it the tail window past the last tick is
        never observed.

        ``mode="durable"`` produces reports into a shared
        :class:`~repro.pcp.consumers.IngestPipeline` (the checkpointed
        commit log) instead of writing point-to-point; the pipeline's
        consumer groups — pumped between ticks and drained after the run —
        make the data visible, and the stats are read back as counter
        deltas from the pipeline's DB-writer group.
        """
        if freq_hz <= 0:
            raise ValueError("sampling frequency must be positive")
        if t_end <= t_start:
            raise ValueError("empty sampling window")
        if mode not in ("unbuffered", "buffered", "durable"):
            raise ValueError(f"unknown sampling mode {mode!r}")
        tag = tag or str(uuid.uuid4())
        if mode == "durable":
            if pipeline is None:
                raise ValueError("mode='durable' needs an IngestPipeline")
            stats = self._run_durable(
                metrics, freq_hz, t_start, t_end, tag, final_fetch, pipeline,
                (shipper_config or ShipperConfig()).drain_grace_s,
            )
        elif mode == "buffered":
            stats = self._run_buffered(
                metrics, freq_hz, t_start, t_end, tag, final_fetch,
                shipper_config or ShipperConfig(),
            )
        else:
            stats = self._run_unbuffered(
                metrics, freq_hz, t_start, t_end, tag, final_fetch
            )
        self.last_stats = stats
        if stats.inserted_reports > 0:
            self.last_success_t = t_end
        return stats

    # ------------------------------------------------------------------
    def _run_unbuffered(
        self,
        metrics: list[str],
        freq_hz: float,
        t_start: float,
        t_end: float,
        tag: str,
        final_fetch: bool,
    ) -> SamplingStats:
        period = 1.0 / freq_hz
        n_ticks = int(round((t_end - t_start) * freq_hz))
        p_zero = self.transport.zero_batch_probability(period)
        hiccup = self.transport.hiccup_rate(self._rng)

        points_per_report: int | None = None
        busy_until = t_start
        last_fetch_t = t_start
        inserted_reports = lost = zero_reports = 0
        inserted_points = zero_points = 0

        for k in range(1, n_ticks + 1):
            tick = t_start + k * period
            if tick < busy_until or self._rng.random() < hiccup:
                lost += 1  # unbuffered: sampler still busy -> tick dropped
                continue
            is_zero = self._rng.random() < p_zero
            if is_zero:
                # Stale snapshot: the agent answers with zeros and its read
                # cursor does not advance.
                report = self.pmcd.fetch(metrics, tick, tick).zeroed()
                zero_reports += 1
            else:
                report = self.pmcd.fetch(metrics, last_fetch_t, tick)
                last_fetch_t = tick
            if points_per_report is None:
                points_per_report = report.n_points
            busy_until = tick + self.transport.ship_time(report.n_points, self._rng)
            if hasattr(self.influx, "at"):  # failure-injectable proxy
                self.influx.at(busy_until)
            try:
                n = self._insert(report, tag)
            except ServiceUnavailable:
                # No buffer, no retry: an insert rejected by a service fault
                # is simply gone — the paper's §V-A failure mode.
                lost += 1
                if is_zero:
                    zero_reports -= 1
                continue
            inserted_points += n
            inserted_reports += 1
            if is_zero:
                zero_points += n

        if final_fetch and last_fetch_t < t_end:
            report = self.pmcd.fetch(metrics, last_fetch_t, t_end)
            if hasattr(self.influx, "at"):
                self.influx.at(t_end)
            try:
                inserted_points += self._insert(report, tag)
                inserted_reports += 1
            except ServiceUnavailable:
                lost += 1
            if points_per_report is None:
                points_per_report = report.n_points

        if points_per_report is None:
            # Nothing delivered; derive the domain size from a dry fetch.
            points_per_report = self.pmcd.fetch(metrics, t_start, t_end).n_points
            inserted_reports = 0
        return SamplingStats(
            freq_hz=freq_hz,
            n_metrics=len(metrics),
            duration_s=t_end - t_start,
            expected_points=n_ticks * points_per_report,
            inserted_points=inserted_points,
            zero_points=zero_points,
            expected_reports=n_ticks,
            inserted_reports=inserted_reports,
            lost_reports=lost,
            zero_reports=zero_reports,
            tag=tag,
        )

    # ------------------------------------------------------------------
    def _run_buffered(
        self,
        metrics: list[str],
        freq_hz: float,
        t_start: float,
        t_end: float,
        tag: str,
        final_fetch: bool,
        config: ShipperConfig,
    ) -> SamplingStats:
        period = 1.0 / freq_hz
        n_ticks = int(round((t_end - t_start) * freq_hz))
        p_zero = self.transport.zero_batch_probability(period)
        # pmcd-side physics is unchanged by buffering: scheduling hiccups
        # still lose ticks and sub-floor periods still go stale.
        hiccup = self.transport.hiccup_rate(self._rng)
        shipper = Shipper(
            self.influx, self.database, self.transport, config, rng=self._rng
        )
        self.last_shipper = shipper
        self.last_degradation = [(t_start, 1)]

        high_wm = max(1, int(math.ceil(_BACKPRESSURE_HIGH * config.capacity)))
        low_wm = int(_BACKPRESSURE_LOW * config.capacity)
        stride = 1
        degraded = 0
        min_eff_freq = freq_hz
        points_per_report: int | None = None
        last_fetch_t = t_start
        lost = 0

        for k in range(1, n_ticks + 1):
            tick = t_start + k * period
            shipper.advance(tick)
            depth = len(shipper)
            if not config.adaptive_degradation:
                new_stride = 1
            elif depth >= high_wm:
                new_stride = min(stride * 2, _MAX_STRIDE)
            elif depth <= low_wm:
                new_stride = 1
            else:
                new_stride = stride
            if new_stride != stride:
                stride = new_stride
                self.last_degradation.append((tick, stride))
            min_eff_freq = min(min_eff_freq, freq_hz / stride)
            if k % stride:
                degraded += 1
                continue
            if self._rng.random() < hiccup:
                lost += 1  # pmcd scheduling hiccup: the fetch never happens
                continue
            is_zero = self._rng.random() < p_zero
            if is_zero:
                report = self.pmcd.fetch(metrics, tick, tick).zeroed()
            else:
                report = self.pmcd.fetch(metrics, last_fetch_t, tick)
                last_fetch_t = tick
            if points_per_report is None:
                points_per_report = report.n_points
            shipper.offer(tick, tick, self._batch(report, tag),
                          report.n_points, is_zero, tag)

        if final_fetch and last_fetch_t < t_end:
            report = self.pmcd.fetch(metrics, last_fetch_t, t_end)
            if points_per_report is None:
                points_per_report = report.n_points
            shipper.offer(t_end, t_end, self._batch(report, tag),
                          report.n_points, False, tag)

        end_t = shipper.drain(t_end + config.drain_grace_s)
        if points_per_report is None:
            points_per_report = self.pmcd.fetch(metrics, t_start, t_end).n_points

        return SamplingStats(
            freq_hz=freq_hz,
            n_metrics=len(metrics),
            duration_s=t_end - t_start,
            expected_points=n_ticks * points_per_report,
            inserted_points=shipper.inserted_points,
            zero_points=shipper.zero_points,
            expected_reports=n_ticks,
            inserted_reports=shipper.inserted_reports,
            lost_reports=lost,
            zero_reports=shipper.zero_reports,
            tag=tag,
            mode="buffered",
            retried_reports=shipper.retried_reports,
            recovered_reports=shipper.recovered_reports,
            dropped_by_policy=shipper.dropped_by_policy,
            spilled_reports=shipper.spilled_reports,
            unshipped_reports=shipper.unshipped_reports,
            degraded_ticks=degraded,
            breaker_open_s=shipper.breaker.open_seconds(max(end_t, t_end)),
            max_queue_depth=shipper.max_queue_depth,
            max_staleness_s=shipper.max_staleness_s,
            effective_freq_hz=min_eff_freq,
        )

    # ------------------------------------------------------------------
    def _run_durable(
        self,
        metrics: list[str],
        freq_hz: float,
        t_start: float,
        t_end: float,
        tag: str,
        final_fetch: bool,
        pipeline,
        drain_grace_s: float,
    ) -> SamplingStats:
        """Produce into the commit log; consumers run between ticks.

        pmcd-side physics is unchanged (hiccups lose ticks, sub-floor
        periods go stale-zero); the transport queue is gone — the log *is*
        the queue, and appends are local, so there is no backpressure to
        degrade under.  Loss can only happen downstream, where the chaos
        suite proves there is none (or it is parked, visibly, in the DLQ).
        """
        period = 1.0 / freq_hz
        n_ticks = int(round((t_end - t_start) * freq_hz))
        p_zero = self.transport.zero_batch_probability(period)
        hiccup = self.transport.hiccup_rate(self._rng)

        before = pipeline.flat_counters()
        writers = pipeline.group_members("db-writer")
        open_before = sum(c.breaker.open_seconds(t_start) for c in writers)
        points_per_report: int | None = None
        last_fetch_t = t_start
        lost = 0

        for k in range(1, n_ticks + 1):
            tick = t_start + k * period
            pipeline.pump(tick)
            if self._rng.random() < hiccup:
                lost += 1  # pmcd scheduling hiccup: the fetch never happens
                continue
            is_zero = self._rng.random() < p_zero
            if is_zero:
                report = self.pmcd.fetch(metrics, tick, tick).zeroed()
            else:
                report = self.pmcd.fetch(metrics, last_fetch_t, tick)
                last_fetch_t = tick
            if points_per_report is None:
                points_per_report = report.n_points
            pipeline.produce(tick, tick, self._batch(report, tag), tag, is_zero)

        if final_fetch and last_fetch_t < t_end:
            report = self.pmcd.fetch(metrics, last_fetch_t, t_end)
            if points_per_report is None:
                points_per_report = report.n_points
            pipeline.produce(t_end, t_end, self._batch(report, tag), tag)

        pipeline.producer.flush(t_end)
        end_t = pipeline.drain(t_end + drain_grace_s)
        if points_per_report is None:
            points_per_report = self.pmcd.fetch(metrics, t_start, t_end).n_points

        after = pipeline.flat_counters()
        delta = lambda key: int(after.get(key, 0) - before.get(key, 0))  # noqa: E731
        parked = sum(
            after.get(k, 0) - before.get(k, 0)
            for k in after
            if k.endswith(".parked_records")
        )
        return SamplingStats(
            freq_hz=freq_hz,
            n_metrics=len(metrics),
            duration_s=t_end - t_start,
            expected_points=n_ticks * points_per_report,
            inserted_points=delta("db-writer.applied_points"),
            zero_points=delta("db-writer.zero_points"),
            expected_reports=n_ticks,
            inserted_reports=delta("db-writer.reports"),
            lost_reports=lost,
            zero_reports=delta("db-writer.zero_reports"),
            tag=tag,
            mode="durable",
            breaker_open_s=(
                sum(c.breaker.open_seconds(max(end_t, t_end)) for c in writers)
                - open_before
            ),
            max_staleness_s=max(
                (c.max_staleness_s for c in writers), default=0.0
            ),
            produced_records=delta("producer.records"),
            applied_records=delta("db-writer.applied_records"),
            duplicate_records=delta("db-writer.duplicate_records"),
            parked_records=int(parked),
            resent_records=delta("producer.resent"),
            max_group_lag=pipeline.max_group_lag,
            backlog_records=pipeline.backlog_records(),
        )

    # ------------------------------------------------------------------
    def sampling_overhead(self, freq_hz: float) -> float:
        """Fractional kernel-runtime dilation caused by sampling at
        ``freq_hz`` (Fig 5): each perf read interrupts the cores briefly.

        ~3 µs of stolen time per sample per second of runtime — order
        0.01 % at the paper's frequencies, exactly the magnitude §V-C
        reports."""
        if freq_hz < 0:
            raise ValueError("negative frequency")
        return 3.2e-6 * freq_hz
