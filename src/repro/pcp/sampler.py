"""The sampling loop: ticks, fetches, transport, loss accounting.

This is the machinery behind Table III ("#data points expected and observed
at the host DB w.r.t. sampling freq and #metrics") and the sampled series
behind Figs 4 and 7–9.  The crucial design property, straight from §V-A:
**no buffering** — if the previous report is still in flight when a tick
fires, the tick is lost; and below the perfevent refresh floor, delivered
reports may be batched zeros.

Everything runs in virtual time against an already-populated machine
timeline, so sampling a 10-second window takes microseconds of wall time
and is bit-for-bit reproducible.
"""

from __future__ import annotations

import math
import uuid
from dataclasses import dataclass, field

import numpy as np

from repro.db.influx import InfluxDB, Point

from .pmcd import Pmcd, Report
from .pmns import metric_to_measurement
from .transport import TransportModel

__all__ = ["SamplingStats", "Sampler"]


@dataclass
class SamplingStats:
    """Outcome of one sampling run — the columns of Table III."""

    freq_hz: float
    n_metrics: int
    duration_s: float
    expected_points: int
    inserted_points: int
    zero_points: int
    expected_reports: int
    inserted_reports: int
    lost_reports: int
    zero_reports: int
    tag: str

    @property
    def loss_pct(self) -> float:
        """%L: points lost in transmission."""
        if self.expected_points == 0:
            return 0.0
        return 100.0 * (self.expected_points - self.inserted_points) / self.expected_points

    @property
    def loss_plus_zero_pct(self) -> float:
        """L+Z%: lost or inserted-as-zero points."""
        if self.expected_points == 0:
            return 0.0
        useful = self.inserted_points - self.zero_points
        return 100.0 * (self.expected_points - useful) / self.expected_points

    @property
    def throughput(self) -> float:
        """Tput: inserted points per second."""
        return self.inserted_points / self.duration_s if self.duration_s else 0.0

    @property
    def actual_throughput(self) -> float:
        """A.Tput: non-zero inserted points per second."""
        if not self.duration_s:
            return 0.0
        return (self.inserted_points - self.zero_points) / self.duration_s


class Sampler:
    """Drives periodic pmcd fetches into the host InfluxDB."""

    def __init__(
        self,
        pmcd: Pmcd,
        influx: InfluxDB,
        transport: TransportModel | None = None,
        database: str = "pmove",
        seed: int = 0,
        host: str = "",
    ) -> None:
        self.pmcd = pmcd
        self.influx = influx
        self.transport = transport or TransportModel()
        self.database = database
        self.host = host  # optional host tag (multi-target/cluster setups)
        if database not in influx.databases():
            influx.create_database(database)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _insert(self, report: Report, tag: str) -> int:
        """Write one report into Influx as one batch; returns points inserted.

        The tags dict is built once and shared across the report's points
        (Point is frozen and the engine copies what it stores), and the whole
        report ships through :meth:`InfluxDB.write_many` — one database
        lookup per report instead of one ``write()`` per metric."""
        tags = {"tag": tag}
        if self.host:
            tags["host"] = self.host
        t = report.time
        batch = [
            Point(
                measurement=metric_to_measurement(metric),
                tags=tags,
                fields=fields,
                time=t,
            )
            for metric, fields in report.values.items()
            if fields
        ]
        self.influx.write_many(self.database, batch)
        return sum(len(p.fields) for p in batch)

    # ------------------------------------------------------------------
    def run(
        self,
        metrics: list[str],
        freq_hz: float,
        t_start: float,
        t_end: float,
        tag: str | None = None,
        final_fetch: bool = False,
    ) -> SamplingStats:
        """Sample ``metrics`` at ``freq_hz`` over ``[t_start, t_end]``.

        Each tick fetches the window since the previous *successful* tick
        (counter deltas), ships it, and inserts it under ``tag``.  Ticks
        that fire while the pipeline is busy are lost; high-frequency runs
        additionally deliver zero batches (§V-A) — stale snapshot reads
        that insert zeros *without* advancing the counter cursor, so the
        next good fetch recovers the counts (this is why Fig 4's summed
        errors stay small even when Table III shows batched zeros).

        ``final_fetch=True`` adds one closing fetch at ``t_end`` — what PCP
        does when P-MoVE "stops the sampling as the kernel is halted"
        (Scenario B); without it the tail window past the last tick is
        never observed.
        """
        if freq_hz <= 0:
            raise ValueError("sampling frequency must be positive")
        if t_end <= t_start:
            raise ValueError("empty sampling window")
        tag = tag or str(uuid.uuid4())
        period = 1.0 / freq_hz
        n_ticks = int(round((t_end - t_start) * freq_hz))
        p_zero = self.transport.zero_batch_probability(period)
        hiccup = self.transport.hiccup_rate(self._rng)

        points_per_report: int | None = None
        busy_until = t_start
        last_fetch_t = t_start
        inserted_reports = lost = zero_reports = 0
        inserted_points = zero_points = 0

        for k in range(1, n_ticks + 1):
            tick = t_start + k * period
            if tick < busy_until or self._rng.random() < hiccup:
                lost += 1  # unbuffered: sampler still busy -> tick dropped
                continue
            is_zero = self._rng.random() < p_zero
            if is_zero:
                # Stale snapshot: the agent answers with zeros and its read
                # cursor does not advance.
                report = self.pmcd.fetch(metrics, tick, tick).zeroed()
                zero_reports += 1
            else:
                report = self.pmcd.fetch(metrics, last_fetch_t, tick)
                last_fetch_t = tick
            if points_per_report is None:
                points_per_report = report.n_points
            busy_until = tick + self.transport.ship_time(report.n_points, self._rng)
            n = self._insert(report, tag)
            inserted_points += n
            inserted_reports += 1
            if is_zero:
                zero_points += n

        if final_fetch and last_fetch_t < t_end:
            report = self.pmcd.fetch(metrics, last_fetch_t, t_end)
            inserted_points += self._insert(report, tag)
            inserted_reports += 1
            if points_per_report is None:
                points_per_report = report.n_points

        if points_per_report is None:
            # Nothing delivered; derive the domain size from a dry fetch.
            points_per_report = self.pmcd.fetch(metrics, t_start, t_end).n_points
            inserted_reports = 0
        return SamplingStats(
            freq_hz=freq_hz,
            n_metrics=len(metrics),
            duration_s=t_end - t_start,
            expected_points=n_ticks * points_per_report,
            inserted_points=inserted_points,
            zero_points=zero_points,
            expected_reports=n_ticks,
            inserted_reports=inserted_reports,
            lost_reports=lost,
            zero_reports=zero_reports,
            tag=tag,
        )

    # ------------------------------------------------------------------
    def sampling_overhead(self, freq_hz: float) -> float:
        """Fractional kernel-runtime dilation caused by sampling at
        ``freq_hz`` (Fig 5): each perf read interrupts the cores briefly.

        ~3 µs of stolen time per sample per second of runtime — order
        0.01 % at the paper's frequencies, exactly the magnitude §V-C
        reports."""
        if freq_hz < 0:
            raise ValueError("negative frequency")
        return 3.2e-6 * freq_hz
