"""Differential root-cause classification of performance variations.

The paper's opening problem statement: "Performance variations caused by
... load imbalances, CPU throttling, reduced frequency, shared resource
contention ... can result in up to a 100% difference in performance.  To
efficiently and effectively find the root causes of these variations, one
requires a comprehensive, structured knowledge of the computational
system."  Detection (:mod:`repro.core.anomaly`) says *something* changed;
this module says *what kind* of thing, by differential diagnosis:

Two probe kernels with opposite resource profiles — a register-resident
FMA chain (pure compute) and a DRAM-streaming triad (pure bandwidth) — are
run against baselines stored in the KB as a ``BenchmarkInterface`` entry.
The pair of slowdowns is a signature:

====================  ==============  ==============
fault                 compute probe   memory probe
====================  ==============  ==============
CPU throttling        strong          mild (stalls hide some of it)
bandwidth contention  ~none           strong
load imbalance        uniform         uniform (straggler paces both)
healthy               ~1.0            ~1.0
====================  ==============  ==============
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.kernel import KernelDescriptor
from repro.machine.spec import ISA

from .kb import KnowledgeBase
from .observation import make_benchmark, make_benchmark_result

__all__ = ["Diagnosis", "record_probe_baseline", "diagnose"]

_BASELINE_NAME = "rootcause_probe_baseline"


def _probes(spec) -> dict[str, KernelDescriptor]:
    """The two diagnostic kernels, sized for the target."""
    isa = ISA.AVX512 if ISA.AVX512 in spec.isas else ISA.AVX2
    n = 2048
    compute = KernelDescriptor(
        "probe_compute",
        flops_dp={isa: 32.0 * n * 200_000},
        fma_fraction=1.0,
        loads=n * 200_000 / isa.dp_lanes / 64,
        stores=0,
        mem_isa=isa,
        working_set_bytes=16 * 1024,
        locality={"L1": 1.0},
        overhead_instr_ratio=0.02,
    )
    m = 30_000_000
    memory = KernelDescriptor(
        "probe_memory",
        flops_dp={isa: 2.0 * m},
        fma_fraction=1.0,
        loads=2 * m / isa.dp_lanes,
        stores=m / isa.dp_lanes,
        mem_isa=isa,
        working_set_bytes=3 * 8 * m,
        locality={"DRAM": 1.0},
        overhead_instr_ratio=0.05,
    )
    return {"compute": compute, "memory": memory}


def _run_probes(machine, cpu_ids=None) -> dict[str, float]:
    cpu_ids = cpu_ids or list(range(machine.spec.n_cores))
    return {
        name: machine.run_kernel(desc, cpu_ids, runtime_noise_std=0.002).runtime_s
        for name, desc in _probes(machine.spec).items()
    }


def record_probe_baseline(kb: KnowledgeBase, machine) -> dict:
    """Run the probes on a healthy machine and store the baseline in the
    KB (the structured knowledge root-causing later consults)."""
    if kb.hostname != machine.spec.hostname:
        raise ValueError("KB and machine describe different hosts")
    times = _run_probes(machine)
    entry = make_benchmark(
        host_seg=kb.hostname,
        index=len(kb.entries_of_type("BenchmarkInterface")),
        name=_BASELINE_NAME,
        compiler="n/a",
        command="pmove rootcause --baseline",
        results=[
            make_benchmark_result(f"{name}_runtime", t, "s")
            for name, t in sorted(times.items())
        ],
    )
    return kb.append_entry(entry)


def _load_baseline(kb: KnowledgeBase) -> dict[str, float]:
    for entry in reversed(kb.entries_of_type("BenchmarkInterface")):
        if entry.get("name") == _BASELINE_NAME:
            return {
                r["metric"].removesuffix("_runtime"): r["value"]
                for r in entry["results"]
            }
    raise LookupError(
        f"no {_BASELINE_NAME} entry in {kb.hostname}'s KB; run "
        "record_probe_baseline() while the machine is healthy"
    )


@dataclass(frozen=True)
class Diagnosis:
    """Outcome of one differential diagnosis."""

    fault: str  # healthy | cpu_throttle | memory_contention | load_imbalance | unknown
    confidence: float  # 0..1
    compute_slowdown: float
    memory_slowdown: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")


def classify(compute_slowdown: float, memory_slowdown: float) -> Diagnosis:
    """Signature matching on the probe slowdown pair (pure function)."""
    rc, rm = compute_slowdown, memory_slowdown
    if rc < 1.08 and rm < 1.08:
        margin = max(rc, rm) - 1.0
        return Diagnosis("healthy", max(0.5, 1.0 - margin * 5), rc, rm)
    # Uniform dilation: a straggler paces compute and memory phases alike.
    if min(rc, rm) > 1.12 and abs(rc - rm) / max(rc, rm) < 0.12:
        return Diagnosis("load_imbalance", 0.9 - abs(rc - rm), rc, rm)
    if rc > rm:
        # Compute hit harder: frequency loss; memory probe partially hides
        # it behind DRAM stalls.
        conf = min(1.0, (rc - rm) / max(rc - 1.0, 1e-9))
        return Diagnosis("cpu_throttle", 0.5 + 0.5 * conf, rc, rm)
    if rm > 1.12 and rc < 1.12:
        return Diagnosis("memory_contention", min(1.0, 0.5 + (rm - rc)), rc, rm)
    return Diagnosis("unknown", 0.3, rc, rm)


def diagnose(kb: KnowledgeBase, machine) -> Diagnosis:
    """Run the probes now and classify against the KB baseline."""
    baseline = _load_baseline(kb)
    current = _run_probes(machine)
    return classify(
        current["compute"] / baseline["compute"],
        current["memory"] / baseline["memory"],
    )
