"""KB entry interfaces: Observation, Benchmark, Process (§III-C).

Except for ProcessInterface, "all classes/interfaces have their values
assigned as constants during the generation phase"; a ProcessInterface "is
re-instantiated each time it is invoked".  ObservationInterface entries
"encode sampled hardware performance events and system metrics, executed
commands, generated affinity, time and other relevant metadata" — and carry
the unique observation tag that links back to the time-series rows in
InfluxDB (Listing 2).
"""

from __future__ import annotations

import uuid
from typing import Any

from repro.pcp.pmns import instance_field, metric_to_measurement

from .dtmi import make_dtmi

__all__ = [
    "new_tag",
    "make_observation",
    "make_benchmark",
    "make_benchmark_result",
    "make_process",
    "observation_fields",
]


def new_tag() -> str:
    """A fresh observation UUID (the WHERE tag=... linker of Listing 3)."""
    return str(uuid.uuid4())


def observation_fields(cpu_ids: list[int]) -> list[str]:
    """Influx field names for an observation's affinity set."""
    return [instance_field(f"cpu{c}") for c in sorted(cpu_ids)]


def make_observation(
    host_seg: str,
    index: int,
    tag: str,
    command: str,
    cpu_ids: list[int],
    pinning: str,
    metrics: list[dict[str, Any]],
    t_start: float,
    t_end: float,
    report: dict[str, Any] | None = None,
    queries: list[str] | None = None,
) -> dict[str, Any]:
    """Build an ObservationInterface entry (Listing 2 shape).

    ``metrics`` items carry ``metric`` (PCP name), ``measurement`` (Influx)
    and ``fields`` (instance fields sampled), which is everything query
    generation needs.
    """
    if t_end < t_start:
        raise ValueError("observation ends before it starts")
    for m in metrics:
        if "metric" not in m or "fields" not in m:
            raise ValueError("metric entries need 'metric' and 'fields'")
        m.setdefault("measurement", metric_to_measurement(m["metric"]))
    return {
        "@type": "ObservationInterface",
        "@id": make_dtmi(host_seg, f"observation{index}"),
        "@context": "dtmi:dtdl:context;2",
        "tag": tag,
        "command": command,
        "affinity": sorted(cpu_ids),
        "pinning": pinning,
        "metrics": metrics,
        "time": {"start": t_start, "end": t_end, "runtime_s": t_end - t_start},
        "report": report or {},
        "queries": queries or [],
    }


def make_benchmark_result(metric: str, value: float, units: str) -> dict[str, Any]:
    """A BenchmarkResult helper entry (§III-C)."""
    if not metric:
        raise ValueError("benchmark result needs a metric name")
    return {"@type": "BenchmarkResult", "metric": metric, "value": value, "units": units}


def make_benchmark(
    host_seg: str,
    index: int,
    name: str,
    compiler: str,
    command: str,
    results: list[dict[str, Any]],
    parameters: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build a BenchmarkInterface entry (CARM / STREAM / HPCG, §III-C)."""
    if not results:
        raise ValueError("benchmark entry needs at least one result")
    for r in results:
        if r.get("@type") != "BenchmarkResult":
            raise ValueError("results must be BenchmarkResult entries")
    return {
        "@type": "BenchmarkInterface",
        "@id": make_dtmi(host_seg, f"benchmark{index}"),
        "@context": "dtmi:dtdl:context;2",
        "name": name,
        "compiler": compiler,
        "command": command,
        "parameters": parameters or {},
        "results": results,
    }


def make_process(
    host_seg: str,
    pid: int,
    command: str,
    user: str = "pmove",
    start_time: float = 0.0,
) -> dict[str, Any]:
    """Build a ProcessInterface entry — dynamic, re-created per invocation."""
    if pid <= 0:
        raise ValueError("pid must be positive")
    return {
        "@type": "ProcessInterface",
        "@id": make_dtmi(host_seg, f"proc{pid}_{uuid.uuid4().hex[:8]}"),
        "@context": "dtmi:dtdl:context;2",
        "pid": pid,
        "command": command,
        "user": user,
        "start_time": start_time,
    }
