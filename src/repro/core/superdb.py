"""SUPERDB: the global performance database (§III-E).

"For long-term data management, P-MoVE operates a global performance
database, SUPERDB ... cloud instances of MongoDB and InfluxDB", accumulating
metrics and KBs from many systems for architectural research and ML
training.  Observations are promoted into one of two forms:

- ``TSObservationInterface`` — the raw time series are copied up;
- ``AGGObservationInterface`` — "statistically summarizes data using
  various aggregations, e.g., min, max, mean, to manage high data volumes".

Users *with* a local P-MoVE instance can recall and visualize; without one,
they "can only download selected data for ML training" (:meth:`download`).
"""

from __future__ import annotations

import math
from typing import Any

from repro.db.influx import InfluxDB
from repro.db.mongo import MongoDB

__all__ = ["SuperDB"]

_AGGS = ("min", "max", "mean", "count")


def _aggregate(values: list[float]) -> dict[str, float]:
    if not values:
        return {"min": math.nan, "max": math.nan, "mean": math.nan, "count": 0}
    return {
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "count": float(len(values)),
    }


class SuperDB:
    """Cloud-side aggregation of many local P-MoVE instances."""

    def __init__(self) -> None:
        self.mongo = MongoDB()
        self.influx = InfluxDB()
        self.influx.create_database("superdb")

    # ------------------------------------------------------------------
    # Reporting (user opt-in, §III-E)
    # ------------------------------------------------------------------
    def report(
        self,
        kb,
        local_influx: InfluxDB,
        local_database: str = "pmove",
        mode: str = "agg",
    ) -> dict[str, int]:
        """Push a local instance's KB + observation telemetry upstream.

        ``mode='ts'`` copies raw series (TSObservationInterface);
        ``mode='agg'`` stores per-field aggregates (AGGObservationInterface).
        """
        if mode not in ("ts", "agg"):
            raise ValueError("mode must be 'ts' or 'agg'")
        kbs = self.mongo.collection("superdb", "kbs")
        kbs.replace_one({"hostname": kb.hostname}, kb.to_jsonld(), upsert=True)

        obs_col = self.mongo.collection("superdb", "observations")
        n_obs = n_points = 0
        for obs in kb.entries_of_type("ObservationInterface"):
            doc: dict[str, Any] = {
                "@type": "TSObservationInterface" if mode == "ts" else "AGGObservationInterface",
                "@id": obs["@id"] + ":" + mode,
                "hostname": kb.hostname,
                "source": obs["@id"],
                "tag": obs["tag"],
                "command": obs["command"],
                "affinity": obs["affinity"],
                "time": obs["time"],
            }
            if mode == "ts":
                copied = 0
                for m in obs["metrics"]:
                    pts = local_influx.points(
                        local_database, m["measurement"], tags={"tag": obs["tag"]}
                    )
                    self.influx.write_many("superdb", pts)
                    copied += sum(len(p.fields) for p in pts)
                doc["points_copied"] = copied
                n_points += copied
            else:
                aggregates: dict[str, dict[str, dict[str, float]]] = {}
                for m in obs["metrics"]:
                    pts = local_influx.points(
                        local_database, m["measurement"], tags={"tag": obs["tag"]}
                    )
                    per_field: dict[str, dict[str, float]] = {}
                    for f in m["fields"]:
                        vals = [p.fields[f] for p in pts if f in p.fields]
                        per_field[f] = _aggregate(vals)
                        n_points += len(vals)
                    aggregates[m["measurement"]] = per_field
                doc["aggregates"] = aggregates
            obs_col.replace_one({"@id": doc["@id"]}, doc, upsert=True)
            n_obs += 1
        return {"observations": n_obs, "points": n_points}

    # ------------------------------------------------------------------
    # Global queries
    # ------------------------------------------------------------------
    def systems(self) -> list[str]:
        return sorted(
            d["hostname"] for d in self.mongo.collection("superdb", "kbs").find()
        )

    def observations(self, hostname: str | None = None) -> list[dict[str, Any]]:
        flt = {"hostname": hostname} if hostname else {}
        return self.mongo.collection("superdb", "observations").find(flt)

    def kb_document(self, hostname: str) -> dict[str, Any]:
        doc = self.mongo.collection("superdb", "kbs").find_one({"hostname": hostname})
        if doc is None:
            raise KeyError(f"SUPERDB has no KB for {hostname!r}")
        return doc

    def download(self, hostname: str, command_filter: str | None = None) -> list[dict[str, Any]]:
        """The no-local-instance access path: raw documents for ML training,
        no dashboards, no recall."""
        flt: dict[str, Any] = {"hostname": hostname}
        if command_filter:
            flt["command"] = {"$regex": command_filter}
        return self.mongo.collection("superdb", "observations").find(flt)

    def compare_metric(self, measurement: str, field: str) -> dict[str, dict[str, float]]:
        """Cross-system aggregate comparison for one metric — the global
        view that motivates SUPERDB."""
        out: dict[str, dict[str, float]] = {}
        for doc in self.mongo.collection("superdb", "observations").find(
            {"@type": "AGGObservationInterface"}
        ):
            agg = doc.get("aggregates", {}).get(measurement, {}).get(field)
            if agg and agg.get("count"):
                host = doc["hostname"]
                cur = out.setdefault(host, {"min": math.inf, "max": -math.inf, "mean": 0.0, "count": 0.0})
                cur["min"] = min(cur["min"], agg["min"])
                cur["max"] = max(cur["max"], agg["max"])
                total = cur["count"] + agg["count"]
                cur["mean"] = (cur["mean"] * cur["count"] + agg["mean"] * agg["count"]) / total
                cur["count"] = total
        return out
