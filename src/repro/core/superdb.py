"""SUPERDB: the global performance database (§III-E).

"For long-term data management, P-MoVE operates a global performance
database, SUPERDB ... cloud instances of MongoDB and InfluxDB", accumulating
metrics and KBs from many systems for architectural research and ML
training.  Observations are promoted into one of two forms:

- ``TSObservationInterface`` — the raw time series are copied up;
- ``AGGObservationInterface`` — "statistically summarizes data using
  various aggregations, e.g., min, max, mean, to manage high data volumes".

Reports travel over a :class:`~repro.core.federation.FederationLink`: the
WAN between a local instance and the cloud can partition, so pushes retry
with backoff behind a circuit breaker, per-host sync state is recorded, and
:meth:`SuperDB.anti_entropy` repairs any divergence the link's retry budget
could not hide.  Re-reports are idempotent in both modes — a raw-series
re-push drops the observation's upstream series before copying, so syncing
twice never duplicates points.

Users *with* a local P-MoVE instance can recall and visualize; without one,
they "can only download selected data for ML training" (:meth:`download`).
"""

from __future__ import annotations

import math
from typing import Any

from repro.db.influx import InfluxDB
from repro.db.mongo import MongoDB
from repro.db.sharded import ShardedInfluxDB
from repro.db.sketch import DEFAULT_SKETCH, HyperLogLog, TDigest
from repro.faults.services import ServiceFaultSet
from repro.pcp.retry import RetryPolicy

from .federation import FederationLink

__all__ = ["SuperDB"]

_AGGS = ("min", "max", "mean", "count")


def _aggregate(values: list[float]) -> dict[str, float]:
    if not values:
        return {"min": math.nan, "max": math.nan, "mean": math.nan, "count": 0}
    return {
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "count": float(len(values)),
    }


def _finite_agg(agg: dict[str, float]) -> bool:
    """Whether an aggregate is usable for cross-system math.

    All-NaN series can yield aggregates whose count is nonzero but whose
    min/max/mean are NaN (or inf, if a sensor glitched); folding those into
    a running min/max seeded at ±inf leaks non-finite values into every
    host's comparison row."""
    return all(math.isfinite(agg[k]) for k in ("min", "max", "mean"))


class SuperDB:
    """Cloud-side aggregation of many local P-MoVE instances."""

    def __init__(
        self,
        faults: ServiceFaultSet | None = None,
        retry: RetryPolicy | None = None,
        attempt_cost_s: float = 0.0,
        seed: int = 0,
        shards: int = 0,
    ) -> None:
        self.mongo = MongoDB()
        # SUPERDB accumulates series from *many* hosts, so its Influx side
        # is the natural place to shard; ``shards >= 2`` swaps the single
        # engine for the consistent-hash router (identical query results).
        self.influx: InfluxDB | ShardedInfluxDB = (
            ShardedInfluxDB(shards) if shards >= 2 else InfluxDB()
        )
        self.influx.create_database("superdb")
        # Secondary indexes on the global-query access paths: every lookup
        # below filters on one of these, and SUPERDB accumulates docs from
        # many hosts, so linear scans are the first thing to go at scale.
        obs = self.mongo.collection("superdb", "observations")
        obs.create_index("@id")
        obs.create_index("hostname")
        obs.create_index("@type")
        self.mongo.collection("superdb", "kbs").create_index("hostname")
        self.mongo.collection("superdb", "sync_state").create_index("hostname")
        #: WAN leg between local instances and the cloud DBs.
        self.link = FederationLink(
            self,
            faults=faults,
            retry=retry,
            attempt_cost_s=attempt_cost_s,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Reporting (user opt-in, §III-E)
    # ------------------------------------------------------------------
    def report(
        self,
        kb,
        local_influx: InfluxDB,
        local_database: str = "pmove",
        mode: str = "agg",
        at: float | None = None,
    ) -> dict[str, int]:
        """Push a local instance's KB + observation telemetry upstream.

        ``mode='ts'`` copies raw series (TSObservationInterface);
        ``mode='agg'`` stores per-field aggregates (AGGObservationInterface).
        The push rides the federation link: under WAN faults it retries
        within the link's budget, and whatever stays pending is recorded in
        sync state (see :meth:`sync_status` / :meth:`anti_entropy`).
        """
        if mode not in ("ts", "agg"):
            raise ValueError("mode must be 'ts' or 'agg'")
        return self.link.report(kb, local_influx, local_database, mode, at=at)

    def anti_entropy(
        self,
        kb,
        local_influx: InfluxDB,
        local_database: str = "pmove",
        mode: str = "agg",
        at: float | None = None,
    ) -> dict[str, Any]:
        """Repair upstream divergence for one host (see the link docs)."""
        if mode not in ("ts", "agg"):
            raise ValueError("mode must be 'ts' or 'agg'")
        return self.link.anti_entropy(kb, local_influx, local_database, mode,
                                      at=at)

    def sync_status(self, hostname: str) -> dict[str, Any] | None:
        """Recorded sync state for one host (None = never reported)."""
        return self.link.sync_status(hostname)

    # ------------------------------------------------------------------
    # Upstream writes (called by the federation link per round trip)
    # ------------------------------------------------------------------
    def _upsert_kb(self, kb) -> None:
        kbs = self.mongo.collection("superdb", "kbs")
        kbs.replace_one({"hostname": kb.hostname}, kb.to_jsonld(), upsert=True)

    def _push_observation(
        self,
        obs: dict[str, Any],
        local_influx: InfluxDB,
        local_database: str,
        mode: str,
        hostname: str,
    ) -> int:
        """Upsert one observation upstream; returns raw points copied.

        Idempotent: the Mongo doc is a replace_one upsert, and in ts mode
        the observation's upstream series (keyed by its unique tag) are
        dropped before re-copying, so a re-sync after a partial push never
        duplicates raw points.
        """
        doc: dict[str, Any] = {
            "@type": "TSObservationInterface" if mode == "ts" else "AGGObservationInterface",
            "@id": obs["@id"] + ":" + mode,
            "hostname": hostname,
            "source": obs["@id"],
            "tag": obs["tag"],
            "command": obs["command"],
            "affinity": obs["affinity"],
            "time": obs["time"],
        }
        copied = 0
        if mode == "ts":
            for m in obs["metrics"]:
                pts = local_influx.points(
                    local_database, m["measurement"], tags={"tag": obs["tag"]}
                )
                self.influx.delete_series(
                    "superdb", m["measurement"], tags={"tag": obs["tag"]}
                )
                self.influx.write_many("superdb", pts)
                copied += sum(len(p.fields) for p in pts)
            doc["points_copied"] = copied
        else:
            aggregates: dict[str, dict[str, dict[str, float]]] = {}
            sketches: dict[str, dict[str, dict[str, Any]]] = {}
            for m in obs["metrics"]:
                # One columnar scan per measurement; per-field value lists
                # come out of the column arrays, no Point materialization.
                fields = list(m["fields"])
                _, rows = local_influx.scan_columns(
                    local_database, m["measurement"], columns=fields,
                    tags={"tag": obs["tag"]},
                )
                per_field: dict[str, dict[str, float]] = {}
                per_sketch: dict[str, dict[str, Any]] = {}
                for i, f in enumerate(fields):
                    vals = [r[i] for _, r in rows if r[i] is not None]
                    per_field[f] = _aggregate(vals)
                    copied += len(vals)
                    # Mergeable sketches travel beside the scalar summary:
                    # SUPERDB can answer global percentile / cardinality
                    # questions without ever pulling raw points back.
                    dg = TDigest(DEFAULT_SKETCH.compression)
                    dg.add_many(vals)
                    hll = HyperLogLog(DEFAULT_SKETCH.hll_p)
                    for v in vals:
                        hll.add(v)
                    per_sketch[f] = {
                        "digest": dg.to_dict(), "hll": hll.to_dict()
                    }
                aggregates[m["measurement"]] = per_field
                sketches[m["measurement"]] = per_sketch
            doc["aggregates"] = aggregates
            doc["sketches"] = sketches
        self.mongo.collection("superdb", "observations").replace_one(
            {"@id": doc["@id"]}, doc, upsert=True
        )
        return copied

    # ------------------------------------------------------------------
    # Global queries
    # ------------------------------------------------------------------
    def systems(self) -> list[str]:
        return sorted(
            d["hostname"] for d in self.mongo.collection("superdb", "kbs").find()
        )

    def observations(self, hostname: str | None = None) -> list[dict[str, Any]]:
        flt = {"hostname": hostname} if hostname else {}
        return self.mongo.collection("superdb", "observations").find(flt)

    def kb_document(self, hostname: str) -> dict[str, Any]:
        doc = self.mongo.collection("superdb", "kbs").find_one({"hostname": hostname})
        if doc is None:
            raise KeyError(f"SUPERDB has no KB for {hostname!r}")
        return doc

    def download(self, hostname: str, command_filter: str | None = None) -> list[dict[str, Any]]:
        """The no-local-instance access path: raw documents for ML training,
        no dashboards, no recall."""
        flt: dict[str, Any] = {"hostname": hostname}
        if command_filter:
            flt["command"] = {"$regex": command_filter}
        return self.mongo.collection("superdb", "observations").find(flt)

    def compare_metric(self, measurement: str, field: str) -> dict[str, dict[str, float]]:
        """Cross-system aggregate comparison for one metric — the global
        view that motivates SUPERDB.

        Non-finite aggregates (all-NaN fields, sensor glitches) are skipped
        so one bad series cannot poison a host's row.  A host whose last
        sync left observations pending is flagged ``partial: True`` — its
        numbers are real but may not cover everything the host measured.

        Observations reported with serialized sketches additionally yield
        true cross-observation percentiles (``p50``/``p95``/``p99``, from a
        register-exact t-digest merge — not a mean of per-observation
        percentiles) and an HLL cardinality estimate
        (``distinct_estimate``); hosts synced before the sketch era simply
        lack those keys.
        """
        out: dict[str, dict[str, float]] = {}
        digests: dict[str, list[TDigest]] = {}
        hlls: dict[str, list[HyperLogLog]] = {}
        for doc in self.mongo.collection("superdb", "observations").find(
            {"@type": "AGGObservationInterface"}
        ):
            agg = doc.get("aggregates", {}).get(measurement, {}).get(field)
            if not agg or not agg.get("count") or not _finite_agg(agg):
                continue
            host = doc["hostname"]
            cur = out.setdefault(host, {"min": math.inf, "max": -math.inf, "mean": 0.0, "count": 0.0})
            cur["min"] = min(cur["min"], agg["min"])
            cur["max"] = max(cur["max"], agg["max"])
            total = cur["count"] + agg["count"]
            cur["mean"] = (cur["mean"] * cur["count"] + agg["mean"] * agg["count"]) / total
            cur["count"] = total
            sk = doc.get("sketches", {}).get(measurement, {}).get(field)
            if sk:
                if "digest" in sk:
                    digests.setdefault(host, []).append(
                        TDigest.from_dict(sk["digest"])
                    )
                if "hll" in sk:
                    hlls.setdefault(host, []).append(
                        HyperLogLog.from_dict(sk["hll"])
                    )
        for host, cur in out.items():
            ds = digests.get(host)
            if ds:
                merged = ds[0] if len(ds) == 1 else TDigest.merged(ds)
                for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                    v = merged.quantile(q)
                    if v is not None:
                        cur[label] = v
            hs = hlls.get(host)
            if hs:
                hll = HyperLogLog(hs[0].p)
                for h in hs:
                    hll.merge_from(h)
                cur["distinct_estimate"] = float(round(hll.count()))
            state = self.sync_status(host)
            cur["partial"] = bool(state is not None and not state.get("complete", True))
        return out
