"""P-MoVE core: the HPC ontology, the Knowledge Base, entry interfaces,
automatic query generation, KB views, the daemon (Fig 3 scenarios), the
BenchmarkInterface runners, and SUPERDB."""

from .anomaly import (
    Anomaly,
    ewma_chart,
    rolling_zscore,
    scan_component,
    scan_observation,
    scan_series,
)
from .benchmarks import BENCHMARKS, run_benchmark
from .daemon import DEFAULT_ENV, PMoVE, Target
from .dtmi import DtmiError, dtmi_parent, is_dtmi, make_dtmi, parse_dtmi
from .federation import FederationLink
from .kb import KBError, KnowledgeBase
from .observation import (
    make_benchmark,
    make_benchmark_result,
    make_observation,
    make_process,
    new_tag,
    observation_fields,
)
from .ontology import (
    DTDL_CONTEXT,
    Command,
    HWTelemetry,
    Interface,
    OntologyError,
    Property,
    Relationship,
    SWTelemetry,
    content_from_jsonld,
)
from .queries import generate_queries, query_for_component, recall
from .replay import Prediction, ReplayEvent, predict_runtime, replay, suggest_upgrade
from .rootcause import Diagnosis, classify, diagnose, record_probe_baseline
from .superdb import SuperDB
from .views import (PanelSpec, ViewSpec, focus_view, level_view,
    observation_level_view, subtree_view)

__all__ = [
    "Anomaly",
    "BENCHMARKS",
    "Diagnosis",
    "Prediction",
    "ReplayEvent",
    "classify",
    "diagnose",
    "ewma_chart",
    "predict_runtime",
    "replay",
    "rolling_zscore",
    "scan_component",
    "scan_observation",
    "scan_series",
    "suggest_upgrade",
    "DEFAULT_ENV",
    "DTDL_CONTEXT",
    "Command",
    "DtmiError",
    "FederationLink",
    "HWTelemetry",
    "Interface",
    "KBError",
    "KnowledgeBase",
    "OntologyError",
    "PMoVE",
    "PanelSpec",
    "Property",
    "Relationship",
    "SWTelemetry",
    "SuperDB",
    "Target",
    "ViewSpec",
    "content_from_jsonld",
    "dtmi_parent",
    "focus_view",
    "generate_queries",
    "is_dtmi",
    "level_view",
    "make_benchmark",
    "make_benchmark_result",
    "make_dtmi",
    "make_observation",
    "make_process",
    "new_tag",
    "observation_level_view",
    "observation_fields",
    "parse_dtmi",
    "query_for_component",
    "recall",
    "record_probe_baseline",
    "run_benchmark",
    "subtree_view",
]
