"""The Knowledge Base (Fig 1, §III).

"Capturing the target system and its component hierarchy, the KB can be
parsed to acquire any information from topology to database parameters."

A :class:`KnowledgeBase` is a tree of :class:`~repro.core.ontology.Interface`
twins — node → sockets → cores → threads, plus caches, NUMA domains, memory,
disks, NICs and GPUs — each carrying Properties, Relationships and
SW/HW-Telemetry contents; a configuration section (the step-0 environment:
database endpoints, Grafana token); and an append-only list of *entries*
(ObservationInterface / BenchmarkInterface documents, §III-C).

The KB is built exclusively from a **parsed probe** (host side of Fig 3
steps 1–2), never from a live :class:`MachineSpec` — see
:mod:`repro.probing.prober`.
"""

from __future__ import annotations

import re
from typing import Any

from repro.db.mongo import MongoDB
from repro.pcp.pmns import instance_field, metric_to_measurement, perfevent_metric

from .dtmi import make_dtmi, parse_dtmi
from .ontology import (
    DTDL_CONTEXT,
    Command,
    HWTelemetry,
    Interface,
    OntologyError,
    Property,
    Relationship,
    SWTelemetry,
)

__all__ = ["KnowledgeBase", "KBError"]


class KBError(ValueError):
    """Inconsistent KB structure or failed lookups."""


def _seg(s: str) -> str:
    """Coerce arbitrary names into valid DTMI segments."""
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", str(s))
    if not cleaned or not cleaned[0].isalpha():
        cleaned = "c_" + cleaned
    return cleaned


#: ncu metrics attached to GPU twins as HWTelemetry (Listing 4's example is
#: gpu__compute_memory_access_throughput).
_NCU_EVENTS = (
    ("gpu__compute_memory_access_throughput",
     "Compute Memory Pipeline: throughput of internal activity within caches and DRAM"),
    ("sm__throughput", "SM throughput as percent of peak"),
    ("dram__bytes", "Bytes transferred to/from DRAM"),
    ("gpu__time_duration", "Kernel wall time"),
)


class KnowledgeBase:
    """The tree of twins plus config and history entries."""

    def __init__(self, hostname: str) -> None:
        self.hostname = hostname
        self.root_id = make_dtmi(_seg(hostname))
        self.interfaces: dict[str, Interface] = {}
        self._children: dict[str, list[str]] = {}
        self._parent: dict[str, str | None] = {}
        self.config: dict[str, Any] = {}
        self.entries: list[dict[str, Any]] = []
        self.probe: dict[str, Any] = {}

    # ==================================================================
    # Construction
    # ==================================================================
    def add_interface(self, iface: Interface, parent: str | None) -> Interface:
        if iface.id in self.interfaces:
            raise KBError(f"duplicate interface {iface.id}")
        if parent is not None:
            if parent not in self.interfaces:
                raise KBError(f"parent {parent} not in KB")
            self._children.setdefault(parent, []).append(iface.id)
            # Encode the containment edge on the parent twin itself.
            psegs, pver = parse_dtmi(parent)
            self.interfaces[parent].add(
                Relationship(
                    id=make_dtmi(*psegs, f"rel_{_seg(iface.name)}", version=pver),
                    name="contains",
                    target=iface.id,
                )
            )
        self._parent[iface.id] = parent
        self.interfaces[iface.id] = iface
        self._children.setdefault(iface.id, [])
        return iface

    @classmethod
    def from_probe(cls, probe: dict[str, Any], config: dict[str, Any] | None = None) -> "KnowledgeBase":
        """Build the initial KB from a parsed probe bundle (§III-C)."""
        for key in ("hostname", "topology", "system", "pmu", "pcp"):
            if key not in probe:
                raise KBError(f"probe missing section {key!r}")
        host = probe["hostname"]
        kb = cls(host)
        kb.probe = probe
        kb.config = dict(config or {})
        topo = probe["topology"]
        h = _seg(host)

        root = Interface(id=kb.root_id, kind="node", name=host)
        root.add(Property(id=make_dtmi(h, "os"), name="os", description=probe["os"]))
        root.add(Property(id=make_dtmi(h, "kernel"), name="kernel", description=probe["kernel"]))
        root.add(Property(id=make_dtmi(h, "cpu_model"), name="cpu_model",
                          description=topo["cpu_name"]))
        root.add(Property(id=make_dtmi(h, "pcp_version"), name="pcp_version",
                          description=probe["pcp"].get("version", "")))
        root.add(Command(id=make_dtmi(h, "cmd_benchmark"), name="run_benchmark",
                         description="Run CARM/STREAM/HPCG via BenchmarkInterface"))
        root.add(Command(id=make_dtmi(h, "cmd_observe"), name="observe_kernel",
                         description="Scenario B: sample PMUs around a kernel execution"))
        kb.add_interface(root, parent=None)

        kb._attach_node_telemetry(probe)
        kb._build_memory(probe)
        kb._build_sockets(probe)
        kb._build_numa(probe)
        kb._build_disks(probe)
        kb._build_nics(probe)
        kb._build_gpus(probe)
        return kb

    # ------------------------------------------------------------------
    def _sw(self, owner_seg: list[str], n: int, metric: str, field: str, desc: str = "") -> SWTelemetry:
        return SWTelemetry(
            id=make_dtmi(*owner_seg, f"telemetry{n}"),
            name=metric,
            sampler_name=metric,
            db_name=metric_to_measurement(metric),
            field_name=field,
            description=desc,
        )

    def _attach_node_telemetry(self, probe: dict[str, Any]) -> None:
        root = self.interfaces[self.root_id]
        h = _seg(self.hostname)
        node_metrics = [
            m
            for m, meta in probe["pcp"].get("metrics", {}).items()
            if meta.get("domain") == "" and not m.startswith("hinv")
        ]
        for i, m in enumerate(sorted(node_metrics)):
            root.add(self._sw([h], i, m, "_value"))

    def _build_memory(self, probe: dict[str, Any]) -> None:
        h = _seg(self.hostname)
        mem = Interface(id=make_dtmi(h, "memory"), kind="memory", name="memory")
        mem.add(Property(id=make_dtmi(h, "memory", "size"), name="size_bytes",
                         description=probe["system"]["memory_bytes"]))
        if probe["system"].get("mem_clock_hz"):
            mem.add(Property(id=make_dtmi(h, "memory", "clock"), name="clock_hz",
                             description=probe["system"]["mem_clock_hz"]))
        kb_metrics = probe["pcp"].get("metrics", {})
        n = 0
        for m in ("mem.util.used", "mem.util.free"):
            if m in kb_metrics:
                mem.add(self._sw([h, "memory"], n, m, "_value"))
                n += 1
        self.add_interface(mem, parent=self.root_id)

    def _build_sockets(self, probe: dict[str, Any]) -> None:
        h = _seg(self.hostname)
        topo = probe["topology"]
        pmu = probe["pmu"]
        n_sockets = topo["sockets"]
        cores_per_socket = topo["cores_per_socket"]
        smt = topo["threads_per_core"]
        n_cores = n_sockets * cores_per_socket
        core_events = [e for e in pmu.get("events", []) if e not in pmu.get("socket_events", [])]
        socket_events = pmu.get("socket_events", [])
        caches = topo.get("caches", [])
        # threads of core c: {c + t*n_cores} — mirrors likwid numbering.
        hwthreads = topo.get("hwthreads", [])
        threads_by_core: dict[int, list[int]] = {}
        for cpu, _t, core, _s in hwthreads:
            threads_by_core.setdefault(core, []).append(cpu)

        for s in range(n_sockets):
            sseg = [h, f"socket{s}"]
            sock = Interface(id=make_dtmi(*sseg), kind="socket", name=f"socket{s}")
            sock.add(Property(id=make_dtmi(*sseg, "n_cores"), name="n_cores",
                              description=cores_per_socket))
            for i, ev in enumerate(sorted(socket_events)):
                first_cpu = s * cores_per_socket
                sock.add(
                    HWTelemetry(
                        id=make_dtmi(*sseg, f"telemetry{i}"),
                        name=ev,
                        pmu_name=pmu.get("uarch", "unknown"),
                        sampler_name=perfevent_metric(ev),
                        db_name=metric_to_measurement(perfevent_metric(ev)),
                        field_name=instance_field(f"cpu{first_cpu}"),
                        description=f"socket-scope event read via cpu{first_cpu}",
                    )
                )
            self.add_interface(sock, parent=self.root_id)

            # Shared LLC as a socket child.
            l3 = next((c for c in caches if c.get("level") == 3), None)
            if l3:
                cseg = sseg + ["l3"]
                c_iface = Interface(id=make_dtmi(*cseg), kind="cache", name=f"socket{s} L3")
                c_iface.add(Property(id=make_dtmi(*cseg, "size"), name="size_bytes",
                                     description=l3["size_bytes"]))
                c_iface.add(Property(id=make_dtmi(*cseg, "level"), name="level", description=3))
                self.add_interface(c_iface, parent=sock.id)

            for c_local in range(cores_per_socket):
                core_id = s * cores_per_socket + c_local
                coreseg = sseg + [f"core{core_id}"]
                core_iface = Interface(id=make_dtmi(*coreseg), kind="core", name=f"core{core_id}")
                self.add_interface(core_iface, parent=sock.id)
                for cache in caches:
                    if cache.get("level") in (1, 2):
                        lseg = coreseg + [f"l{cache['level']}"]
                        ci = Interface(id=make_dtmi(*lseg), kind="cache",
                                       name=f"core{core_id} L{cache['level']}")
                        ci.add(Property(id=make_dtmi(*lseg, "size"), name="size_bytes",
                                        description=cache["size_bytes"]))
                        ci.add(Property(id=make_dtmi(*lseg, "level"), name="level",
                                        description=cache["level"]))
                        self.add_interface(ci, parent=core_iface.id)
                cpus = sorted(threads_by_core.get(core_id, [core_id, core_id + n_cores]))[:smt]
                for cpu in cpus:
                    tseg = coreseg + [f"cpu{cpu}"]
                    t_iface = Interface(id=make_dtmi(*tseg), kind="thread", name=f"cpu{cpu}")
                    t_iface.add(Property(id=make_dtmi(*tseg, "cpu_id"), name="cpu_id",
                                         description=cpu))
                    fld = instance_field(f"cpu{cpu}")
                    n = 0
                    for metric, meta in sorted(probe["pcp"].get("metrics", {}).items()):
                        if meta.get("domain") == "percpu":
                            t_iface.add(self._sw(tseg, n, metric, fld))
                            n += 1
                    for ev in sorted(core_events):
                        t_iface.add(
                            HWTelemetry(
                                id=make_dtmi(*tseg, f"telemetry{n}"),
                                name=ev,
                                pmu_name=pmu.get("uarch", "unknown"),
                                sampler_name=perfevent_metric(ev),
                                db_name=metric_to_measurement(perfevent_metric(ev)),
                                field_name=fld,
                            )
                        )
                        n += 1
                    self.add_interface(t_iface, parent=core_iface.id)

    def _build_numa(self, probe: dict[str, Any]) -> None:
        h = _seg(self.hostname)
        for dom in probe["topology"].get("numa_domains", []):
            nseg = [h, f"numa{dom['node_id']}"]
            iface = Interface(id=make_dtmi(*nseg), kind="numa", name=f"numa{dom['node_id']}")
            iface.add(Property(id=make_dtmi(*nseg, "memory"), name="memory_mb",
                               description=dom.get("memory_mb")))
            fld = instance_field(f"node{dom['node_id']}")
            for i, m in enumerate(("mem.numa.alloc.hit", "mem.numa.alloc.miss")):
                if m in probe["pcp"].get("metrics", {}):
                    iface.add(self._sw(nseg, i, m, fld))
            for cpu in dom.get("processors", []):
                iface.add(
                    Relationship(
                        id=make_dtmi(*nseg, f"rel_cpu{cpu}"),
                        name="owns_thread",
                        target=self._thread_dtmi(cpu),
                    )
                )
            self.add_interface(iface, parent=self.root_id)

    def _build_disks(self, probe: dict[str, Any]) -> None:
        h = _seg(self.hostname)
        for d in probe.get("disks", []):
            dseg = [h, _seg(d["name"])]
            iface = Interface(id=make_dtmi(*dseg), kind="disk", name=d["name"])
            if "model" in d:
                iface.add(Property(id=make_dtmi(*dseg, "model"), name="model",
                                   description=d["model"]))
            if "size_bytes" in d:
                iface.add(Property(id=make_dtmi(*dseg, "size"), name="size_bytes",
                                   description=d["size_bytes"]))
            if "smart" in d:
                iface.add(Property(id=make_dtmi(*dseg, "health"), name="smart_health",
                                   description=d["smart"].get("health")))
            iface.add(self._sw(dseg, 0, "disk.dev.write_bytes", instance_field(d["name"])))
            self.add_interface(iface, parent=self.root_id)

    def _build_nics(self, probe: dict[str, Any]) -> None:
        h = _seg(self.hostname)
        for n in probe.get("system", {}).get("networks", []):
            nseg = [h, _seg(n["name"])]
            iface = Interface(id=make_dtmi(*nseg), kind="nic", name=n["name"])
            iface.add(Property(id=make_dtmi(*nseg, "product"), name="product",
                               description=n.get("product", "")))
            iface.add(Property(id=make_dtmi(*nseg, "capacity"), name="capacity_bps",
                               description=n.get("capacity_bps")))
            iface.add(self._sw(nseg, 0, "network.interface.out.bytes",
                               instance_field(n["name"])))
            self.add_interface(iface, parent=self.root_id)

    def _build_gpus(self, probe: dict[str, Any]) -> None:
        h = _seg(self.hostname)
        for g in probe.get("gpus", []):
            gseg = [h, f"gpu{g['index']}"]
            iface = Interface(id=make_dtmi(*gseg), kind="gpu", name=f"gpu{g['index']}")
            props = [
                ("model", g.get("model")),
                ("memory", f"{g.get('memory_mb')} Mb"),
                ("n_sms", g.get("n_sms")),
                ("compute_capability", g.get("compute_capability")),
                ("numa node", g.get("numa_node")),
                ("bus_id", g.get("bus_id")),
            ]
            for i, (name, val) in enumerate(p for p in props if p[1] is not None):
                iface.add(Property(id=make_dtmi(*gseg, f"property{i}"), name=name,
                                   description=val))
            fld = instance_field(f"gpu{g['index']}")
            n = 0
            for m in probe.get("nvml_metrics", []):
                iface.add(self._sw(gseg, n, m, fld))
                n += 1
            for ev, desc in _NCU_EVENTS:
                iface.add(
                    HWTelemetry(
                        id=make_dtmi(*gseg, f"telemetry{n}"),
                        name=ev,
                        pmu_name="ncu",
                        sampler_name=ev,
                        db_name=f"ncu_{ev}",
                        field_name=fld,
                        description=desc,
                    )
                )
                n += 1
            self.add_interface(iface, parent=self.root_id)

    def _thread_dtmi(self, cpu: int) -> str:
        """DTMI of the thread twin for a Linux CPU id."""
        for iface_id, iface in self.interfaces.items():
            if iface.kind == "thread" and iface.name == f"cpu{cpu}":
                return iface_id
        raise KBError(f"no thread twin for cpu{cpu}")

    # ==================================================================
    # Navigation (what the views consume)
    # ==================================================================
    def get(self, dtmi: str) -> Interface:
        try:
            return self.interfaces[dtmi]
        except KeyError:
            raise KBError(f"no interface {dtmi} in KB") from None

    def children(self, dtmi: str) -> list[Interface]:
        self.get(dtmi)
        return [self.interfaces[c] for c in self._children.get(dtmi, [])]

    def parent(self, dtmi: str) -> Interface | None:
        self.get(dtmi)
        p = self._parent.get(dtmi)
        return self.interfaces[p] if p else None

    def path_to_root(self, dtmi: str) -> list[Interface]:
        """The focus-view path: component → ... → whole system (§III-B)."""
        out = [self.get(dtmi)]
        while (p := self._parent.get(out[-1].id)) is not None:
            out.append(self.interfaces[p])
        return out

    def subtree(self, dtmi: str) -> list[Interface]:
        """Pre-order walk from an arbitrary node to all leaves (§III-B)."""
        out: list[Interface] = []
        stack = [dtmi]
        while stack:
            cur = stack.pop()
            out.append(self.get(cur))
            stack.extend(reversed(self._children.get(cur, [])))
        return out

    def leaves(self, dtmi: str) -> list[Interface]:
        return [i for i in self.subtree(dtmi) if not self._children.get(i.id)]

    def components_of_kind(self, kind: str) -> list[Interface]:
        """One level of the KB tree by type (§III-B level view)."""
        return [i for i in self.interfaces.values() if i.kind == kind]

    def find_by_name(self, name: str) -> Interface:
        for i in self.interfaces.values():
            if i.name == name:
                return i
        raise KBError(f"no interface named {name!r}")

    def depth(self, dtmi: str) -> int:
        return len(self.path_to_root(dtmi)) - 1

    # ==================================================================
    # Entries (§III-C: the KB "captures more ... by attaching new entries")
    # ==================================================================
    def append_entry(self, entry: dict[str, Any]) -> dict[str, Any]:
        if "@type" not in entry or "@id" not in entry:
            raise KBError("KB entries must be typed JSON-LD documents")
        self.entries.append(entry)
        return entry

    def entries_of_type(self, t: str) -> list[dict[str, Any]]:
        return [e for e in self.entries if e.get("@type") == t]

    # ==================================================================
    # Serialization / persistence
    # ==================================================================
    def to_jsonld(self) -> dict[str, Any]:
        return {
            "@context": DTDL_CONTEXT,
            "hostname": self.hostname,
            "root": self.root_id,
            "config": self.config,
            "interfaces": {i.id: i.to_jsonld() for i in self.interfaces.values()},
            "tree": {k: list(v) for k, v in self._children.items()},
            "entries": list(self.entries),
        }

    @classmethod
    def from_jsonld(cls, doc: dict[str, Any]) -> "KnowledgeBase":
        kb = cls(doc["hostname"])
        kb.config = dict(doc.get("config", {}))
        tree = doc.get("tree", {})
        parent_of: dict[str, str] = {}
        for parent, kids in tree.items():
            for k in kids:
                parent_of[k] = parent
        # Insert root first, then children in BFS order.
        order = [doc["root"]]
        seen = {doc["root"]}
        i = 0
        while i < len(order):
            for k in tree.get(order[i], []):
                if k not in seen:
                    order.append(k)
                    seen.add(k)
            i += 1
        for iface_id in order:
            iface_doc = doc["interfaces"][iface_id]
            iface = Interface.from_jsonld(iface_doc)
            # Drop auto-added containment rels; add_interface recreates them.
            iface.contents = [
                c for c in iface.contents
                if not (isinstance(c, Relationship) and c.name == "contains")
            ]
            kb.add_interface(iface, parent=parent_of.get(iface_id))
        kb.entries = list(doc.get("entries", []))
        return kb

    def save(self, mongo: MongoDB, database: str = "pmove") -> None:
        """Persist to the document store (Fig 3 step 3; re-run on change)."""
        col = mongo.collection(database, "kb")
        col.create_index("hostname")  # idempotent; every load filters on it
        col.replace_one({"hostname": self.hostname}, self.to_jsonld(), upsert=True)

    @classmethod
    def load(cls, mongo: MongoDB, hostname: str, database: str = "pmove") -> "KnowledgeBase":
        doc = mongo.collection(database, "kb").find_one({"hostname": hostname})
        if doc is None:
            raise KBError(f"no KB for host {hostname!r} in {database}")
        return cls.from_jsonld(doc)

    # ==================================================================
    def render_tree(self, max_depth: int | None = None) -> str:
        """ASCII rendering of the twin hierarchy (Fig 1 flavour)."""
        lines: list[str] = []

        def walk(dtmi: str, prefix: str, depth: int) -> None:
            iface = self.interfaces[dtmi]
            tele = len(iface.telemetry())
            suffix = f"  [{iface.kind}, {tele} telemetry]" if tele else f"  [{iface.kind}]"
            lines.append(prefix + iface.name + suffix)
            if max_depth is not None and depth >= max_depth:
                return
            kids = self._children.get(dtmi, [])
            for i, k in enumerate(kids):
                walk(k, prefix + ("  " if prefix else "  "), depth + 1)

        walk(self.root_id, "", 0)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.interfaces)
