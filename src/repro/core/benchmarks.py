"""BenchmarkInterface runners (§III-C).

"P-MoVE can perform Cache Aware Roofline Model (CARM), STREAM and High
Performance Conjugate Gradient (HPCG) benchmarks using the
BenchmarkInterface.  As the probing phase, P-MoVE first copies the benchmark
source codes to the target system ... compiles the benchmarks on the target
system using a preferred compiler, e.g., icc or gcc.  After the benchmark,
P-MoVE parses the results and creates a BenchmarkInterface with the
corresponding BenchmarkResult."

Each runner here follows exactly that flow against the simulated target:
run → render the tool's native output → *parse that output* → build the
entry from the parsed values.
"""

from __future__ import annotations

from typing import Any

from repro.machine.simulator import SimulatedMachine

from .kb import KnowledgeBase
from .observation import make_benchmark, make_benchmark_result

__all__ = ["BENCHMARKS", "run_benchmark"]

BENCHMARKS = ("carm", "stream", "hpcg")


def _preferred_compiler(kb: KnowledgeBase) -> str:
    """icc on Intel targets when available, else gcc (§III-C)."""
    vendor = kb.probe.get("cpu", {}).get("vendor", "")
    return "icc" if "Intel" in vendor else "gcc"


def _run_carm(kb: KnowledgeBase, machine: SimulatedMachine, **params: Any) -> list[dict]:
    from repro.carm.microbench import CarmMicrobenchSuite
    from repro.carm.model import save_to_kb

    suite = CarmMicrobenchSuite(machine, kb)
    counts = params.get("thread_counts")
    entries = [save_to_kb(kb, m, compiler=_preferred_compiler(kb))
               for m in suite.sweep(counts)]
    return entries


def _run_stream(kb: KnowledgeBase, machine: SimulatedMachine, **params: Any) -> list[dict]:
    from repro.workloads.stream import parse_stream_output, run_stream

    n = int(params.get("n", 20_000_000))
    _, output = run_stream(machine, n=n, ntimes=int(params.get("ntimes", 10)))
    parsed = parse_stream_output(output)  # parse the tool output, per §III-C
    results = [
        make_benchmark_result(f"{k}_bandwidth", v, "MB/s") for k, v in sorted(parsed.items())
    ]
    entry = make_benchmark(
        host_seg=kb.hostname,
        index=len(kb.entries_of_type("BenchmarkInterface")),
        name="STREAM",
        compiler=_preferred_compiler(kb),
        command=f"stream_c.exe (N={n})",
        results=results,
        parameters={"n": n},
    )
    return [kb.append_entry(entry)]


def _run_hpcg(kb: KnowledgeBase, machine: SimulatedMachine, **params: Any) -> list[dict]:
    from repro.workloads.hpcg import parse_hpcg_output, run_hpcg

    dims = {k: int(params.get(k, 16)) for k in ("nx", "ny", "nz")}
    _, output = run_hpcg(machine, **dims, n_iterations=int(params.get("n_iterations", 50)))
    parsed = parse_hpcg_output(output)
    results = [
        make_benchmark_result("gflops", parsed["gflops"], "GFLOP/s"),
        make_benchmark_result("residual", parsed.get("residual", 0.0), "relative"),
    ]
    entry = make_benchmark(
        host_seg=kb.hostname,
        index=len(kb.entries_of_type("BenchmarkInterface")),
        name="HPCG",
        compiler=_preferred_compiler(kb),
        command=f"xhpcg --nx={dims['nx']} --ny={dims['ny']} --nz={dims['nz']}",
        results=results,
        parameters=dims,
    )
    return [kb.append_entry(entry)]


def run_benchmark(
    kb: KnowledgeBase, machine: SimulatedMachine, name: str, **params: Any
) -> list[dict]:
    """Run a named benchmark and append its BenchmarkInterface entries."""
    if kb.hostname != machine.spec.hostname:
        raise ValueError("KB and machine describe different hosts")
    if name == "carm":
        return _run_carm(kb, machine, **params)
    if name == "stream":
        return _run_stream(kb, machine, **params)
    if name == "hpcg":
        return _run_hpcg(kb, machine, **params)
    raise KeyError(f"unknown benchmark {name!r}; known: {BENCHMARKS}")
