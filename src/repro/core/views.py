"""KB views: focus, subtree, and level (§III-B, Fig 2).

A view is a declarative selection over the KB tree — which components and
which of their telemetry streams belong on one dashboard.  The Grafana
generator (:mod:`repro.viz.generator`) turns a :class:`ViewSpec` into the
dashboard JSON of Listing 1.

- **Focus view**: one component's metrics, optionally extended with the
  path from the component up to the root for root-cause navigation.
- **Subtree view**: from an arbitrary node down to all its leaves, detail
  increasing with depth.
- **Level view**: all instances of one component type, side by side — and
  across *multiple* machines' KBs, which is what Fig 2(c)/(d) show for
  processes on two different servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .kb import KnowledgeBase
from .ontology import HWTelemetry, SWTelemetry

__all__ = ["PanelSpec", "ViewSpec", "focus_view", "subtree_view", "level_view",
           "observation_level_view"]


@dataclass(frozen=True)
class PanelSpec:
    """One dashboard panel: series from one or more telemetry streams.

    Each target is ``(measurement, field)`` or, for observation-scoped
    series (Fig 2 c/d process views), ``(measurement, field, tag, alias)``.
    """

    title: str
    targets: tuple[tuple, ...]
    component: str = ""  # dtmi of the owning twin (informational)

    def __post_init__(self) -> None:
        if not self.targets:
            raise ValueError(f"panel {self.title!r} has no targets")
        for t in self.targets:
            if len(t) not in (2, 4):
                raise ValueError(f"panel target must be 2- or 4-tuple: {t}")


@dataclass(frozen=True)
class ViewSpec:
    """A complete view: ordered panels plus provenance metadata."""

    name: str
    kind: str  # "focus" | "subtree" | "level"
    panels: tuple[PanelSpec, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("focus", "subtree", "level"):
            raise ValueError(f"unknown view kind {self.kind!r}")


def _component_panels(kb: KnowledgeBase, dtmi: str, hw: bool, sw: bool) -> list[PanelSpec]:
    iface = kb.get(dtmi)
    panels = []
    for t in iface.telemetry():
        if isinstance(t, HWTelemetry) and not hw:
            continue
        if isinstance(t, SWTelemetry) and not sw:
            continue
        panels.append(
            PanelSpec(
                title=f"{iface.name}: {t.name}",
                targets=((t.db_name, t.field_name),),
                component=dtmi,
            )
        )
    return panels


def observation_level_view(
    kbs: KnowledgeBase | list[KnowledgeBase],
    event: str,
    command_filter: str | None = None,
    label: str | None = None,
) -> ViewSpec:
    """Level view over *executions*: one series per ObservationInterface.

    This is Fig 2(c)/(d): "the level-view dashboards for different processes
    running SpMV on two sockets with two different orderings ... and on
    different servers".  Each matching observation contributes one
    tag-scoped series (summed field of its first cpu) for ``event``.
    """
    if isinstance(kbs, KnowledgeBase):
        kbs = [kbs]
    if not kbs:
        raise ValueError("observation view needs at least one KB")
    targets = []
    for kb in kbs:
        for obs in kb.entries_of_type("ObservationInterface"):
            if command_filter and command_filter not in obs.get("command", ""):
                continue
            for m in obs.get("metrics", []):
                if m.get("event") == event and m.get("fields"):
                    targets.append((
                        m["measurement"],
                        m["fields"][0],
                        obs["tag"],
                        f"{kb.hostname}:{obs.get('command', '?')}",
                    ))
                    break
    if not targets:
        raise ValueError(
            f"no observations with event {event!r} match the process view"
        )
    hostnames = "+".join(kb.hostname for kb in kbs)
    title = label or f"process: {event} ({hostnames})"
    return ViewSpec(
        name=f"level:process:{hostnames}",
        kind="level",
        panels=(PanelSpec(title=title, targets=tuple(targets)),),
    )


def focus_view(
    kb: KnowledgeBase,
    dtmi: str,
    include_path: bool = False,
    hw: bool = True,
    sw: bool = True,
) -> ViewSpec:
    """Focus on a single component; optionally walk the path to the root
    ("navigating from a component perspective to a more generalized system
    perspective", §III-B)."""
    panels = _component_panels(kb, dtmi, hw, sw)
    if include_path:
        for anc in kb.path_to_root(dtmi)[1:]:
            panels.extend(_component_panels(kb, anc.id, hw, sw))
    if not panels:
        raise ValueError(f"component {dtmi} has no telemetry to view")
    return ViewSpec(name=f"focus:{kb.get(dtmi).name}", kind="focus", panels=tuple(panels))


def subtree_view(
    kb: KnowledgeBase, dtmi: str, hw: bool = True, sw: bool = True
) -> ViewSpec:
    """From ``dtmi`` down to all connected leaves (§III-B)."""
    panels: list[PanelSpec] = []
    for iface in kb.subtree(dtmi):
        panels.extend(_component_panels(kb, iface.id, hw, sw))
    if not panels:
        raise ValueError(f"subtree of {dtmi} has no telemetry to view")
    return ViewSpec(name=f"subtree:{kb.get(dtmi).name}", kind="subtree", panels=tuple(panels))


def level_view(
    kbs: KnowledgeBase | list[KnowledgeBase],
    kind: str,
    metric: str | None = None,
    hw: bool = True,
    sw: bool = True,
) -> ViewSpec:
    """All instances of one component type, possibly across machines.

    One panel per telemetry *name*, each panel overlaying every instance's
    series — "viewing them individually or in comparison" (§III-B).  Pass a
    list of KBs for the cross-server comparison of Fig 2(c)/(d).
    """
    if isinstance(kbs, KnowledgeBase):
        kbs = [kbs]
    if not kbs:
        raise ValueError("level view needs at least one KB")
    by_metric: dict[str, list[tuple[str, str]]] = {}
    components: dict[str, str] = {}
    for kb in kbs:
        for iface in kb.components_of_kind(kind):
            for t in iface.telemetry():
                if isinstance(t, HWTelemetry) and not hw:
                    continue
                if isinstance(t, SWTelemetry) and not sw:
                    continue
                if metric is not None and t.name != metric:
                    continue
                by_metric.setdefault(t.name, []).append((t.db_name, t.field_name))
                components.setdefault(t.name, iface.id)
    if not by_metric:
        raise ValueError(f"no {kind!r} telemetry matches the level view")
    hostnames = "+".join(kb.hostname for kb in kbs)
    panels = tuple(
        PanelSpec(
            title=f"{kind}: {name} ({hostnames})",
            targets=tuple(targets),
            component=components[name],
        )
        for name, targets in sorted(by_metric.items())
    )
    return ViewSpec(name=f"level:{kind}:{hostnames}", kind="level", panels=panels)
