"""Replay and what-if prediction (§I).

"Its historical data access capability ... can be leveraged to replay or
simulate various configurations to identify bottlenecks and propose
potential hardware or software configurations ... predictive performance
modelling on a candidate architecture, suggesting hardware upgrades."

Two capabilities on top of the KB + time-series history:

- :func:`replay` — reconstruct a recorded observation as a time-ordered
  event stream (what a live dashboard would have shown), entirely from the
  stored documents and series;
- :func:`predict_runtime` / :func:`suggest_upgrade` — CARM-based
  cross-architecture projection: characterize the recorded workload by its
  live (AI, GFLOPS) signature on the source machine, find which roof bound
  it, and scale to the candidate machine's corresponding roof.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.db.influx import InfluxDB

if TYPE_CHECKING:  # repro.carm imports repro.core.kb; keep runtime lazy
    from repro.carm.model import CarmModel

__all__ = ["ReplayEvent", "replay", "Prediction", "predict_runtime", "suggest_upgrade"]


@dataclass(frozen=True)
class ReplayEvent:
    """One reconstructed telemetry sample."""

    t: float
    measurement: str
    field: str
    value: float


def replay(influx: InfluxDB, database: str, observation: dict) -> list[ReplayEvent]:
    """Reconstruct the observation's full event stream in time order."""
    if observation.get("@type") != "ObservationInterface":
        raise ValueError("replay needs an ObservationInterface entry")
    events: list[ReplayEvent] = []
    for m in observation["metrics"]:
        for p in influx.points(database, m["measurement"], tags={"tag": observation["tag"]}):
            for f, v in p.fields.items():
                events.append(ReplayEvent(t=p.time, measurement=m["measurement"],
                                          field=f, value=v))
    if not events:
        raise ValueError(
            f"no stored series for observation {observation.get('@id')!r} — "
            "was it recorded into this database?"
        )
    return sorted(events, key=lambda e: (e.t, e.measurement, e.field))


@dataclass(frozen=True)
class Prediction:
    """A cross-architecture runtime projection."""

    source_host: str
    target_host: str
    observed_runtime_s: float
    predicted_runtime_s: float
    ai: float
    source_gflops: float
    target_gflops: float
    bound: str  # the roof class that limited the source run

    @property
    def speedup(self) -> float:
        return self.observed_runtime_s / self.predicted_runtime_s


def _signature(influx: InfluxDB, database: str, observation: dict,
               pmu_name: str) -> tuple[float, float]:
    from repro.carm.live import live_carm_points

    pts = [p for p in live_carm_points(influx, database, observation, pmu_name)
           if p.flops > 0]
    if not pts:
        raise ValueError("observation carries no usable FP event series")
    ai = statistics.median(p.ai for p in pts)
    gflops = statistics.median(p.gflops for p in pts)
    return ai, gflops


def predict_runtime(
    influx: InfluxDB,
    database: str,
    observation: dict,
    source_model: CarmModel,
    target_model: CarmModel,
    source_pmu: str,
) -> Prediction:
    """Project a recorded execution onto a candidate architecture.

    The workload's live signature (median AI, median GFLOPS) is read from
    its stored PMU series; the level whose roof bounded it on the source
    identifies the limiting resource; the prediction scales performance by
    the ratio of the *corresponding* roofs on the target, preserving the
    workload's relative efficiency under its bounding roof.
    """
    ai, gflops = _signature(influx, database, observation, source_pmu)
    bound = source_model.bounding_level(ai, gflops)
    if bound == "peak":
        src_roof = source_model.peak()
        dst_roof = target_model.peak()
    elif bound == "above_roofs":
        # Measured above every source roof (model mismatch); fall back to
        # the peak ratio, the most conservative scaling.
        src_roof = source_model.peak()
        dst_roof = target_model.peak()
    else:
        src_roof = source_model.attainable(ai, bound)
        dst_roof = target_model.attainable(ai, bound)
    efficiency = min(1.0, gflops / src_roof)
    target_gflops = efficiency * dst_roof
    observed = observation["time"]["runtime_s"]
    predicted = observed * gflops / target_gflops
    return Prediction(
        source_host=source_model.hostname,
        target_host=target_model.hostname,
        observed_runtime_s=observed,
        predicted_runtime_s=predicted,
        ai=ai,
        source_gflops=gflops,
        target_gflops=target_gflops,
        bound=bound,
    )


def suggest_upgrade(
    influx: InfluxDB,
    database: str,
    observation: dict,
    source_model: CarmModel,
    candidates: list[CarmModel],
    source_pmu: str,
) -> list[Prediction]:
    """Rank candidate architectures by projected speedup for a recorded
    workload — the paper's "suggesting hardware upgrades" use case."""
    if not candidates:
        raise ValueError("need at least one candidate architecture")
    preds = [
        predict_runtime(influx, database, observation, source_model, c, source_pmu)
        for c in candidates
    ]
    return sorted(preds, key=lambda p: p.predicted_runtime_s)
