"""The HPC ontology: DTDL metamodel classes (§II–III).

DTDL's six metamodel classes — Interface, Telemetry, Properties, Commands,
Relationship and data schemes — are the vocabulary; P-MoVE extends Telemetry
into *SWTelemetry* (always-sampled software state) and *HWTelemetry*
(PMU events sampled at high frequency during kernel executions), and treats
**each Interface as a standalone (sub)twin** — the core principle the paper
leans on.

Every class serializes to the JSON-LD shapes of the paper's Listing 4 and
deserializes back, so a KB is exactly a bag of these documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .dtmi import DtmiError, is_dtmi

__all__ = [
    "DTDL_CONTEXT",
    "OntologyError",
    "Property",
    "SWTelemetry",
    "HWTelemetry",
    "Relationship",
    "Command",
    "Interface",
    "content_from_jsonld",
]

DTDL_CONTEXT = "dtmi:dtdl:context;2"

#: Component kinds the HPC ontology models (§III-C: "every component that
#: performs computation, communication, or I/O").
COMPONENT_KINDS = (
    "system",
    "node",
    "socket",
    "core",
    "thread",
    "cache",
    "memory",
    "numa",
    "disk",
    "nic",
    "gpu",
    "process",
)


class OntologyError(ValueError):
    """Malformed ontology objects or JSON-LD documents."""


@dataclass(frozen=True)
class Property:
    """Static metadata of a component (model names, sizes, locations)."""

    id: str
    name: str
    description: Any

    def to_jsonld(self) -> dict[str, Any]:
        return {
            "@id": self.id,
            "@type": "Property",
            "name": self.name,
            "description": self.description,
        }


@dataclass(frozen=True)
class SWTelemetry:
    """An always-sampled, low-frequency software metric (§III-A).

    ``sampler_name`` is the PCP metric; ``db_name`` the Influx measurement;
    ``field_name`` the instance field (``_cpu0``...) — the triplet Listing 4
    shows as SamplerName/DBName/FieldName.
    """

    id: str
    name: str
    sampler_name: str
    db_name: str
    field_name: str = "_value"
    description: str = ""

    def to_jsonld(self) -> dict[str, Any]:
        return {
            "@id": self.id,
            "@type": "SWTelemetry",
            "name": self.name,
            "SamplerName": self.sampler_name,
            "DBName": self.db_name,
            "FieldName": self.field_name,
            "description": self.description,
        }


@dataclass(frozen=True)
class HWTelemetry:
    """A PMU event sampled at high frequency during kernel runs (§III-A).

    ``pmu_name`` names the counting unit (a CPU PMU key or ``"ncu"`` for
    GPUs, as in Listing 4)."""

    id: str
    name: str
    pmu_name: str
    sampler_name: str
    db_name: str
    field_name: str = "_value"
    description: str = ""

    def to_jsonld(self) -> dict[str, Any]:
        return {
            "@id": self.id,
            "@type": "HWTelemetry",
            "name": self.name,
            "PMUName": self.pmu_name,
            "SamplerName": self.sampler_name,
            "DBName": self.db_name,
            "FieldName": self.field_name,
            "description": self.description,
        }


@dataclass(frozen=True)
class Relationship:
    """An edge between twins (``contains``, ``on_numa_node``, ...)."""

    id: str
    name: str
    target: str

    def to_jsonld(self) -> dict[str, Any]:
        return {"@id": self.id, "@type": "Relationship", "name": self.name, "target": self.target}


@dataclass(frozen=True)
class Command:
    """An action a twin supports (run benchmark, start sampling)."""

    id: str
    name: str
    description: str = ""

    def to_jsonld(self) -> dict[str, Any]:
        return {"@id": self.id, "@type": "Command", "name": self.name, "description": self.description}


Content = Property | SWTelemetry | HWTelemetry | Relationship | Command


@dataclass
class Interface:
    """One standalone (sub)twin: a component plus its contents.

    ``kind`` is the HPC component type (socket, thread, gpu, ...); the
    JSON-LD form matches Listing 4 exactly.
    """

    id: str
    kind: str
    name: str
    contents: list[Content] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not is_dtmi(self.id):
            raise OntologyError(f"Interface @id must be a DTMI, got {self.id!r}")
        if self.kind not in COMPONENT_KINDS:
            raise OntologyError(f"unknown component kind {self.kind!r}")

    # ------------------------------------------------------------------
    def properties(self) -> list[Property]:
        return [c for c in self.contents if isinstance(c, Property)]

    def sw_telemetry(self) -> list[SWTelemetry]:
        return [c for c in self.contents if isinstance(c, SWTelemetry)]

    def hw_telemetry(self) -> list[HWTelemetry]:
        return [c for c in self.contents if isinstance(c, HWTelemetry)]

    def telemetry(self) -> list[SWTelemetry | HWTelemetry]:
        return [c for c in self.contents if isinstance(c, (SWTelemetry, HWTelemetry))]

    def relationships(self) -> list[Relationship]:
        return [c for c in self.contents if isinstance(c, Relationship)]

    def property_value(self, name: str) -> Any:
        for p in self.properties():
            if p.name == name:
                return p.description
        raise KeyError(f"{self.id} has no property {name!r}")

    def add(self, content: Content) -> None:
        self.contents.append(content)

    # ------------------------------------------------------------------
    def to_jsonld(self) -> dict[str, Any]:
        return {
            "@type": "Interface",
            "@id": self.id,
            "@context": DTDL_CONTEXT,
            "kind": self.kind,
            "name": self.name,
            "contents": [c.to_jsonld() for c in self.contents],
        }

    @classmethod
    def from_jsonld(cls, doc: dict[str, Any]) -> "Interface":
        if doc.get("@type") != "Interface":
            raise OntologyError(f"not an Interface document: {doc.get('@type')!r}")
        iface = cls(
            id=doc["@id"],
            kind=doc.get("kind", "node"),
            name=doc.get("name", ""),
        )
        for c in doc.get("contents", ()):
            iface.add(content_from_jsonld(c))
        return iface


def content_from_jsonld(doc: dict[str, Any]) -> Content:
    """Deserialize one contents entry by its @type."""
    t = doc.get("@type")
    try:
        if t == "Property":
            return Property(id=doc["@id"], name=doc["name"], description=doc.get("description"))
        if t == "SWTelemetry":
            return SWTelemetry(
                id=doc["@id"],
                name=doc["name"],
                sampler_name=doc["SamplerName"],
                db_name=doc["DBName"],
                field_name=doc.get("FieldName", "_value"),
                description=doc.get("description", ""),
            )
        if t == "HWTelemetry":
            return HWTelemetry(
                id=doc["@id"],
                name=doc["name"],
                pmu_name=doc["PMUName"],
                sampler_name=doc["SamplerName"],
                db_name=doc["DBName"],
                field_name=doc.get("FieldName", "_value"),
                description=doc.get("description", ""),
            )
        if t == "Relationship":
            return Relationship(id=doc["@id"], name=doc["name"], target=doc["target"])
        if t == "Command":
            return Command(id=doc["@id"], name=doc["name"], description=doc.get("description", ""))
    except KeyError as e:
        raise OntologyError(f"{t} document missing field {e}") from None
    raise OntologyError(f"unknown content @type {t!r}")
