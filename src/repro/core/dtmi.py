"""DTMI (Digital Twin Model Identifier) handling.

P-MoVE identifies every (sub)twin with DTDL-style DTMIs, e.g. Listing 4's
``dtmi:dt:cn1:gpu0;1`` and ``dtmi:dt:cn1:gpu0:property0;1``.  A DTMI is a
``:``-separated path under the ``dtmi:dt:`` root plus a ``;version`` suffix;
the path encodes the component hierarchy, which is what lets the KB treat
identifiers as tree addresses.
"""

from __future__ import annotations

import re

__all__ = ["make_dtmi", "parse_dtmi", "is_dtmi", "dtmi_parent", "DtmiError"]

_SEGMENT_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*$")
_DTMI_RE = re.compile(r"^dtmi:dt(?::[A-Za-z][A-Za-z0-9_]*)+;(\d+)$")


class DtmiError(ValueError):
    """Malformed DTMI string or segment."""


def make_dtmi(*segments: str, version: int = 1) -> str:
    """Build ``dtmi:dt:<seg>:<seg>...;<version>``.

    Segments must be identifier-like (DTDL forbids leading digits and
    punctuation); versions are positive integers.
    """
    if not segments:
        raise DtmiError("DTMI needs at least one segment")
    if version < 1:
        raise DtmiError("DTMI version must be >= 1")
    for seg in segments:
        if not _SEGMENT_RE.match(seg):
            raise DtmiError(f"invalid DTMI segment {seg!r}")
    return "dtmi:dt:" + ":".join(segments) + f";{version}"


def is_dtmi(s: str) -> bool:
    return bool(_DTMI_RE.match(s))


def parse_dtmi(s: str) -> tuple[list[str], int]:
    """Split a DTMI into (segments, version)."""
    m = _DTMI_RE.match(s)
    if not m:
        raise DtmiError(f"not a DTMI: {s!r}")
    body = s[len("dtmi:dt:") : s.rindex(";")]
    return body.split(":"), int(m.group(1))


def dtmi_parent(s: str) -> str | None:
    """The DTMI one level up the hierarchy, or None at the root."""
    segments, version = parse_dtmi(s)
    if len(segments) == 1:
        return None
    return make_dtmi(*segments[:-1], version=version)
