"""Resilient SUPERDB federation: the WAN leg of §III-E, made fault-tolerant.

``SuperDB.report`` used to write straight into its in-process DBs — no
retry, no sync bookkeeping, and a WAN that could never fail.  Real
federation crosses an unreliable link to "cloud instances of MongoDB and
InfluxDB", so every report now travels through a :class:`FederationLink`:

- a :class:`~repro.faults.services.ServiceFaultSet` *on the SUPERDB side*
  gates every upstream write, so WAN partitions, cloud outages and latency
  spikes are injectable independently of any local-host faults;
- failed pushes retry with the shipper's decorrelated-jitter backoff
  behind a circuit breaker (the shared :mod:`repro.pcp.retry` core),
  bounded by a virtual-time budget per observation;
- per-host ``sync_state`` documents record exactly which observations made
  it upstream, which are pending, and how stale the host's copy is;
- :meth:`FederationLink.anti_entropy` detects and repairs divergence after
  a partition — missing observation docs and raw-point gaps alike — so
  repeated syncs converge to the fault-free state.

Everything runs in virtual time with an explicit seeded RNG: a chaos
schedule replays bit-for-bit, and with no faults installed the link is a
zero-cost pass-through (identical end state to the direct write path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.faults.services import ServiceFaultSet
from repro.pcp.retry import CircuitBreaker, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.influx import InfluxDB

    from .superdb import SuperDB

__all__ = ["FederationLink", "SyncPending"]


class SyncPending(RuntimeError):
    """A sync left observations pending (retry budget exhausted)."""


class FederationLink:
    """Retrying, breaker-guarded transport between a local P-MoVE instance
    and SUPERDB, with per-host sync bookkeeping."""

    def __init__(
        self,
        superdb: "SuperDB",
        faults: ServiceFaultSet | None = None,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 5,
        breaker_open_s: float = 1.0,
        attempt_cost_s: float = 0.0,
        seed: int = 0,
    ) -> None:
        if attempt_cost_s < 0:
            raise ValueError("attempt cost must be >= 0")
        self.superdb = superdb
        #: WAN-side faults; independent of any local-host ServiceFaultSet.
        self.faults = faults if faults is not None else ServiceFaultSet()
        self.retry = retry or RetryPolicy()
        self.breaker = CircuitBreaker(breaker_threshold, breaker_open_s)
        #: Virtual time each upstream round trip costs (0 = free WAN).
        self.attempt_cost_s = attempt_cost_s
        self._rng = np.random.default_rng(seed)
        #: The link's virtual clock; advanced by every attempt and sleep.
        self.now = 0.0

        # Observable counters.
        self.attempts = 0
        self.failed_attempts = 0
        self.synced_observations = 0
        self.pending_observations = 0
        self.repaired_observations = 0

    # ------------------------------------------------------------------
    # The retry loop (shared by report and anti-entropy)
    # ------------------------------------------------------------------
    def _with_retry(self, t: float, fn) -> tuple[bool, float]:
        """Run ``fn`` against the upstream DBs with retry/backoff/breaker.

        Returns (succeeded, virtual time afterwards).  The WAN fault set is
        consulted at each attempt's start instant; a fault there fails the
        whole round trip (both cloud DBs sit behind the same link).
        """
        deadline = t + self.retry.budget_s
        prev_sleep = 0.0
        attempts = 0
        while True:
            start = self.breaker.earliest_attempt(t)
            if start > deadline:
                return False, t
            self.breaker.on_attempt(start)
            t_done = start + self.attempt_cost_s
            attempts += 1
            self.attempts += 1
            if self.faults.write_error(start) is None:
                fn()
                self.breaker.record_success(t_done)
                return True, t_done
            self.failed_attempts += 1
            self.breaker.record_failure(t_done)
            if self.retry.exhausted(attempts):
                return False, t_done
            prev_sleep = self.retry.next_sleep(prev_sleep, self._rng)
            t = t_done + prev_sleep

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(
        self,
        kb,
        local_influx: "InfluxDB",
        local_database: str = "pmove",
        mode: str = "agg",
        at: float | None = None,
    ) -> dict[str, Any]:
        """Push a local instance's KB + observations upstream, resiliently.

        Observations sync one at a time (each its own retried round trip),
        so a mid-report WAN fault yields a *partial* sync — exactly what
        ``sync_state`` records and :meth:`anti_entropy` later repairs.
        """
        sdb = self.superdb
        t = self.now if at is None else at
        kb_ok, t = self._with_retry(t, lambda: sdb._upsert_kb(kb))
        n_obs = n_points = 0
        pending: list[str] = []
        observations = kb.entries_of_type("ObservationInterface")
        if not kb_ok:
            # The KB doc never landed: nothing downstream can be trusted
            # to resolve, so every observation stays pending.
            pending = [o["@id"] for o in observations]
            self.pending_observations += len(pending)
        else:
            for obs in observations:
                copied = 0

                def push(o=obs):
                    nonlocal copied
                    copied = sdb._push_observation(o, local_influx,
                                                   local_database, mode,
                                                   kb.hostname)

                ok, t = self._with_retry(t, push)
                if ok:
                    n_obs += 1
                    n_points += copied
                    self.synced_observations += 1
                else:
                    pending.append(obs["@id"])
                    self.pending_observations += 1
        self._save_sync_state(kb.hostname, t, mode, observations, pending,
                              kb_ok)
        self.now = t
        return {
            "observations": n_obs,
            "points": n_points,
            "pending": len(pending),
            "t": t,
        }

    # ------------------------------------------------------------------
    # Sync bookkeeping
    # ------------------------------------------------------------------
    def _save_sync_state(
        self,
        hostname: str,
        t: float,
        mode: str,
        observations: list[dict[str, Any]],
        pending: list[str],
        kb_ok: bool,
    ) -> None:
        """Record what the upstream copy of ``hostname`` looks like.

        Bookkeeping is local state about the remote side, so it is *not*
        gated by the WAN fault set — you always know what you failed to
        send."""
        synced = [o["@id"] for o in observations if o["@id"] not in set(pending)]
        synced_end = max(
            (o["time"]["end"] for o in observations if o["@id"] in set(synced)),
            default=None,
        )
        latest_end = max((o["time"]["end"] for o in observations), default=None)
        staleness = (
            latest_end - synced_end
            if latest_end is not None and synced_end is not None
            else None
        )
        doc = {
            "hostname": hostname,
            "mode": mode,
            "last_sync_t": t,
            "synced": synced,
            "pending": list(pending),
            "kb_synced": kb_ok,
            "complete": kb_ok and not pending,
            "last_synced_obs_end": synced_end,
            "staleness_s": staleness,
        }
        col = self.superdb.mongo.collection("superdb", "sync_state")
        col.replace_one({"hostname": hostname}, doc, upsert=True)

    def sync_status(self, hostname: str) -> dict[str, Any] | None:
        """The recorded sync state of one host (None = never reported)."""
        return self.superdb.mongo.collection("superdb", "sync_state").find_one(
            {"hostname": hostname}
        )

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------
    def _diverged(
        self,
        obs: dict[str, Any],
        local_influx: "InfluxDB",
        local_database: str,
        mode: str,
    ) -> bool:
        """Whether the upstream copy of one observation is missing or has
        raw-point gaps (ts mode) relative to the local truth."""
        sdb = self.superdb
        doc = sdb.mongo.collection("superdb", "observations").find_one(
            {"@id": obs["@id"] + ":" + mode}
        )
        if doc is None:
            return True
        if mode != "ts":
            return False
        for m in obs["metrics"]:
            local = local_influx.points(
                local_database, m["measurement"], tags={"tag": obs["tag"]}
            )
            upstream = sdb.influx.points(
                "superdb", m["measurement"], tags={"tag": obs["tag"]}
            )
            n_local = sum(len(p.fields) for p in local)
            n_up = sum(len(p.fields) for p in upstream)
            if n_local != n_up:
                return True
        return False

    def anti_entropy(
        self,
        kb,
        local_influx: "InfluxDB",
        local_database: str = "pmove",
        mode: str = "agg",
        at: float | None = None,
    ) -> dict[str, Any]:
        """Detect and repair upstream divergence for one host.

        Compares every local observation against its SUPERDB copy (doc
        presence, and per-measurement raw point counts in ts mode) and
        re-pushes the diverged ones idempotently.  Each pass converges
        toward the fault-free state; a pass that repairs nothing proves
        convergence.
        """
        sdb = self.superdb
        t = self.now if at is None else at
        kb_ok, t = self._with_retry(t, lambda: sdb._upsert_kb(kb))
        observations = kb.entries_of_type("ObservationInterface")
        repaired = 0
        pending: list[str] = []
        checked = 0
        if not kb_ok:
            pending = [o["@id"] for o in observations]
        else:
            for obs in observations:
                checked += 1
                if not self._diverged(obs, local_influx, local_database, mode):
                    continue
                ok, t = self._with_retry(
                    t, lambda o=obs: sdb._push_observation(
                        o, local_influx, local_database, mode, kb.hostname
                    )
                )
                if ok:
                    repaired += 1
                    self.repaired_observations += 1
                else:
                    pending.append(obs["@id"])
        self._save_sync_state(kb.hostname, t, mode, observations, pending,
                              kb_ok)
        self.now = t
        return {
            "checked": checked,
            "repaired": repaired,
            "pending": len(pending),
            "t": t,
        }
