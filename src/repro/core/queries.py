"""Automatic query generation and recall (Listing 3, §III-C).

"Using the parameters in KB, queries are generated to automatically retrieve
data through these entries."  Given an ObservationInterface entry, the
generator emits one InfluxQL statement per sampled measurement, selecting
exactly the instance fields the observation touched and filtering on its
unique tag — the verbatim shape of the paper's Listing 3.  :func:`recall`
executes them against the time-series store.
"""

from __future__ import annotations

from typing import Any

from repro.db.influx import InfluxDB
from repro.db.influxql import ResultSet, execute

__all__ = ["generate_queries", "recall", "query_for_component"]


def generate_queries(
    observation: dict[str, Any],
    agg: str | None = None,
    group_by_s: float | None = None,
) -> list[str]:
    """InfluxQL statements recalling every series of one observation.

    The default is the verbatim Listing 3 raw select.  ``agg`` (and
    optionally ``group_by_s``) generate the downsampled variant instead —
    ``SELECT AGG("f") ... GROUP BY time(Ns)`` — which the engine serves
    from its write-through rollup tiers when the bucket width allows.
    """
    if observation.get("@type") != "ObservationInterface":
        raise ValueError("query generation needs an ObservationInterface entry")
    if group_by_s is not None and agg is None:
        agg = "MEAN"
    tag = observation["tag"]
    out: list[str] = []
    for m in observation["metrics"]:
        if agg is None:
            fields = ", ".join(f'"{f}"' for f in m["fields"])
        else:
            fields = ", ".join(f'{agg}("{f}")' for f in m["fields"])
        gb = f" GROUP BY time({group_by_s}s)" if group_by_s is not None else ""
        out.append(
            f'SELECT {fields} FROM "{m["measurement"]}" WHERE tag="{tag}"{gb}'
        )
    return out


def recall(
    influx: InfluxDB, database: str, observation: dict[str, Any]
) -> dict[str, ResultSet]:
    """Execute an observation's queries; returns measurement → results."""
    results: dict[str, ResultSet] = {}
    queries = observation.get("queries") or generate_queries(observation)
    for m, q in zip(observation["metrics"], queries):
        results[m["measurement"]] = execute(influx, database, q)
    return results


def query_for_component(kb, dtmi: str, window_s: float | None = None) -> list[str]:
    """Queries for every telemetry stream of one KB component — what a
    focus-view dashboard panel executes."""
    iface = kb.get(dtmi)
    out = []
    for t in iface.telemetry():
        where = f" WHERE time >= {window_s}" if window_s is not None else ""
        out.append(f'SELECT "{t.field_name}" FROM "{t.db_name}"{where}')
    return out
