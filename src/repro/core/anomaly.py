"""Anomaly detection over telemetry series (§III-B).

"Employing a tree-structured KB enables fully automated performance
monitoring, anomaly detection and dashboards..."  This module provides the
detection half: stream detectors (rolling z-score and an EWMA control
chart), a scanner that runs them over every series an observation or a KB
component links to, and a KB-aware ranking that walks the focus-view path
to suggest the root-cause component — the §III-B navigation "from a
component perspective to a more generalized system perspective".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.db.influx import InfluxDB
from repro.db.influxql import execute
from repro.db.sketch import nearest_rank

from .kb import KnowledgeBase

__all__ = ["Anomaly", "rolling_zscore", "ewma_chart", "percentile_exceed",
           "scan_series", "scan_observation", "scan_component"]


@dataclass(frozen=True)
class Anomaly:
    """One flagged sample."""

    t: float
    value: float
    score: float
    detector: str
    series: str = ""

    def __post_init__(self) -> None:
        if self.score < 0:
            raise ValueError("anomaly scores are non-negative")


def rolling_zscore(
    times: list[float],
    values: list[float],
    window: int = 12,
    threshold: float = 3.5,
    series: str = "",
) -> list[Anomaly]:
    """Flag samples more than ``threshold`` sigmas from the trailing window.

    The window excludes the sample under test; degenerate (constant)
    windows use a small floor variance so genuine level shifts still flag.
    """
    if window < 3:
        raise ValueError("window must be >= 3")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    out: list[Anomaly] = []
    for i in range(window, len(values)):
        hist = values[i - window : i]
        mean = sum(hist) / window
        var = sum((v - mean) ** 2 for v in hist) / window
        std = math.sqrt(var)
        floor = 1e-9 + 0.01 * abs(mean)
        score = abs(values[i] - mean) / max(std, floor)
        if score >= threshold:
            out.append(Anomaly(t=times[i], value=values[i], score=score,
                               detector="zscore", series=series))
    return out


def ewma_chart(
    times: list[float],
    values: list[float],
    alpha: float = 0.25,
    L: float = 3.0,
    warmup: int = 8,
    series: str = "",
) -> list[Anomaly]:
    """EWMA control chart: flag when the smoothed statistic escapes the
    +-L*sigma_ewma control limits estimated from the warmup samples."""
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")
    if len(values) <= warmup:
        return []
    base = values[:warmup]
    mu = sum(base) / warmup
    sigma = math.sqrt(sum((v - mu) ** 2 for v in base) / warmup)
    sigma = max(sigma, 1e-9 + 0.01 * abs(mu))
    out: list[Anomaly] = []
    z = mu
    for i in range(warmup, len(values)):
        z = alpha * values[i] + (1 - alpha) * z
        # Steady-state EWMA sigma.
        sigma_z = sigma * math.sqrt(alpha / (2 - alpha))
        score = abs(z - mu) / sigma_z
        if score >= L:
            out.append(Anomaly(t=times[i], value=values[i], score=score / L,
                               detector="ewma", series=series))
    return out


def percentile_exceed(
    times: list[float],
    values: list[float],
    pct: float = 99.0,
    cutoff: float | None = None,
    series: str = "",
) -> list[Anomaly]:
    """Flag samples at or above the series' ``pct``-quantile cutoff.

    ``cutoff`` is normally supplied by :func:`scan_observation` from the
    engine's sketch-served quantile (O(tiers), not O(points)); standalone
    use computes the exact nearest-rank cutoff from the given values.
    The score is 1 at the cutoff and grows with the relative excess.
    """
    if not 50.0 <= pct < 100.0:
        raise ValueError("pct must be in [50, 100)")
    if cutoff is None:
        cutoff = nearest_rank(values, pct)
    if cutoff is None or cutoff != cutoff:
        return []
    denom = max(abs(cutoff), 1e-9)
    out: list[Anomaly] = []
    for t, v in zip(times, values):
        if v >= cutoff:
            out.append(Anomaly(t=t, value=v, score=1.0 + (v - cutoff) / denom,
                               detector="percentile", series=series))
    return out


_DETECTORS = {"zscore": rolling_zscore, "ewma": ewma_chart,
              "percentile": percentile_exceed}


def scan_series(
    times: list[float],
    values: list[float],
    detector: str = "zscore",
    series: str = "",
    **kw,
) -> list[Anomaly]:
    try:
        fn = _DETECTORS[detector]
    except KeyError:
        raise KeyError(f"unknown detector {detector!r}; known: {sorted(_DETECTORS)}") from None
    return fn(times, values, series=series, **kw)


def _to_rates(times: list[float], values: list[float]) -> tuple[list[float], list[float]]:
    """Window deltas -> per-second rates (what dashboards chart).

    Sampled counter deltas depend on each window's length (the closing
    fetch covers a longer tail window, §IV); normalizing to rates keeps the
    detectors focused on behaviour, not on sampling cadence.
    """
    rt, rv = [], []
    for i in range(1, len(times)):
        dt = times[i] - times[i - 1]
        if dt > 0:
            rt.append(times[i])
            rv.append(values[i] / dt)
    return rt, rv


def scan_observation(
    influx: InfluxDB,
    database: str,
    observation: dict,
    detector: str = "zscore",
    as_rates: bool = True,
    **kw,
) -> list[Anomaly]:
    """Run a detector over every series an observation recorded.

    The ``percentile`` detector's cutoff is fetched from the engine's
    sketch-served quantile path when the tested values are the stored ones
    (``as_rates=False``) — the scan itself stays O(points), but the cutoff
    costs O(tiers) and matches what a dashboard percentile panel shows.
    Rate-normalized values aren't stored, so with ``as_rates=True`` the
    cutoff falls back to the exact in-memory fold.
    """
    if observation.get("@type") != "ObservationInterface":
        raise ValueError("need an ObservationInterface entry")
    sketch_served = (
        detector == "percentile"
        and not as_rates
        and "cutoff" not in kw
        and hasattr(influx, "quantile_columns")
    )
    out: list[Anomaly] = []
    for m in observation["metrics"]:
        # One columnar scan per measurement (no Point materialization),
        # then split per field; row order matches the Point scan.
        fields = list(m["fields"])
        _, rows = influx.scan_columns(
            database, m["measurement"], columns=fields,
            tags={"tag": observation["tag"]},
        )
        cutoffs: dict[str, float | None] = {}
        if sketch_served:
            _, _, qs = influx.quantile_columns(
                database, m["measurement"], kw.get("pct", 99.0),
                columns=fields, tags={"tag": observation["tag"]},
            )
            cutoffs = dict(zip(fields, qs))
        for i, f in enumerate(fields):
            times = [t for t, r in rows if r[i] is not None]
            values = [r[i] for _, r in rows if r[i] is not None]
            if as_rates:
                times, values = _to_rates(times, values)
            extra = dict(kw)
            if sketch_served:
                extra["cutoff"] = cutoffs.get(f)
            out.extend(
                scan_series(times, values, detector=detector,
                            series=f"{m['measurement']}:{f}", **extra)
            )
    return sorted(out, key=lambda a: a.t)


def scan_component(
    kb: KnowledgeBase,
    influx: InfluxDB,
    database: str,
    dtmi: str,
    detector: str = "zscore",
    walk_to_root: bool = True,
    **kw,
) -> dict[str, list[Anomaly]]:
    """Scan a component's telemetry, optionally walking the focus-view path
    toward the root; returns {component dtmi: anomalies} for root-causing.

    This is §III-B's navigation: start where the symptom is, climb toward
    the system view, and see at which level the anomalies appear.
    """
    components = kb.path_to_root(dtmi) if walk_to_root else [kb.get(dtmi)]
    result: dict[str, list[Anomaly]] = {}
    for iface in components:
        found: list[Anomaly] = []
        for tel in iface.telemetry():
            rs = execute(influx, database,
                         f'SELECT "{tel.field_name}" FROM "{tel.db_name}"')
            times = [t for t, row in rs.rows if row[0] is not None]
            values = [row[0] for _, row in rs.rows if row[0] is not None]
            found.extend(
                scan_series(times, values, detector=detector,
                            series=f"{tel.db_name}:{tel.field_name}", **kw)
            )
        result[iface.id] = found
    return result
