"""The P-MoVE daemon: Fig 3's host-side orchestrator.

Step ⓪ reads the environment (database endpoints, Grafana token); step ①
ships the probing module to the target; step ② parses the returned system
JSON into the KB; step ③ inserts the KB into MongoDB (re-run whenever the
KB changes).  After that the framework is "fully functional using only this
data structure".

Two scenarios (Fig 3):

- **Scenario A** — always-on software telemetry: PCP collectors configured
  from the KB, dashboards generated *before* the target starts reporting
  (steps A1/A2 are concurrent because the query parameters already live in
  the KB).
- **Scenario B** — HW events around a kernel execution: generic events are
  resolved through the Abstraction Layer, the PMU is programmed, a pinning
  script is generated from the probed topology, the kernel runs under
  sampling, and an ObservationInterface (with auto-generated recall
  queries) is appended to the KB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.db.faulty import FaultyInfluxDB
from repro.db.influx import InfluxDB
from repro.db.influxql import ResultSet
from repro.db.sharded import ShardedInfluxDB
from repro.db.mongo import MongoDB
from repro.faults.log import LogFaultSet
from repro.faults.services import ServiceFault, ServiceFaultSet
from repro.gpu.device import SimulatedGpu
from repro.gpu.nvml import NvmlSampler
from repro.machine.activity import SoftwareState
from repro.machine.kernel import KernelDescriptor
from repro.machine.simulator import KernelRun, SimulatedMachine
from repro.pcp.agents import PmdaLinux, PmdaNvidia, PmdaPerfevent, PmdaProc
from repro.pcp.commitlog import CommitLog
from repro.pcp.consumers import (
    AnomalyScannerConsumer,
    DbWriterConsumer,
    FederatorConsumer,
    IngestPipeline,
    ReportTracker,
    RollupMaintainerConsumer,
)
from repro.pcp.pmcd import Pmcd
from repro.pcp.pmns import instance_field, metric_to_measurement, perfevent_metric
from repro.pcp.sampler import Sampler, SamplingStats
from repro.pcp.shipper import ShipperConfig
from repro.pcp.transport import TransportModel
from repro.pmu.abstraction import AbstractionLayer, UnsupportedEventError, pmu_utils
from repro.pmu.counters import PMU
from repro.probing.prober import collect_raw_probe, parse_probe
from repro.serve import ServingFrontend, TenantConfig
from repro.viz.generator import generate_dashboard
from repro.viz.grafana import GrafanaServer
from repro.workloads.pinning import pin_threads, pinning_script

from .kb import KnowledgeBase
from .observation import make_observation, make_process, new_tag, observation_fields
from .queries import generate_queries, recall
from .views import ViewSpec, level_view, subtree_view

__all__ = ["Target", "PMoVE", "DEFAULT_ENV"]

DEFAULT_ENV = {
    "INFLUX_HOST": "127.0.0.1:8086",
    "MONGO_HOST": "127.0.0.1:27017",
    "GRAFANA_HOST": "127.0.0.1:3000",
    "GRAFANA_TOKEN": "pmove-token",
    "PMOVE_DB": "pmove",
    # "0"/"1" → one in-process engine (the default, byte-identical to every
    # prior PR); "N" ≥ 2 → a ShardedInfluxDB router over N shard engines.
    "PMOVE_SHARDS": "0",
}

#: Default SWTelemetry set for Scenario A — "approximately 20 pmdalinux
#: metrics ... at 1-second intervals" (§V-B); these are the core ones.
_SCENARIO_A_METRICS = (
    "kernel.percpu.cpu.idle",
    "kernel.percpu.cpu.user",
    "kernel.all.load",
    "kernel.all.pswitch",
    "mem.util.used",
    "mem.numa.alloc.hit",
)


@dataclass
class Target:
    """Everything the daemon holds per attached target system."""

    machine: SimulatedMachine
    kb: KnowledgeBase
    pmu: PMU
    pmcd: Pmcd
    sampler: Sampler
    perfevent: PmdaPerfevent
    observation_count: int = 0
    gpus: list[SimulatedGpu] = field(default_factory=list)


class PMoVE:
    """The daemon: owns host-side services and attached targets."""

    def __init__(
        self,
        env: dict[str, str] | None = None,
        seed: int = 0,
        service_faults: ServiceFaultSet | None = None,
    ) -> None:
        self.env = {**DEFAULT_ENV, **(env or {})}
        self.database = self.env["PMOVE_DB"]
        # Storage backend is a config switch: the single engine stays the
        # default; PMOVE_SHARDS >= 2 swaps in the consistent-hash router
        # (same surface, byte-identical query results).
        n_shards = int(self.env.get("PMOVE_SHARDS", "0") or 0)
        self.influx: InfluxDB | ShardedInfluxDB = (
            ShardedInfluxDB(n_shards) if n_shards >= 2 else InfluxDB()
        )
        self.influx.create_database(self.database)
        # Samplers write through a failure-injectable proxy so chaos (DB
        # outages, partitions, flaky writes) can be scripted against a live
        # daemon; reads and dashboards keep using the raw engine.
        self.service_faults = service_faults or ServiceFaultSet()
        self._write_influx = FaultyInfluxDB(self.influx, self.service_faults)
        self.mongo = MongoDB()
        self.grafana = GrafanaServer(
            self.influx, database=self.database, api_token=self.env["GRAFANA_TOKEN"]
        )
        self.layer: AbstractionLayer = pmu_utils
        self.targets: dict[str, Target] = {}
        self._seed = seed
        #: Durable-ingest pipeline (commit log + consumer groups), created
        #: lazily by :meth:`enable_durable_ingest` / ``mode="durable"``.
        self.ingest: IngestPipeline | None = None
        #: Alert sink of the anomaly-scanner group (keyed upserts; survives
        #: consumer crashes because the daemon owns it, not the consumer).
        self.anomaly_alerts: dict = {}
        #: Multi-tenant serving frontend (admission + bounded executor +
        #: per-tenant SLOs), created by :meth:`enable_serving`.  ``None``
        #: keeps the single-caller synchronous path untouched.
        self.serving: ServingFrontend | None = None

    # ==================================================================
    # Attachment (Fig 3 steps 1-3)
    # ==================================================================
    def attach_target(
        self, machine: SimulatedMachine, transport: TransportModel | None = None
    ) -> KnowledgeBase:
        """Probe the target, build its KB, persist it, wire up its PCP."""
        spec = machine.spec
        if spec.hostname in self.targets:
            raise ValueError(f"target {spec.hostname!r} already attached")
        raw = collect_raw_probe(spec)  # step 1 (runs on the target)
        parsed = parse_probe(raw)  # step 2 (host side)
        kb = KnowledgeBase.from_probe(parsed, config=dict(self.env))
        kb.save(self.mongo, self.database)  # step 3

        state = SoftwareState(machine)
        pmu = PMU(machine, seed=self._seed)
        perfevent = PmdaPerfevent(pmu)
        agents = [PmdaLinux(state), perfevent, PmdaProc(state)]
        gpus = [SimulatedGpu(g, machine.clock) for g in spec.gpus]
        for g in gpus:
            agents.append(PmdaNvidia(NvmlSampler(g)))
        pmcd = Pmcd(agents)
        sampler = Sampler(
            pmcd, self._write_influx, transport=transport, database=self.database,
            seed=self._seed, host=spec.hostname,
        )
        self.targets[spec.hostname] = Target(
            machine=machine, kb=kb, pmu=pmu, pmcd=pmcd, sampler=sampler,
            perfevent=perfevent, gpus=gpus,
        )
        return kb

    def target(self, hostname: str) -> Target:
        try:
            return self.targets[hostname]
        except KeyError:
            raise KeyError(
                f"target {hostname!r} not attached; attached: {sorted(self.targets)}"
            ) from None

    # ==================================================================
    # Scenario A: software telemetry monitoring
    # ==================================================================
    def scenario_a(
        self,
        hostname: str,
        duration_s: float,
        freq_hz: float = 1.0,
        metrics: list[str] | None = None,
        mode: str = "unbuffered",
        shipper_config: ShipperConfig | None = None,
    ) -> tuple[SamplingStats, str]:
        """Monitor system state; returns (sampling stats, dashboard uid).

        The dashboard is generated and registered *before* sampling starts
        — the paper's point that A1 and A2 can happen at the same time
        because everything needed is already in the KB.
        """
        t = self.target(hostname)
        metrics = list(metrics or _SCENARIO_A_METRICS)
        available = set(t.pmcd.available_metrics())
        unknown = [m for m in metrics if m not in available]
        if unknown:
            raise ValueError(f"metrics not available on {hostname}: {unknown}")

        # A2: dashboard exists before the target reports anything.
        view = subtree_view(t.kb, t.kb.root_id, hw=False)
        wanted = {metric_to_measurement(m) for m in metrics}
        panels = tuple(
            p for p in view.panels if any(meas in wanted for meas, _ in p.targets)
        )
        dash = generate_dashboard(
            ViewSpec(name=f"systemstate:{hostname}", kind="subtree", panels=panels)
        )
        uid = self.grafana.register(dash)

        # A1/A3: configure collectors and sample.
        t0 = t.machine.clock.now()
        t.machine.advance(duration_s)
        stats = t.sampler.run(
            metrics, freq_hz, t0, t0 + duration_s, tag=f"sysstate-{hostname}",
            mode=mode, shipper_config=shipper_config,
            pipeline=self._pipeline_for(mode),
        )
        return stats, uid

    # ==================================================================
    # Scenario B: HW events around a kernel execution
    # ==================================================================
    def resolve_events(self, hostname: str, generic_events: list[str]) -> tuple[list[str], list[str]]:
        """Abstraction-layer resolution: (hw events needed, unsupported
        generic events skipped)."""
        t = self.target(hostname)
        pmu_name = t.kb.probe["pmu"]["uarch"]
        hw: list[str] = []
        skipped: list[str] = []
        for g in generic_events:
            try:
                for e in self.layer.formula(pmu_name, g).events:
                    if e not in hw:
                        hw.append(e)
            except UnsupportedEventError:
                skipped.append(g)
        if not hw:
            raise UnsupportedEventError(
                f"none of {generic_events} are supported on {hostname}"
            )
        return hw, skipped

    def scenario_b(
        self,
        hostname: str,
        descriptor: KernelDescriptor,
        generic_events: list[str],
        freq_hz: float = 8.0,
        n_threads: int | None = None,
        pinning: str = "balanced",
        command: str | None = None,
        mode: str = "unbuffered",
        shipper_config: ShipperConfig | None = None,
        tag: str | None = None,
    ) -> tuple[dict[str, Any], KernelRun]:
        """Profile one kernel execution; returns (observation entry, run).

        Steps B1-B8: program PMUs via the Abstraction Layer, generate the
        pinning script, run the kernel under sampling, record the
        time-series under a fresh tag, and append the ObservationInterface
        (with auto-generated queries) to the KB.

        ``tag`` pins the observation's series tag; the default draws a
        fresh UUID.  Seed-deterministic harnesses (the scenario fuzzer)
        pass an explicit tag so shard placement — a hash over the series
        key including this tag — is identical across reruns.
        """
        t = self.target(hostname)
        spec = t.machine.spec
        n_threads = n_threads or spec.n_cores
        cpu_ids = pin_threads(spec, n_threads, pinning)
        hw_events, skipped = self.resolve_events(hostname, generic_events)

        # B1: configure the sampler (PMU counter programming).
        t.perfevent.configure(hw_events, cpus=cpu_ids)
        # The launch script P-MoVE would copy to the target.
        command = command or f"./{descriptor.name}"
        script = pinning_script(spec, command, [], n_threads, pinning)

        # Run the kernel under sampling; sampling dilates the runtime.
        overhead = t.sampler.sampling_overhead(freq_hz)
        t0 = t.machine.clock.now()
        run = t.machine.run_kernel(descriptor, cpu_ids, sampling_overhead=overhead)

        # Sample the execution window and stop as the kernel halts.
        tag = tag or new_tag()
        metrics = [perfevent_metric(e) for e in hw_events]
        stats = t.sampler.run(metrics, freq_hz, t0, run.t_end, tag=tag, final_fetch=True,
                              mode=mode, shipper_config=shipper_config,
                              pipeline=self._pipeline_for(mode))

        fields = observation_fields(cpu_ids)
        metric_entries = [
            {
                "metric": perfevent_metric(e),
                "measurement": metric_to_measurement(perfevent_metric(e)),
                "fields": fields,
                "event": e,
            }
            for e in hw_events
        ]
        report = {
            "runtime_s": run.runtime_s,
            "sampling": {
                "freq_hz": freq_hz,
                "expected_points": stats.expected_points,
                "inserted_points": stats.inserted_points,
                "loss_pct": stats.loss_pct,
            },
            "skipped_events": skipped,
            "pinning_script": script,
        }
        t.observation_count += 1
        obs = make_observation(
            host_seg=hostname,
            index=t.observation_count,
            tag=tag,
            command=command,
            cpu_ids=cpu_ids,
            pinning=pinning,
            metrics=metric_entries,
            t_start=t0,
            t_end=run.t_end,
            report=report,
        )
        obs["queries"] = generate_queries(obs)
        t.kb.append_entry(obs)
        t.kb.append_entry(
            make_process(hostname, pid=10_000 + t.observation_count, command=command,
                         start_time=t0)
        )
        t.kb.save(self.mongo, self.database)  # step 3 re-occurs on KB change
        return obs, run

    # ==================================================================
    # Durable ingest (commit log + consumer groups)
    # ==================================================================
    def enable_durable_ingest(
        self,
        *,
        n_partitions: int = 4,
        db_writers: int = 1,
        fsync_every_reports: int = 1,
        log_faults: LogFaultSet | None = None,
        superdb=None,
        anomaly_bounds: dict | None = None,
        max_apply_attempts: int = 8,
    ) -> IngestPipeline:
        """Stand up the checkpointed commit log and its consumer groups.

        The db-writer group writes through the same fault-injectable proxy
        as the unbuffered/buffered samplers (so PR 2's service faults bite
        the durable apply path too); the federator, if a ``superdb`` is
        given, applies into the cloud engine behind the WAN fault set of
        its federation link.  Idempotent config errors fail loudly: the
        pipeline is a singleton per daemon.
        """
        if self.ingest is not None:
            raise RuntimeError("durable ingest already enabled")
        log = CommitLog(n_partitions=n_partitions, faults=log_faults)
        pipe = IngestPipeline(log, fsync_every_reports=fsync_every_reports)
        tracker = ReportTracker()
        for i in range(db_writers):
            pipe.add(
                DbWriterConsumer(
                    log,
                    self._write_influx,
                    self.database,
                    transport=TransportModel(),
                    service_faults=self.service_faults,
                    tracker=tracker,
                    cid=f"db-writer-{i}",
                    seed=self._seed * 7919 + i,
                    max_apply_attempts=max_apply_attempts,
                )
            )
        pipe.add(RollupMaintainerConsumer(log, cid="rollup-0", seed=self._seed + 101,
                                          max_apply_attempts=max_apply_attempts))
        pipe.add(
            AnomalyScannerConsumer(
                log,
                sink=self.anomaly_alerts,
                bounds=anomaly_bounds,
                cid="anomaly-0",
                seed=self._seed + 202,
                max_apply_attempts=max_apply_attempts,
            )
        )
        if superdb is not None:
            pipe.add(
                FederatorConsumer(
                    log,
                    FaultyInfluxDB(superdb.influx, superdb.link.faults),
                    "superdb",
                    cid="federator-0",
                    seed=self._seed + 303,
                    max_apply_attempts=max_apply_attempts,
                )
            )
        self.ingest = pipe
        return pipe

    def _pipeline_for(self, mode: str) -> IngestPipeline | None:
        """Pipeline to hand the sampler — auto-enabled on first durable run."""
        if mode != "durable":
            return None
        if self.ingest is None:
            self.enable_durable_ingest()
        return self.ingest

    # ==================================================================
    # Multi-tenant serving (admission + bounded executor + SLOs)
    # ==================================================================
    def enable_serving(
        self,
        tenants: list[TenantConfig] | list[str] | None = None,
        **kwargs,
    ) -> ServingFrontend:
        """Stand up the multi-tenant frontend above this daemon's Grafana.

        ``tenants`` takes full :class:`TenantConfig` envelopes or plain
        names (default envelopes).  Like durable ingest, the frontend is
        a singleton per daemon, and purely opt-in: nothing about the
        synchronous single-caller dashboard path changes until a caller
        routes requests through ``self.serving``.
        """
        if self.serving is not None:
            raise RuntimeError("serving frontend already enabled")
        configs: list[TenantConfig] = []
        for entry in tenants or [TenantConfig("default")]:
            configs.append(
                entry if isinstance(entry, TenantConfig) else TenantConfig(str(entry))
            )
        self.serving = ServingFrontend(self.grafana, configs, **kwargs)
        return self.serving

    # ==================================================================
    # Resilience: chaos injection & health surface
    # ==================================================================
    def inject_service_fault(self, fault: ServiceFault) -> ServiceFault:
        """Install a host-side fault (DB outage, partition, …) that the
        samplers' write path will hit in virtual time."""
        return self.service_faults.inject(fault)

    def health(self) -> dict[str, Any]:
        """Operational snapshot of the telemetry path — what a liveness
        probe against the daemon would report."""
        targets: dict[str, Any] = {}
        for name, t in self.targets.items():
            stats = t.sampler.last_stats
            shipper = t.sampler.last_shipper
            entry: dict[str, Any] = {
                "observations": t.observation_count,
                "last_run": None,
            }
            if stats is not None:
                entry["last_run"] = {
                    "mode": stats.mode,
                    "loss_pct": stats.loss_pct,
                    "inserted_points": stats.inserted_points,
                    "retried_reports": stats.retried_reports,
                    "recovered_reports": stats.recovered_reports,
                    "dropped_by_policy": stats.dropped_by_policy,
                    "breaker_open_s": stats.breaker_open_s,
                    "max_queue_depth": stats.max_queue_depth,
                }
            if shipper is not None:
                entry["breaker_state"] = shipper.breaker.state
                entry["queue_depth"] = len(shipper)
                entry["wal_entries"] = len(shipper.wal)
            targets[name] = entry
        out: dict[str, Any] = {
            "active_faults": [repr(f) for f in self.service_faults.faults],
            "writes": {
                "accepted": self._write_influx.accepted_writes,
                "rejected": self._write_influx.rejected_writes,
            },
            "targets": targets,
        }
        if isinstance(self.influx, ShardedInfluxDB):
            out["shards"] = {
                "states": self.influx.shard_states(),
                "partial_queries": self.influx.partial_queries,
                "dropped_points": dict(self.influx.dropped_points),
            }
        if self.ingest is not None:
            out["ingest"] = self.ingest.health()
        if self.serving is not None:
            out["serving"] = self.serving.health()
        # Last fuzz campaign run in this process (repro.fuzz.status) —
        # the liveness probe is where operators look for everything else,
        # so the fuzzer's verdict on the twin belongs there too.
        from repro.fuzz.status import snapshot as _fuzz_snapshot

        out["fuzz"] = _fuzz_snapshot()
        return out

    # ==================================================================
    # SUPERDB federation (§III-E, user opt-in)
    # ==================================================================
    def push_to_superdb(
        self,
        superdb,
        hostname: str,
        mode: str = "agg",
        at: float | None = None,
    ) -> dict[str, int]:
        """Report one target's KB + telemetry to a SUPERDB instance over
        its federation link (retried under WAN faults; see SuperDB)."""
        t = self.target(hostname)
        return superdb.report(t.kb, self.influx, self.database, mode=mode, at=at)

    # ==================================================================
    # Recall & dashboards
    # ==================================================================
    def recall_observation(self, hostname: str, observation: dict[str, Any]) -> dict[str, ResultSet]:
        """Execute an observation's auto-generated queries (Listing 3)."""
        self.target(hostname)
        return recall(self.influx, self.database, observation)

    def dashboard_for_view(self, view: ViewSpec) -> str:
        """Generate and register a dashboard for any KB view."""
        return self.grafana.register(generate_dashboard(view))

    def compare_targets(self, kind: str, metric: str | None = None) -> str:
        """Cross-machine level-view dashboard (Fig 2 c/d)."""
        kbs = [t.kb for t in self.targets.values()]
        return self.dashboard_for_view(level_view(kbs, kind, metric=metric))
