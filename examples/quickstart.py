#!/usr/bin/env python
"""Quickstart: the full P-MoVE loop on one simulated server.

Walks the paper's Fig 3 end to end:

0. start the daemon with its environment (database endpoints, token);
1-2. probe the target and build the Knowledge Base;
3. persist the KB to the document store;
A. monitor software telemetry with an auto-generated dashboard;
B. profile a kernel execution through the Abstraction Layer and recall
   its time series with the auto-generated queries (Listing 3).

Run:  python examples/quickstart.py
"""

from repro.core import PMoVE
from repro.machine import SimulatedMachine, icl
from repro.workloads import build_kernel


def main() -> None:
    # Step 0: environment in, daemon up.
    daemon = PMoVE(env={"GRAFANA_TOKEN": "demo-token"}, seed=1)

    # Steps 1-3: probe the target, build + persist the KB.
    machine = SimulatedMachine(icl(), seed=1)
    kb = daemon.attach_target(machine)
    print(f"Knowledge Base for {kb.hostname}: {len(kb)} twins")
    print(kb.render_tree(max_depth=2))
    print()

    # Scenario A: software telemetry with a pre-generated dashboard.
    stats, dashboard_uid = daemon.scenario_a("icl", duration_s=10.0, freq_hz=1.0)
    print(f"Scenario A: {stats.inserted_points} data points "
          f"({stats.loss_pct:.1f}% lost), dashboard '{dashboard_uid}'")
    print(daemon.grafana.render_panel_text(dashboard_uid, 1))
    print()

    # Scenario B: profile a triad kernel via generic (vendor-neutral) events.
    desc = build_kernel("triad", 4_000_000, iterations=500)
    observation, run = daemon.scenario_b(
        "icl",
        desc,
        generic_events=[
            "AVX512_DOUBLE_INSTRUCTIONS",
            "TOTAL_MEMORY_INSTRUCTIONS",
            "RAPL_POWER_PACKAGE",
        ],
        freq_hz=8.0,
        n_threads=8,
        pinning="balanced",
    )
    print(f"Scenario B: kernel ran {run.runtime_s:.3f}s on cpus "
          f"{observation['affinity']}")
    print("Auto-generated recall queries (Listing 3):")
    for q in observation["queries"]:
        print(f"  {q[:100]}{'...' if len(q) > 100 else ''}")

    results = daemon.recall_observation("icl", observation)
    print("\nRecalled series (sums over the execution):")
    for measurement, rs in results.items():
        total = sum(v for _, row in rs.rows for v in row if v)
        print(f"  {measurement:<60} {total:.4g}")


if __name__ == "__main__":
    main()
