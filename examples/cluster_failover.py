#!/usr/bin/env python
"""Cluster failover — node faults, failure-aware scheduling, federation repair.

A 4-node csl cluster loses a node mid-job: the crash kills the attempt at
the fault instant, the scheduler requeues the job at the head of the queue
and places it on the surviving nodes, and the supervisor reports a truthful
degraded fleet while excluding the downtime from utilization accounting.
The healed fleet then reports to SUPERDB across a partitioned WAN and
anti-entropy converges the upstream copy.

Run:  python examples/cluster_failover.py
"""

from repro.cluster import ClusterMonitor, JobSpec, SimulatedCluster
from repro.core import SuperDB
from repro.faults import NetworkPartition, NodeCrash, ServiceFaultSet
from repro.machine import csl
from repro.pcp import RetryPolicy
from repro.workloads import build_kernel


def main() -> None:
    cluster = SimulatedCluster(csl, n_nodes=4, seed=7)
    monitor = ClusterMonitor(cluster)
    victim = cluster.node_names[0]
    print(f"cluster '{cluster.name}': {len(cluster.nodes)} nodes, "
          f"victim {victim}")

    # The victim dies shortly after the job starts and stays dark a while.
    cluster.inject_node_fault(victim, NodeCrash(t0=0.4, t1=30.0))

    job = JobSpec(
        name="cg_solver", n_nodes=2, ranks_per_node=28,
        rank_kernel=build_kernel("triad", 400_000, iterations=1),
        iterations=300,
        halo_bytes_per_neighbor=1.5e6, halo_neighbors=2, allreduce_bytes=8e3,
    )
    doc, ex, _ = monitor.run_job(job, freq_hz=4.0)
    for att in doc["failed_attempts"]:
        print(f"crash: attempt on {att['nodes']} killed by "
              f"{att['failed_node']} at t={att['t_failed']:.3f}s")
    print(f"requeued {doc['requeues']}x, completed on {ex.nodes}: "
          f"{ex.runtime_s:.3f}s")

    health = monitor.fleet_health()
    print(f"\nfleet health: degraded={health['degraded']} "
          f"down={health['nodes_down']}")
    for name, h in health["nodes"].items():
        print(f"  {name}: {h['state']:<5} failed_jobs={h['jobs_failed_here']}")
    util = monitor.scheduler.utilization()
    print("utilization, downtime excluded: "
          + ", ".join(f"{n}:{u * 100:.0f}%" for n, u in util.items()))

    # Profile a kernel on a surviving node, then federate its KB to SUPERDB
    # over a WAN that partitions mid-report.
    node = ex.nodes[0]
    monitor.daemon.scenario_b(node, build_kernel("triad", 2_000_000,
                                                 iterations=100),
                              ["RAPL_POWER_PACKAGE"], freq_hz=4)
    wan = ServiceFaultSet()
    wan.inject(NetworkPartition(t0=0.0, t1=2.0))
    sdb = SuperDB(faults=wan, retry=RetryPolicy(budget_s=1.0))
    kb = monitor.daemon.target(node).kb
    summary = sdb.report(kb, monitor.daemon.influx, monitor.daemon.database,
                         mode="ts")
    print(f"\nreport through partition: {summary['observations']} synced, "
          f"{summary['pending']} pending")
    for i in (1, 2):
        rep = sdb.anti_entropy(kb, monitor.daemon.influx,
                               monitor.daemon.database, mode="ts")
        print(f"anti-entropy pass {i}: repaired {rep['repaired']}, "
              f"pending {rep['pending']}")
    state = sdb.sync_status(kb.hostname)
    print(f"sync state complete={state['complete']}")


if __name__ == "__main__":
    main()
