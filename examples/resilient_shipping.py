"""Resilient telemetry shipping: surviving a DB outage that the paper's
unbuffered pipeline cannot.

§V-A of P-MoVE notes that PCP has "no buffer or queue mechanism to keep
data points until their insertion into the DB" — Table III quantifies how
much telemetry that costs even with a *healthy* database.  This example
scripts an actual InfluxDB outage against a live daemon and runs Scenario A
twice over the same window shape: once through the paper-faithful
unbuffered pipeline (every report that hits the outage is gone) and once
through the buffered shipping layer (bounded queue, retry with backoff, a
circuit breaker) — which delivers every fetched report, just late.
"""

from repro.core import PMoVE
from repro.faults import DbOutage, ServiceFaultSet
from repro.machine import SimulatedMachine, get_preset
from repro.pcp import ShipperConfig

DURATION_S = 30.0
FREQ_HZ = 2.0
OUTAGE = (8.0, 16.0)  # 8 virtual seconds of dead DB, mid-run


def run(mode: str, faults: ServiceFaultSet):
    daemon = PMoVE(service_faults=faults)
    daemon.attach_target(SimulatedMachine(get_preset("icl")))
    stats, _ = daemon.scenario_a(
        "icl",
        duration_s=DURATION_S,
        freq_hz=FREQ_HZ,
        mode=mode,
        shipper_config=ShipperConfig(capacity=64),
    )
    return daemon, stats


def main() -> None:
    print(f"Scenario A on icl, {FREQ_HZ:g} Hz for {DURATION_S:g}s; "
          f"DB outage over t=[{OUTAGE[0]:g}, {OUTAGE[1]:g})s\n")

    for mode in ("unbuffered", "buffered"):
        faults = ServiceFaultSet()
        faults.inject(DbOutage(t0=OUTAGE[0], t1=OUTAGE[1]))
        daemon, stats = run(mode, faults)
        print(f"[{mode}]")
        print(f"  inserted {stats.inserted_points}/{stats.expected_points} points "
              f"({stats.loss_pct:.1f}% lost)")
        if mode == "buffered":
            print(f"  retried {stats.retried_reports} report(s), "
                  f"recovered {stats.recovered_reports}, "
                  f"dropped by policy {stats.dropped_by_policy}")
            print(f"  circuit breaker open {stats.breaker_open_s:.2f}s, "
                  f"max queue depth {stats.max_queue_depth}, "
                  f"max staleness {stats.max_staleness_s:.2f}s")
            sampler = daemon.target("icl").sampler
            trace = " -> ".join(s for _, s in sampler.last_shipper.breaker.transitions)
            print(f"  breaker trace: {trace}")
        health = daemon.health()
        print(f"  writes: {health['writes']['accepted']} accepted, "
              f"{health['writes']['rejected']} rejected\n")

    print("The buffered shipper rides out the outage: reports queue while the")
    print("breaker backs off, then drain in order once the DB returns.")


if __name__ == "__main__":
    main()
