#!/usr/bin/env python
"""Heterogeneous comparison + SUPERDB — monitoring several servers from one
P-MoVE instance (§III-B level views, §III-E global database).

Attaches three Table II platforms, runs the same STREAM-like workload on
each, compares them through a cross-machine level-view dashboard, and
promotes everything to SUPERDB with AGG summaries.

Run:  python examples/multi_system_comparison.py
"""

from repro.core import PMoVE, SuperDB, run_benchmark
from repro.machine import SimulatedMachine, csl, icl, zen3
from repro.machine.spec import ISA
from repro.workloads import build_kernel

PLATFORMS = (icl, csl, zen3)


def main() -> None:
    daemon = PMoVE(seed=4)
    superdb = SuperDB()

    for mk in PLATFORMS:
        machine = SimulatedMachine(mk(), seed=4)
        kb = daemon.attach_target(machine)
        host = machine.spec.hostname
        isa = ISA.AVX512 if ISA.AVX512 in machine.spec.isas else ISA.AVX2

        # The same memory-bound workload everywhere; the Abstraction Layer
        # translates the generic events per vendor.
        desc = build_kernel("triad", 8_000_000, isa=isa, iterations=300)
        obs, run = daemon.scenario_b(
            host, desc,
            ["FLOPS_DP", "TOTAL_MEMORY_INSTRUCTIONS", "RAPL_POWER_PACKAGE"],
            freq_hz=8.0, n_threads=machine.spec.n_cores,
        )
        gflops = desc.total_flops / run.runtime_s / 1e9
        print(f"{host:<5} triad: {run.runtime_s*1e3:7.1f} ms  "
              f"{gflops:7.1f} GFLOP/s  {run.profile.power_watts:5.0f} W  "
              f"(skipped events: {obs['report']['skipped_events'] or 'none'})")

        # STREAM via the BenchmarkInterface, per-host compiler choice.
        entries = run_benchmark(kb, machine, "stream", n=4_000_000, ntimes=3)
        triad_bw = next(r["value"] for r in entries[0]["results"]
                        if r["metric"] == "Triad_bandwidth")
        print(f"      STREAM triad {triad_bw/1e3:.1f} GB/s "
              f"(compiled with {entries[0]['compiler']})")

        superdb.report(kb, daemon.influx, mode="agg")

    # One dashboard overlaying every machine's package energy.
    uid = daemon.compare_targets("socket", metric="RAPL_ENERGY_PKG")
    dash = daemon.grafana.get(uid)
    print(f"\ncross-machine level-view dashboard '{uid}': "
          f"{sum(len(p.targets) for p in dash.panels)} series overlaid")

    print(f"SUPERDB now holds {len(superdb.systems())} systems: "
          f"{', '.join(superdb.systems())}")
    cmp = superdb.compare_metric("perfevent_hwcounters_RAPL_ENERGY_PKG_value", "_cpu0")
    print("global per-window package-energy aggregates (J):")
    for host, agg in sorted(cmp.items()):
        print(f"  {host:<5} mean {agg['mean']:8.2f}  max {agg['max']:8.2f}  "
              f"(n={agg['count']:.0f})")


if __name__ == "__main__":
    main()
