"""Durable streaming ingest: one commit log feeding four consumer groups.

PR 2's shipper made the host→DB link resilient, but it is still a single
point-to-point queue: rollups, anomaly scans and SUPERDB federation all
ride the DB writer's fate.  This example stands up the checkpointed
commit log instead — topics = measurements, partitions = the PR 6 shard
keys — and shows its three headline properties under chaos:

1. **Zero loss** through a DB outage *and* a log crash-restart: consumers
   only read flushed records, the producer resends the truncated tail
   under the same sequence numbers, and the idempotence gates make crash
   replay at-most-once-visible.
2. **Independent consumer groups**: the rollup maintainer and anomaly
   scanner keep consuming at their own pace while the db-writer group is
   stuck retrying behind the outage.
3. **The dead-letter queue**: a poison record parks (per group) instead
   of wedging its partition; after the run a requeue redelivers parked
   records to exactly the group that parked them.
"""

from repro.core import PMoVE
from repro.faults import DbOutage, LogFaultSet, LogTruncation, ServiceFaultSet
from repro.machine import SimulatedMachine, get_preset

DURATION_S = 30.0
FREQ_HZ = 2.0
OUTAGE = (8.0, 16.0)  # 8 virtual seconds of dead DB, mid-run
TRUNCATE_AT = 12.0  # the log itself crash-restarts inside the outage


def main() -> None:
    print(f"Scenario A on icl, {FREQ_HZ:g} Hz for {DURATION_S:g}s, durable mode;")
    print(f"DB outage over t=[{OUTAGE[0]:g}, {OUTAGE[1]:g})s, "
          f"log truncation at t={TRUNCATE_AT:g}s\n")

    faults = ServiceFaultSet()
    faults.inject(DbOutage(t0=OUTAGE[0], t1=OUTAGE[1]))
    log_faults = LogFaultSet()
    log_faults.inject(LogTruncation(at=TRUNCATE_AT))

    daemon = PMoVE(service_faults=faults)
    daemon.attach_target(SimulatedMachine(get_preset("icl")))
    pipe = daemon.enable_durable_ingest(
        log_faults=log_faults, fsync_every_reports=3,
        anomaly_bounds={"kernel_all_load": (0.0, 64.0)},
        max_apply_attempts=12,  # enough retry budget to outlast the outage
    )
    poison = pipe.log.inject_poison("kernel_percpu_cpu_idle", tag="poison")

    stats, _ = daemon.scenario_a("icl", duration_s=DURATION_S,
                                 freq_hz=FREQ_HZ, mode="durable")

    print("[durable]")
    print(f"  inserted {stats.inserted_points}/{stats.expected_points} points "
          f"({stats.loss_pct:.1f}% lost)")
    print(f"  all loss is {stats.lost_reports} pmcd scheduling hiccup(s) "
          f"upstream of the log — every appended record was applied")
    print(f"  {stats.produced_records} records appended, "
          f"{stats.resent_records} resent after the truncation, "
          f"{stats.duplicate_records} redeliveries gated off")
    print(f"  breaker open {stats.breaker_open_s:.2f}s, "
          f"peak group lag {stats.max_group_lag} records\n")

    health = pipe.health()
    print("consumer groups (each on its own checkpoints):")
    for group, g in sorted(health["groups"].items()):
        print(f"  {group:<10} applied {g['applied_records']:>3} records, "
              f"parked {g['parked_records']}, lag {g['lag']}")

    print(f"\nDLQ: {pipe.log.dlq.summary()} — the poison record "
          f"(seq={poison.seq}) parked in every group")
    n = pipe.log.requeue()
    pipe.drain(pipe.log.now + 60.0)
    print(f"requeued {n} record(s): still parsed as poison, so it re-parks "
          f"({pipe.log.dlq.summary()}) — data never silently vanishes")

    print("\nThe log is the queue: the outage stalls only the db-writer group,")
    print("the truncation costs nothing (producer resend, same seqs), and the")
    print("poison is quarantined per group instead of blocking its partition.")


if __name__ == "__main__":
    main()
