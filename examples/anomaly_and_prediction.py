#!/usr/bin/env python
"""Anomaly detection and what-if prediction — the digital-twin payoff.

1. Injects CPU throttling on a monitored icl box between two identical
   kernel executions and lets the z-score detector find the FLOP-rate drop
   (§III-B's "fully automated ... anomaly detection").
2. Uses a recorded csl SpMV-like observation plus CARM models of three
   machines to predict cross-architecture runtimes and rank hardware
   upgrades (§I's "predictive performance modelling on a candidate
   architecture, suggesting hardware upgrades") — and validates the
   prediction by actually running on the candidate.

Run:  python examples/anomaly_and_prediction.py
"""

from repro.carm import load_from_kb
from repro.core import (
    PMoVE,
    diagnose,
    record_probe_baseline,
    run_benchmark,
    scan_series,
    suggest_upgrade,
)
from repro.machine import (
    CpuThrottle,
    MemoryContention,
    SimulatedMachine,
    csl,
    icl,
    skx,
)
from repro.workloads import build_kernel

LIVE_EVENTS = [
    "SCALAR_DOUBLE_INSTRUCTIONS", "SSE_DOUBLE_INSTRUCTIONS",
    "AVX2_DOUBLE_INSTRUCTIONS", "AVX512_DOUBLE_INSTRUCTIONS",
    "TOTAL_MEMORY_INSTRUCTIONS",
]


def anomaly_demo() -> None:
    print("== anomaly detection: CPU throttling between two runs ==")
    daemon = PMoVE(seed=21)
    machine = SimulatedMachine(icl(), seed=21)
    daemon.attach_target(machine)
    desc = build_kernel("peakflops", 2048, iterations=30_000_000)

    obs1, run1 = daemon.scenario_b("icl", desc, ["FLOPS_DP"], freq_hz=16, n_threads=8)
    machine.inject_fault(CpuThrottle(t0=run1.t_end, t1=run1.t_end + 1e9,
                                     freq_factor=0.4))
    obs2, run2 = daemon.scenario_b("icl", desc, ["FLOPS_DP"], freq_hz=16, n_threads=8)
    print(f"  run 1 (healthy):   {run1.runtime_s:.3f}s")
    print(f"  run 2 (throttled): {run2.runtime_s:.3f}s")

    # Monitor the FLOP rate continuously across both runs.
    meas = "perfevent_hwcounters_FP_ARITH_512B_PACKED_DOUBLE_value"
    times, values = [], []
    for obs in (obs1, obs2):
        pts = daemon.influx.points("pmove", meas, tags={"tag": obs["tag"]})
        for prev, cur in zip(pts, pts[1:]):
            dt = cur.time - prev.time
            if dt > 0:
                times.append(cur.time)
                values.append(cur.fields["_cpu0"] / dt)
    anomalies = scan_series(times, values, detector="zscore", window=8, threshold=3.0)
    print(f"  z-score flags {len(anomalies)} samples; first at "
          f"t={anomalies[0].t:.3f}s (throttle onset was t={run1.t_end:.3f}s)\n")


def prediction_demo() -> None:
    print("== what-if prediction: where should this workload run? ==")
    daemon = PMoVE(seed=22)
    source = SimulatedMachine(csl(), seed=22)
    kb = daemon.attach_target(source)
    run_benchmark(kb, source, "carm", thread_counts=[28])
    source_model = load_from_kb(kb, 28)

    candidates = {}
    for mk, threads in ((icl, 8), (skx, 44)):
        d2 = PMoVE(seed=22)
        m2 = SimulatedMachine(mk(), seed=22)
        k2 = d2.attach_target(m2)
        run_benchmark(k2, m2, "carm", thread_counts=[threads])
        candidates[m2.spec.hostname] = (load_from_kb(k2, threads), mk, threads)

    desc = build_kernel("triad", 8_000_000, iterations=600)
    obs, run = daemon.scenario_b("csl", desc, LIVE_EVENTS, freq_hz=16, n_threads=28)
    print(f"  recorded on csl: {run.runtime_s:.3f}s (memory-streaming kernel)")

    ranked = suggest_upgrade(daemon.influx, "pmove", obs, source_model,
                             [m for m, _, _ in candidates.values()], "cascadelake")
    for pred in ranked:
        _, mk, threads = candidates[pred.target_host]
        actual = SimulatedMachine(mk(), seed=99).run_kernel(
            desc, list(range(threads)), runtime_noise_std=0.0
        )
        err = 100 * (pred.predicted_runtime_s - actual.runtime_s) / actual.runtime_s
        print(f"  -> {pred.target_host:<4} predicted {pred.predicted_runtime_s:6.3f}s "
              f"({pred.speedup:4.2f}x, bound={pred.bound})   "
              f"actual {actual.runtime_s:6.3f}s   error {err:+.1f}%")
    best = ranked[0]
    print(f"  upgrade suggestion: {best.target_host} "
          f"({best.speedup:.2f}x for this workload)")


def rootcause_demo() -> None:
    print("\n== root-cause classification: which fault is it? ==")
    daemon = PMoVE(seed=23)
    machine = SimulatedMachine(icl(), seed=23)
    kb = daemon.attach_target(machine)
    record_probe_baseline(kb, machine)  # learned while healthy, kept in the KB

    for label, fault in (
        ("none", None),
        ("CPU throttle 0.6x", CpuThrottle(t0=machine.clock.now(), t1=1e9,
                                          freq_factor=0.6)),
        ("bandwidth contention 0.5x", MemoryContention(t0=machine.clock.now(),
                                                       t1=1e9, bw_factor=0.5)),
    ):
        machine.faults.clear()
        if fault is not None:
            machine.inject_fault(fault)
        d = diagnose(kb, machine)
        print(f"  injected: {label:<26} diagnosed: {d.fault:<18} "
              f"(compute x{d.compute_slowdown:.2f}, memory x{d.memory_slowdown:.2f}, "
              f"confidence {d.confidence:.2f})")


def main() -> None:
    anomaly_demo()
    prediction_demo()
    rootcause_demo()


if __name__ == "__main__":
    main()
