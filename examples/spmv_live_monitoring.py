#!/usr/bin/env python
"""Live SpMV monitoring — the paper's §V-D workflow on one matrix.

Runs Intel-MKL-style and merge-based SpMV over hugetrace-00020 (original
and RCM-reordered), sampling SCALAR/AVX512 FP instructions, memory
instructions and package power live, then renders the event timelines as
terminal sparklines — a text-mode Fig 7.

Also demonstrates that the *numerics* are real: the merge-based kernel is
executed and checked against the reference CSR SpMV.

Run:  python examples/spmv_live_monitoring.py
"""

import numpy as np

from repro.core import PMoVE
from repro.machine import SimulatedMachine, csl
from repro.viz import sparkline
from repro.workloads import TABLE4, generate, merge_spmv, reorder, spmv_csr, spmv_descriptor

EVENTS = [
    "SCALAR_DOUBLE_INSTRUCTIONS",
    "AVX512_DOUBLE_INSTRUCTIONS",
    "TOTAL_MEMORY_INSTRUCTIONS",
    "RAPL_POWER_PACKAGE",
]


def main() -> None:
    daemon = PMoVE(seed=2)
    machine = SimulatedMachine(csl(), seed=2)
    daemon.attach_target(machine)
    spec = machine.spec

    # A structural stand-in for hugetrace-00020, scaled for a quick demo.
    base = generate("hugetrace-00020", scale=0.0015, seed=1)
    nnz_scale = TABLE4["hugetrace-00020"].nnz / base.nnz

    # Sanity: the merge algorithm is a real SpMV.
    x = np.random.default_rng(0).normal(size=base.shape[0])
    y_merge, stats = merge_spmv(base, x, n_threads=8)
    assert np.allclose(y_merge, spmv_csr(base, x), atol=1e-10)
    print(f"merge SpMV verified against reference "
          f"(work balance {stats.balance:.2f}, {stats.carries} carries)\n")

    runtimes = {}
    for ordering in ("none", "rcm"):
        a = reorder(base, ordering)
        for alg in ("mkl", "merge"):
            desc = spmv_descriptor(
                a, spec, algorithm=alg, n_threads=28, nnz_scale=nnz_scale
            ).scaled(50)  # repeat so the run spans many sampling windows
            obs, run = daemon.scenario_b("csl", desc, EVENTS, freq_hz=16, n_threads=28)
            runtimes[(alg, ordering)] = run.runtime_s

            results = daemon.recall_observation("csl", obs)
            print(f"--- {alg} / ordering={ordering}  ({run.runtime_s*1e3:.1f} ms, "
                  f"{run.profile.power_watts:.0f} W)")
            for m in obs["metrics"]:
                rs = results[m["measurement"]]
                series = [sum(v for v in row if v) for _, row in rs.rows]
                if any(series):
                    print(f"  {m['event']:<36} {sparkline(series, 36)}")
            print()

    for alg in ("mkl", "merge"):
        gain = 100 * (1 - runtimes[(alg, "rcm")] / runtimes[(alg, "none")])
        print(f"RCM reordering speeds up {alg} SpMV by {gain:.1f}% "
              f"(paper: ~22% across the suite)")
    ratio = runtimes[("merge", "none")] / runtimes[("mkl", "none")]
    print(f"MKL (AVX-512) outruns merge (scalar) by {ratio:.2f}x")


if __name__ == "__main__":
    main()
