"""Multi-tenant serving: admission control keeps an aggressor honest.

PRs 5–6 made one dashboard refresh fast; this example puts the read path
behind the serving frontend and shares it.  Three tenants refresh the
Scenario-A dashboard — two politely, one flooding twenty times harder
with cache-busting windows — and the run is executed twice on identical
seeded traffic:

1. **without the aggressor**: baseline per-tenant live p99;
2. **with the aggressor**: its excess traffic is explicitly rejected
   (429-style, by reason), its churn stays inside its own cache
   partition, and the quiet tenants' live p99 barely moves.

The whole thing runs on virtual time — same seed, same numbers, every
machine, every run.
"""

from repro.core import PMoVE
from repro.machine import SimulatedMachine, get_preset
from repro.serve import TenantConfig, mixed_load, replay

SPAN_S = 12.0  # ingested data span (scenario A duration)
LOAD_S = 10.0  # offered dashboard load duration
TENANTS = ["ops", "capacity", "batch"]  # batch turns hostile in run 2


def build_frontend():
    daemon = PMoVE()
    daemon.attach_target(SimulatedMachine(get_preset("icl")))
    _, uid = daemon.scenario_a("icl", duration_s=SPAN_S, freq_hz=2.0)
    panels = daemon.grafana.get(uid).panels[:4]
    configs = [
        TenantConfig(name, rate_per_s=10.0, burst=15.0,
                     point_budget_per_s=5_000.0, point_burst=20_000.0,
                     max_queue_depth=32, cache_entries=64)
        for name in TENANTS
    ]
    return daemon.enable_serving(configs, n_workers=4), panels


def run(aggressor):
    frontend, panels = build_frontend()
    specs = mixed_load(
        TENANTS, panels,
        duration_s=LOAD_S, span_s=SPAN_S, window_s=SPAN_S / 2,
        seed=42, aggressor=aggressor,
    )
    replay(frontend, specs)
    frontend.drain()
    return len(specs), frontend.health()


def live_p99(health, tenant):
    latency = health["tenants"][tenant]["latency"]
    return latency.get("live", latency["all"])["p99_ms"]


def main() -> None:
    n_quiet, quiet = run(aggressor=None)
    n_loud, loud = run(aggressor="batch")

    print(f"three tenants share the icl dashboard; seeded mixed load, "
          f"{n_quiet} requests polite vs {n_loud} with 'batch' flooding\n")

    print("live-class p99 per tenant (virtual ms):")
    print(f"  {'tenant':<10} {'polite':>8} {'flooded':>9}")
    for name in TENANTS:
        print(f"  {name:<10} {live_p99(quiet, name):>8.2f} "
              f"{live_p99(loud, name):>9.2f}")

    batch = loud["tenants"]["batch"]
    reasons = ", ".join(f"{k}={v}" for k, v in sorted(batch["rejected"].items()))
    print(f"\nthe aggressor submitted {batch['submitted']}, was admitted "
          f"{batch['admitted']}, rejected {batch['rejected_total']} ({reasons})")

    ex = loud["executor"]
    print(f"single-flight coalescing served {ex['coalesced']} identical "
          f"refreshes on {ex['executed']} executions")

    parts = loud["cache_partitions"]
    print("cache partitions stayed private: " +
          ", ".join(f"{n}={parts[n]['entries']}/{parts[n]['capacity']}"
                    for n in TENANTS))

    for name in ("ops", "capacity"):
        before, after = live_p99(quiet, name), live_p99(loud, name)
        assert after <= 1.2 * max(before, 1.0), (name, before, after)
    print("\nquiet tenants' live p99 moved <= 20% under the flood — "
          "admission + partitions held the SLO")


if __name__ == "__main__":
    main()
