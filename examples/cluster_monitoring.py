#!/usr/bin/env python
"""Cluster-level P-MoVE — the paper's §VI extension, running.

Builds a 4-node csl cluster behind a 100 Gbit fabric, schedules three jobs
through the FIFO scheduler (one on a node with an injected straggler fault),
and shows what the cluster monitor records: JobInterface entries with
communication telemetry, per-node job history, and a fleet-wide level-view
dashboard.

Run:  python examples/cluster_monitoring.py
"""

from repro.cluster import ClusterMonitor, JobSpec, SimulatedCluster
from repro.machine import LoadImbalance, csl
from repro.workloads import build_kernel


def main() -> None:
    cluster = SimulatedCluster(csl, n_nodes=4, seed=11)
    monitor = ClusterMonitor(cluster)
    print(f"cluster '{cluster.name}': {len(cluster.nodes)} nodes "
          f"({next(iter(cluster.nodes.values())).spec.cpu_model}), "
          f"fabric {cluster.interconnect.name}")
    print(f"per-node KBs built and persisted: "
          f"{[monitor.daemon.target(n).kb.hostname for n in cluster.node_names]}\n")

    # One node misbehaves: OS noise makes it a straggler.
    victim = cluster.node_names[2]
    cluster.node(victim).inject_fault(
        LoadImbalance(t0=0.0, t1=1e9, straggler_factor=1.35)
    )

    def job(name, n_nodes, iters):
        return JobSpec(
            name=name, n_nodes=n_nodes, ranks_per_node=28,
            rank_kernel=build_kernel("triad", 400_000, iterations=1),
            iterations=iters,
            halo_bytes_per_neighbor=1.5e6, halo_neighbors=2,
            allreduce_bytes=8e3, user="alice",
        )

    for spec in (job("cg_solver", 2, 400), job("lattice_qcd", 4, 200),
                 job("postproc", 1, 100)):
        doc, ex, stats = monitor.run_job(spec, freq_hz=4.0)
        straggled = victim in ex.nodes
        print(f"{spec.name:<12} nodes={ex.nodes} "
              f"runtime {ex.runtime_s:6.3f}s  comm {100*ex.comm_fraction:4.1f}%"
              f"{'  [straggler in allocation]' if straggled else ''}")
        comm = monitor.comm_telemetry(ex)
        print(f"{'':14}comm telemetry: "
              + ", ".join(f"{n}:{b/1e9:.2f} GB" for n, b in comm.items()))

    print(f"\njob history on {victim}: "
          f"{[j['name'] for j in monitor.job_history(victim)]}")
    print(f"alice's jobs in the cluster DB: "
          f"{[j['name'] for j in monitor.jobs(user='alice')]}")

    uid = monitor.fleet_dashboard(kind="node", metric="kernel.all.load")
    print(f"\nfleet dashboard '{uid}' overlays every node's load:")
    print(monitor.daemon.grafana.render_panel_text(uid, 1))

    util = monitor.scheduler.utilization()
    print("\nnode utilization: "
          + ", ".join(f"{n}:{u*100:.0f}%" for n, u in util.items()))


if __name__ == "__main__":
    main()
