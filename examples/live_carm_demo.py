#!/usr/bin/env python
"""Live-CARM — construct the roofline from KB-configured microbenchmarks,
then watch likwid kernels land on it (the paper's Fig 9 workflow).

Produces ``examples/out/live_carm.svg``.

Run:  python examples/live_carm_demo.py
"""

import statistics
from pathlib import Path

from repro.carm import assign_phases, live_carm_points, load_from_kb, render_carm_svg
from repro.core import PMoVE, run_benchmark
from repro.machine import SimulatedMachine, csl
from repro.workloads import build_kernel

EVENTS = [
    "SCALAR_DOUBLE_INSTRUCTIONS",
    "SSE_DOUBLE_INSTRUCTIONS",
    "AVX2_DOUBLE_INSTRUCTIONS",
    "AVX512_DOUBLE_INSTRUCTIONS",
    "TOTAL_MEMORY_INSTRUCTIONS",
]

KERNELS = {
    "triad": (8_000_000, 800),  # streams through DRAM
    "ddot": (1500, 30_000_000),  # L1-resident
    "peakflops": (2048, 40_000_000),  # register-resident FMA chain
}


def main() -> None:
    daemon = PMoVE(seed=3)
    machine = SimulatedMachine(csl(), seed=3)
    kb = daemon.attach_target(machine)

    # CARM construction: microbenchmarks configured from the KB, results
    # stored back into the KB so the plot can be rebuilt without re-running.
    run_benchmark(kb, machine, "carm", thread_counts=[28])
    model = load_from_kb(kb, 28)
    print(f"CARM roofs for {model.hostname} @ {model.n_threads} threads:")
    for level, bw in model.bandwidth_gbs.items():
        print(f"  {level:<5} {bw:8.0f} GB/s")
    for isa, gf in sorted(model.peak_gflops.items()):
        print(f"  {isa:<7} {gf:8.0f} GFLOP/s")
    print()

    all_points = []
    for kernel, (n, iters) in KERNELS.items():
        desc = build_kernel(kernel, n, iterations=iters)
        obs, run = daemon.scenario_b("csl", desc, EVENTS, freq_hz=16, n_threads=28)
        pts = [p for p in live_carm_points(daemon.influx, "pmove", obs, "cascadelake")
               if p.flops > 0]
        all_points.extend(assign_phases(pts, [(kernel, run.t_start, run.t_end)]))
        ai = statistics.median(p.ai for p in pts)
        gf = statistics.median(p.gflops for p in pts)
        print(f"{kernel:<10} live AI {ai:7.4f}  live {gf:8.1f} GFLOP/s  "
              f"-> bounded by the {model.bounding_level(ai, gf)} roof")

    out = Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    path = out / "live_carm.svg"
    path.write_text(render_carm_svg(model, all_points,
                                    title="live-CARM: likwid kernels on csl"))
    print(f"\nroofline plot written to {path}")


if __name__ == "__main__":
    main()
