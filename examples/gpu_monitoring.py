#!/usr/bin/env python
"""GPU integration (§III-D) — probing, NVML telemetry, and ncu profiling.

Attaches a GPU-equipped node (the Quadro GV100 of Listing 4), shows the
GPU's twin in the KB, samples NVML metrics while a kernel runs, and
profiles a launch through the ncu wrapper, folding the parsed metrics back
into the KB as an observation.

Run:  python examples/gpu_monitoring.py
"""

from repro.core import PMoVE
from repro.gpu import GpuKernelDescriptor, build_wrapper_script, parse_ncu_report, run_ncu
from repro.machine import SimulatedMachine, gpu_node


def main() -> None:
    daemon = PMoVE(seed=5)
    machine = SimulatedMachine(gpu_node(), seed=5)
    kb = daemon.attach_target(machine)

    gpu_twin = kb.find_by_name("gpu0")
    print("GPU twin (Listing 4 shape):")
    for prop in gpu_twin.properties():
        print(f"  {prop.name:<20} {prop.description}")
    print(f"  SWTelemetry streams: {[t.name for t in gpu_twin.sw_telemetry()]}")
    print()

    target = daemon.target("cn1")
    gpu = target.gpus[0]

    # The wrapper P-MoVE would copy to the target.
    script = build_wrapper_script(
        "./spmv_gpu", ["hugetrace.mtx"],
        ["dram__bytes.sum", "sm__throughput.avg.pct_of_peak_sustained_elapsed"],
    )
    print("generated ncu wrapper:")
    print("  " + script.replace("\n", "\n  ").rstrip())
    print()

    # Launch under ncu while NVML telemetry streams (Scenario A on a GPU).
    report = run_ncu(gpu, GpuKernelDescriptor(
        "spmv_gpu", flops_sp=4e11, dram_bytes=6e11, l2_bytes=1.2e12, occupancy=0.7,
    ))
    stats, _ = daemon.scenario_a(
        "cn1", duration_s=3.0,
        metrics=["nvidia.gpuactive", "nvidia.memused", "nvidia.power"],
    )
    print(f"NVML telemetry: {stats.inserted_points} points sampled")
    for meas in ("nvidia_gpuactive", "nvidia_memused", "nvidia_power"):
        pts = daemon.influx.points("pmove", meas)
        if pts:
            print(f"  {meas:<18} last={pts[-1].fields['_gpu0']:.1f}")

    parsed = parse_ncu_report(report)
    print(f"\nncu profile of '{parsed['kernel']}':")
    for k in ("gpu__time_duration.sum", "dram__bytes.sum",
              "sm__throughput.avg.pct_of_peak_sustained_elapsed",
              "gpu__compute_memory_access_throughput.avg.pct_of_peak_sustained_elapsed"):
        print(f"  {k:<66} {parsed['metrics'][k]:.2f}")

    kb.append_entry({
        "@type": "ObservationInterface",
        "@id": "dtmi:dt:cn1:gpuobservation1;1",
        "tag": "gpu-ncu-1",
        "command": "ncu ./spmv_gpu hugetrace.mtx",
        "affinity": [],
        "pinning": "n/a",
        "metrics": [],
        "time": {"start": gpu.launches[-1].t_start, "end": gpu.launches[-1].t_end},
        "report": parsed["metrics"],
        "queries": [],
    })
    kb.save(daemon.mongo)
    print("\nncu metrics folded into the KB as an ObservationInterface; "
          f"KB now carries {len(kb.entries)} entries")


if __name__ == "__main__":
    main()
